"""Walk through the paper's Ω(n) lower-bound machinery (Section 6).

Three acts:

1. the ZEC game — search for the best zero-communication strategies and
   watch Lemma 6.2 cap them strictly below certainty;
2. parallel repetition — the n-fold product game's success collapses
   exponentially (the engine of Theorem 4);
3. the learning gadget — our own Theorem 1 protocol provably leaks Alice's
   entire input string to Bob through the coloring, so its O(n) cost is
   optimal.

Run:  python examples/lower_bound_game.py
"""

from __future__ import annotations

import math
import random

from repro.rand import Stream
from repro.core import run_vertex_coloring
from repro.lowerbound import (
    LEMMA_62_BOUND,
    decode_bits,
    exact_win_probability,
    gadget_partition,
    label_sets,
    lemma_62_dichotomy,
    optimize_strategies,
    product_success_exact,
    random_strategy,
)


def act_one_zec(rng: random.Random):
    print("=" * 64)
    print("Act 1 — the ZEC game (Lemma 6.2)")
    print("=" * 64)
    rand_a, rand_b = random_strategy(rng), random_strategy(rng)
    rand_value = exact_win_probability(rand_a, rand_b)
    print(f"random strategies         : win {rand_value:.4f} ({rand_value * 441:.0f}/441)")

    alice, bob, best = optimize_strategies(rng, restarts=8, iterations=20)
    print(f"best-response optimized   : win {best:.6f} ({best * 441:.0f}/441)")
    print(f"Lemma 6.2 upper bound     : {LEMMA_62_BOUND:.6f} (11024/11025)")
    print(f"proof case for best pair  : {lemma_62_dichotomy(alice, bob)}")
    labels = label_sets(alice)
    multi = sum(1 for lab in labels.values() if len(lab) >= 2)
    print(f"Alice's spokes with ≥2 labels: {multi}/7 "
          "(the pigeonhole fuel of the lemma)")
    return alice, bob, best


def act_two_repetition(alice, bob, best: float):
    print()
    print("=" * 64)
    print("Act 2 — parallel repetition (Proposition 6.3 / Theorem 4)")
    print("=" * 64)
    print(f"{'copies n':>10} {'success':>14} {'log2(success)':>15}")
    for n in (1, 10, 50, 100, 1000):
        p = product_success_exact(alice, bob, n)
        print(f"{n:>10} {p:>14.3e} {math.log2(p):>15.1f}")
    print("…so any o(n)-bit protocol, converted to a 2^{-o(n)} zero-"
          "communication strategy via transcript guessing (Lemma 6.1),")
    print("would beat this 2^{-Ω(n)} ceiling — contradiction, hence Ω(n).")


def act_three_gadget(rng: random.Random):
    print()
    print("=" * 64)
    print("Act 3 — the learning gadget (vertex-coloring optimality, FM25)")
    print("=" * 64)
    secret = [rng.randint(0, 1) for _ in range(64)]
    partition = gadget_partition(secret)
    result = run_vertex_coloring(partition, seed=42)
    decoded = decode_bits(result.colors, len(secret))
    print(f"Alice's secret (64 bits)  : {''.join(map(str, secret[:32]))}…")
    print(f"Bob's decoding            : {''.join(map(str, decoded[:32]))}…")
    print(f"decoded correctly         : {decoded == secret}")
    print(f"protocol communication    : {result.total_bits} bits "
          f"({result.total_bits / len(secret):.1f} per secret bit ≥ 1, "
          "as the reduction demands)")


def main() -> None:
    rng = Stream.from_seed(6).derive_random("lower-bound-game")
    alice, bob, best = act_one_zec(rng)
    act_two_repetition(alice, bob, best)
    act_three_gadget(rng)


if __name__ == "__main__":
    main()
