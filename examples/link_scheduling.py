"""TDMA link scheduling across two datacenter fabrics via edge coloring.

A classical use of edge coloring: links incident to the same switch cannot
be active in the same time slot, so a proper edge coloring with ``k``
colors is a ``k``-slot transmission schedule.  Here two fabric controllers
each own the links they provisioned; the combined topology must be
scheduled with minimal controller-to-controller chatter.

Theorem 2 gives a ``(2Δ−1)``-slot schedule with ``O(n)`` bits in two
coordination rounds; Theorem 3 shows one extra slot (``2Δ``) removes the
need for any coordination at all — a deployment-relevant trade-off this
example quantifies.

Run:  python examples/link_scheduling.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro.core import run_edge_coloring, run_zero_comm_edge_coloring
from repro.graphs import (
    EdgePartition,
    Graph,
    assert_proper_edge_coloring,
    random_bipartite_regular,
)


def build_fabric(rng: random.Random) -> EdgePartition:
    """Two overlaid bipartite fabrics (leaf↔spine), one per controller.

    Controller A provisioned an 8-regular fabric, controller B a 4-regular
    expansion overlay; the union is what must be scheduled.
    """
    leaves = 64
    base = random_bipartite_regular(leaves, 8, rng)
    overlay = random_bipartite_regular(leaves, 4, rng)
    union = Graph(2 * leaves)
    alice_edges = []
    for u, v in base.edges():
        if union.add_edge(u, v):
            alice_edges.append((u, v))
    for u, v in overlay.edges():
        union.add_edge(u, v)
    return EdgePartition(union, alice_edges)


def schedule_summary(colors: dict, num_slots: int) -> str:
    load = Counter(colors.values())
    busiest = max(load.values())
    return (
        f"{len(load)} of {num_slots} slots used, "
        f"busiest slot carries {busiest} links"
    )


def main() -> None:
    rng = random.Random(99)
    partition = build_fabric(rng)
    graph = partition.graph
    delta = graph.max_degree()
    print(f"fabric: {graph.n} switches, {graph.m} links, max degree Δ={delta}")
    print(f"controller A owns {len(partition.alice_edges)} links, "
          f"controller B owns {len(partition.bob_edges)}")

    tight = run_edge_coloring(partition)
    assert_proper_edge_coloring(graph, tight.colors, 2 * delta - 1)
    print("\n(2Δ−1)-slot schedule  [Theorem 2]")
    print(f"  slots   : {schedule_summary(tight.colors, 2 * delta - 1)}")
    print(f"  control : {tight.total_bits} bits in {tight.rounds} rounds")

    free = run_zero_comm_edge_coloring(partition)
    assert_proper_edge_coloring(graph, free.colors, 2 * delta)
    print("\n(2Δ)-slot schedule  [Theorem 3]")
    print(f"  slots   : {schedule_summary(free.colors, 2 * delta)}")
    print(f"  control : {free.total_bits} bits in {free.rounds} rounds "
          f"(fully autonomous controllers)")

    print(
        "\ntrade-off: paying one extra time slot "
        f"({2 * delta} instead of {2 * delta - 1}) eliminates all "
        f"{tight.total_bits} bits of control-plane coordination — "
        "Theorem 4 proves those bits are unavoidable at 2Δ−1 slots."
    )


if __name__ == "__main__":
    main()
