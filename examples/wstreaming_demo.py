"""W-streaming edge coloring: the space/colors dial and the Ω(n) floor.

Section 6.4's setting: edges arrive as a stream, internal memory is the
scarce resource, and output records may be emitted at any time.  This demo
streams a graph through (a) the classical greedy colorer (``2Δ−1`` colors,
``n(2Δ−1)``-bit state) and (b) buffer-and-flush colorers at several buffer
sizes, then runs the paper's streaming→two-party reduction to show where
Corollary 1.2's Ω(n) space bound comes from.

Run:  python examples/wstreaming_demo.py
"""

from __future__ import annotations

import random

from repro.graphs import (
    assert_proper_edge_coloring,
    partition_random,
    random_regular_graph,
)
from repro.lowerbound import (
    BufferedWStreamColorer,
    GreedyWStreamColorer,
    reduce_streaming_to_two_party,
    run_wstreaming,
)


def main() -> None:
    rng = random.Random(3)
    n, delta = 400, 10
    graph = random_regular_graph(n, delta, rng)
    stream = graph.edge_list()
    rng.shuffle(stream)
    print(f"stream: {len(stream)} edges of an n={n}, Δ={delta} graph "
          f"(arbitrary arrival order)")

    print(f"\n{'algorithm':<28}{'state bits':>12}{'colors':>8}")
    greedy_colors, greedy_peak = run_wstreaming(
        GreedyWStreamColorer(n, delta), stream
    )
    assert_proper_edge_coloring(graph, greedy_colors, 2 * delta - 1)
    print(f"{'greedy (2Δ−1 colors)':<28}{greedy_peak:>12}{2 * delta - 1:>8}")

    for cap in (50, 200, 800, len(stream) + 1):
        colors, peak = run_wstreaming(BufferedWStreamColorer(n, cap), stream)
        assert_proper_edge_coloring(graph, colors)
        used = max(colors.values())
        label = f"buffered (cap={cap})"
        print(f"{label:<28}{peak:>12}{used:>8}")

    print(f"\nΩ(n) floor from Corollary 1.2: ≈{n} bits at 2Δ−1 colors —")
    print("shrinking the buffer toward that floor forces the color count up.")

    # The reduction that proves the floor: a one-pass space-s algorithm is
    # an s-bit weaker-two-party protocol.
    part = partition_random(graph, rng)
    a_out, b_out, transcript = reduce_streaming_to_two_party(
        part, lambda: GreedyWStreamColorer(n, delta)
    )
    merged = {**a_out, **b_out}
    assert_proper_edge_coloring(graph, merged, 2 * delta - 1)
    print("\nstreaming→two-party reduction (Theorem 5 ⇒ Corollary 1.2):")
    print(f"  Alice emitted {len(a_out)} edge colors, Bob {len(b_out)}")
    print(f"  one state transfer = {transcript.total_bits} bits "
          f"(exactly the streaming state)")
    print("  an o(n)-space streamer would give an o(n)-bit protocol,")
    print("  contradicting the Ω(n) bound for the weaker problem.")


if __name__ == "__main__":
    main()
