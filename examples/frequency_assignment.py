"""Frequency assignment across two cellular operators.

The intro's motivating application: base stations must receive frequencies
such that interfering stations never share one.  Interference measurements
are split between two operators (each knows only the interference pairs its
own probes observed), and backhaul between them is expensive — exactly the
two-party edge-partition model.

A (Δ+1)-vertex coloring of the interference graph is a valid frequency
plan with the fewest channels greedy analysis guarantees.  This example
builds a synthetic city grid of base stations with distance-based
interference, splits the measurements, and compares Theorem 1 against the
naive "ship all measurements" approach.

Run:  python examples/frequency_assignment.py
"""

from __future__ import annotations

import math
import random

from repro.baselines import run_naive_exchange
from repro.core import run_vertex_coloring
from repro.graphs import EdgePartition, Graph, assert_proper_vertex_coloring


def build_interference_graph(
    stations: int,
    rng: random.Random,
    interference_radius: float = 0.14,
    max_links: int = 12,
) -> tuple[Graph, list[tuple[float, float]]]:
    """Random station placements; stations interfere within a radius.

    The degree cap models power control: a station coordinates with at
    most ``max_links`` strongest interferers.
    """
    positions = [(rng.random(), rng.random()) for _ in range(stations)]
    graph = Graph(stations)
    candidates = []
    for i in range(stations):
        for j in range(i + 1, stations):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            dist = math.hypot(dx, dy)
            if dist <= interference_radius:
                candidates.append((dist, i, j))
    candidates.sort()
    for _dist, i, j in candidates:
        if graph.degree(i) < max_links and graph.degree(j) < max_links:
            graph.add_edge(i, j)
    return graph, positions


def split_measurements(graph: Graph, rng: random.Random) -> EdgePartition:
    """Each interference pair was measured by exactly one operator's probes."""
    alice_edges = [e for e in graph.edges() if rng.random() < 0.5]
    return EdgePartition(graph, alice_edges)


def main() -> None:
    rng = random.Random(7)
    stations = 600
    graph, _positions = build_interference_graph(stations, rng)
    delta = graph.max_degree()
    partition = split_measurements(graph, rng)

    print(f"interference graph: {stations} stations, {graph.m} interference "
          f"pairs, max degree Δ={delta}")
    print(f"operator A observed {len(partition.alice_edges)} pairs, "
          f"operator B observed {len(partition.bob_edges)}")

    plan = run_vertex_coloring(partition, seed=2024)
    assert_proper_vertex_coloring(graph, plan.colors, delta + 1)
    channels = len(set(plan.colors.values()))
    print("\nfrequency plan via Theorem 1:")
    print(f"  channels used       : {channels} (≤ Δ+1 = {delta + 1})")
    print(f"  backhaul traffic    : {plan.total_bits} bits "
          f"({plan.total_bits / stations:.1f} per station)")
    print(f"  coordination rounds : {plan.rounds}")

    naive = run_naive_exchange(partition)
    print("\nnaive plan (ship all measurements):")
    print(f"  backhaul traffic    : {naive.total_bits} bits")
    print(f"  savings from Theorem 1: "
          f"{naive.total_bits / max(plan.total_bits, 1):.1f}x less traffic")

    # Channel utilization summary.
    usage: dict[int, int] = {}
    for color in plan.colors.values():
        usage[color] = usage.get(color, 0) + 1
    busiest = max(usage.values())
    print(f"\nchannel load: max {busiest} stations on one channel, "
          f"mean {stations / channels:.1f}")


if __name__ == "__main__":
    main()
