"""Quickstart: color an edge-partitioned graph with the paper's protocols.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import run_edge_coloring, run_vertex_coloring, run_zero_comm_edge_coloring
from repro.graphs import (
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    partition_random,
    random_regular_graph,
)


def main() -> None:
    rng = random.Random(0)

    # A 10-regular graph on 512 vertices whose edges are split uniformly
    # between Alice and Bob — neither party sees the whole graph.
    n, delta = 512, 10
    graph = random_regular_graph(n, delta, rng)
    partition = partition_random(graph, rng)
    print(f"graph: n={n}, Δ={delta}, m={graph.m}")
    print(f"partition: Alice {len(partition.alice_edges)} edges, "
          f"Bob {len(partition.bob_edges)} edges")

    # Theorem 1: (Δ+1)-vertex coloring in O(n) bits, O(log log n · log Δ)
    # rounds.
    vertex = run_vertex_coloring(partition, seed=1)
    assert_proper_vertex_coloring(graph, vertex.colors, delta + 1)
    print("\n(Δ+1)-vertex coloring  [Theorem 1]")
    print(f"  bits   : {vertex.total_bits}  ({vertex.total_bits / n:.1f} per vertex)")
    print(f"  rounds : {vertex.rounds}")
    print(f"  colors : {len(set(vertex.colors.values()))} of {delta + 1}")
    for name, stats in vertex.transcript.phases.items():
        print(f"  phase {name}: {stats.total_bits} bits, {stats.rounds} rounds")

    # Theorem 2: (2Δ−1)-edge coloring in O(n) bits and 2 rounds,
    # deterministically.
    edge = run_edge_coloring(partition)
    assert_proper_edge_coloring(graph, edge.colors, 2 * delta - 1)
    print("\n(2Δ−1)-edge coloring  [Theorem 2]")
    print(f"  bits   : {edge.total_bits}  ({edge.total_bits / n:.1f} per vertex)")
    print(f"  rounds : {edge.rounds}")
    print(f"  colors : {len(set(edge.colors.values()))} of {2 * delta - 1}")

    # Theorem 3: one extra color makes the problem free.
    zero = run_zero_comm_edge_coloring(partition)
    assert_proper_edge_coloring(graph, zero.colors, 2 * delta)
    print("\n(2Δ)-edge coloring  [Theorem 3]")
    print(f"  bits   : {zero.total_bits}   rounds: {zero.rounds}   (zero communication)")


if __name__ == "__main__":
    main()
