"""Exam timetabling with per-exam slot restrictions via two-party D1LC.

(degree+1)-list coloring generalizes (Δ+1)-coloring: every exam (vertex)
has its own list of permitted time slots, and conflicting exams (sharing
students) need distinct slots.  Two campus registrars each know the
conflicts among the enrollments they manage and each imposes its own slot
restrictions — the two-party D1LC setting of Section 3.3.

The instance is constructed to satisfy the protocol's preconditions the
same way Theorem 1's leftover instances do: each exam's merged list
exceeds its conflict degree, and the two restriction lists jointly leave
slack in the slot universe.

Run:  python examples/exam_timetabling.py
"""

from __future__ import annotations

import random

from repro.comm import Transcript, run_protocol
from repro.rand import Stream
from repro.core import d1lc_party
from repro.graphs import gnp_with_max_degree, is_proper_list_coloring, partition_random


def build_instance(rng: random.Random):
    """Exams, conflicts, and per-registrar slot restrictions."""
    exams = 180
    max_conflicts = 10
    conflicts = gnp_with_max_degree(exams, 0.08, max_conflicts, rng)
    delta = conflicts.max_degree()
    slots = delta + 1
    universe = set(range(1, slots + 1))

    split = partition_random(conflicts, rng)
    lists_a: dict[int, set[int]] = {}
    lists_b: dict[int, set[int]] = {}
    for exam in conflicts.vertices():
        # Each registrar may strike at most (Δ - deg) slots in total for
        # this exam — the slack Theorem 1's leftover instances enjoy.
        budget = rng.randint(0, delta - conflicts.degree(exam))
        struck = rng.sample(sorted(universe), budget)
        cut = rng.randint(0, budget)
        lists_a[exam] = universe - set(struck[:cut])
        lists_b[exam] = universe - set(struck[cut:])
    return conflicts, split, lists_a, lists_b, slots


def main() -> None:
    rng = random.Random(11)
    conflicts, split, lists_a, lists_b, slots = build_instance(rng)
    exams = conflicts.n
    print(f"{exams} exams, {conflicts.m} conflicts, "
          f"max conflict degree {conflicts.max_degree()}, {slots} slots")
    restricted = sum(1 for v in conflicts.vertices()
                     if len(lists_a[v] & lists_b[v]) < slots)
    print(f"{restricted} exams carry slot restrictions")

    transcript = Transcript()
    active = list(conflicts.vertices())
    pub_a, pub_b = Stream.from_seed(5), Stream.from_seed(5)
    timetable_a, timetable_b, _ = run_protocol(
        d1lc_party("alice", split.alice_graph, lists_a, active, slots,
                   pub_a, Stream.from_seed(5).derive_random("a")),
        d1lc_party("bob", split.bob_graph, lists_b, active, slots,
                   pub_b, Stream.from_seed(5).derive_random("b")),
        transcript,
    )
    assert timetable_a == timetable_b
    merged_lists = {v: lists_a[v] & lists_b[v] for v in conflicts.vertices()}
    assert is_proper_list_coloring(conflicts, timetable_a, merged_lists)

    print("\ntimetable computed jointly by both registrars:")
    print(f"  slots used    : {len(set(timetable_a.values()))} of {slots}")
    print(f"  communication : {transcript.total_bits} bits "
          f"({transcript.total_bits / exams:.1f} per exam)")
    print(f"  rounds        : {transcript.rounds}")
    print("  every exam sits in a slot both registrars permit, and no two")
    print("  conflicting exams share a slot.")


if __name__ == "__main__":
    main()
