"""Shared workload builders for the benchmark harness.

Every experiment (E1–E20) lives in its own ``bench_e*_*.py`` file; run
them with::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the paper-style tables each experiment prints; the
pytest-benchmark timings quantify the simulation cost itself.

Workloads route through :mod:`repro.engine`, so experiments that sweep the
same (family, parameters, seed) coordinate share one cached graph instead
of regenerating it, and every workload is addressable as an engine
scenario (``python -m repro sweep`` reruns the same instances).
"""

from __future__ import annotations

import pytest

from repro.engine import Scenario, build_partition
from repro.graphs import EdgePartition


def regular_scenario(n: int, d: int, seed: int, protocol: str = "vertex") -> Scenario:
    """The engine coordinate of the default random-regular workload."""
    return Scenario(
        family="regular",
        params=(("d", d), ("n", n)),
        partition="random",
        protocol=protocol,
        seed=seed,
    )


def regular_workload(n: int, d: int, seed: int = 0) -> EdgePartition:
    """A randomly partitioned random d-regular graph — the default workload."""
    return build_partition(regular_scenario(n, d, seed))


@pytest.fixture(scope="session")
def medium_partition() -> EdgePartition:
    """One shared medium-size workload for timing benchmarks."""
    return regular_workload(512, 8, seed=42)


@pytest.fixture(scope="session")
def small_partition() -> EdgePartition:
    """One shared small workload for round-heavy baselines."""
    return regular_workload(128, 8, seed=42)
