"""Shared workload builders for the benchmark harness.

Every experiment (E1–E13 of DESIGN.md §4) lives in its own
``bench_e*_*.py`` file; run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the paper-style tables each experiment prints; the
pytest-benchmark timings quantify the simulation cost itself.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import EdgePartition, partition_random, random_regular_graph


def regular_workload(n: int, d: int, seed: int = 0) -> EdgePartition:
    """A randomly partitioned random d-regular graph — the default workload."""
    rng = random.Random(seed)
    graph = random_regular_graph(n, d, rng)
    return partition_random(graph, rng)


@pytest.fixture(scope="session")
def medium_partition() -> EdgePartition:
    """One shared medium-size workload for timing benchmarks."""
    return regular_workload(512, 8, seed=42)


@pytest.fixture(scope="session")
def small_partition() -> EdgePartition:
    """One shared small workload for round-heavy baselines."""
    return regular_workload(128, 8, seed=42)
