"""E3 — head-to-head: Theorem 1 vs FM25 vs greedy-BS vs one-round vs naive.

The comparison that motivates the paper (Section 1.1): all linear-bit
protocols cluster within constant factors on communication, but round
complexity separates sharply — FM25 and greedy binary search pay ``Θ(n)``
rounds, the one-round/naive protocols pay a ``log``-factor (or ``Δ``-
factor) premium in bits, and Theorem 1 is the only point in the
(bits, rounds) plane that is simultaneously ``O(n)`` and ``polyloglog``.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.baselines import (
    run_flin_mittal,
    run_greedy_binary_search,
    run_naive_exchange,
    run_one_round_sparsify,
)
from repro.core import run_vertex_coloring

from .conftest import regular_workload

N = 512
DEGREE = 16


def collect():
    part = regular_workload(N, DEGREE, seed=9)
    results = {
        "theorem1 (ours)": run_vertex_coloring(part, seed=9),
        "flin-mittal [FM25]": run_flin_mittal(part, seed=9),
        "greedy binary-search": run_greedy_binary_search(part),
        "one-round sparsify [ACK19]": run_one_round_sparsify(part, seed=9),
        "naive full exchange": run_naive_exchange(part),
    }
    return part, results


def test_e3_baseline_comparison(benchmark):
    part, results = collect()
    rows = [
        [name, res.total_bits, round(res.total_bits / N, 1), res.rounds]
        for name, res in results.items()
    ]
    print_table(
        ["protocol", "bits", "bits/n", "rounds"],
        rows,
        title=f"E3  (Δ+1)-vertex coloring head-to-head (n={N}, Δ={DEGREE})",
    )

    ours = results["theorem1 (ours)"]
    fm = results["flin-mittal [FM25]"]
    greedy = results["greedy binary-search"]
    naive = results["naive full exchange"]

    # Who wins, by what factor (the paper's Table-1-style story):
    assert fm.rounds >= N, "FM25 is Θ(n) rounds"
    assert greedy.rounds >= N, "greedy-BS is Θ(n log Δ) rounds"
    assert ours.rounds * 10 < fm.rounds, "≥10x round savings over FM25"
    assert ours.total_bits < naive.total_bits, "beats naive on bits"
    assert ours.total_bits < 12 * fm.total_bits, "same O(n) bit order as FM25"

    benchmark(lambda: run_flin_mittal(regular_workload(128, 8, 3), seed=3))
