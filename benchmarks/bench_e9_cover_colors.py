"""E9 — the Lemma 5.4 cover-colors message: O(n) bits, O(log n) colors.

Builds cover messages for growing vertex sets with availability profiles
matching Algorithm 2's low-degree vertices (≥ 1/3 of the peer palette
available) and checks the two quantitative claims: total message size is
linear in ``n`` (the geometric bitmap series), and the number of cover
colors grows at most logarithmically.
"""

from __future__ import annotations

import math
import random

from repro.analysis import linear_fit, print_table
from repro.core import build_cover_message, decode_cover_message

SIZES = (100, 200, 400, 800, 1600)
DELTA = 16


def build_instance(n: int, rng: random.Random):
    palette = list(range(DELTA, 2 * DELTA - 1))  # Bob's palette at Δ=16
    need = math.ceil(len(palette) / 3)
    vertices = list(range(n))
    available = {
        v: set(rng.sample(palette, rng.randint(need, len(palette))))
        for v in vertices
    }
    return vertices, available, palette


def test_e9_cover_message_scaling(benchmark):
    rng = random.Random(4)
    rows = []
    ns, bits = [], []
    for n in SIZES:
        vertices, available, palette = build_instance(n, rng)
        msg = build_cover_message(vertices, available, palette)
        assignment = decode_cover_message(vertices, msg)
        assert all(assignment[v] in available[v] for v in vertices)
        rows.append(
            [n, msg.nbits, round(msg.nbits / n, 2), len(msg.colors),
             round(3 * math.log2(n), 1)]
        )
        ns.append(n)
        bits.append(msg.nbits)
    fit = linear_fit(ns, bits)
    print_table(
        ["n", "message bits", "bits/n", "cover colors", "3·log2(n)"],
        rows,
        title=(
            f"E9  Lemma 5.4 cover message (Δ={DELTA}; "
            f"fit {fit.slope:.2f}·n+{fit.intercept:.0f}, R²={fit.r2:.4f})"
        ),
    )
    assert fit.r2 > 0.99
    # O(log n) cover colors.
    assert all(r[3] <= r[4] + 4 for r in rows)

    vertices, available, palette = build_instance(800, rng)
    benchmark(lambda: build_cover_message(vertices, available, palette))
