"""E2 — Theorem 1 round scaling: rounds are O(log log n · log Δ).

Two sweeps: ``n`` at fixed ``Δ`` (round growth must track ``log log n``)
and ``Δ`` at fixed ``n`` (growth must track ``log Δ``).  The absolute
numbers carry the paper's loose constants; the shape — near-flat in ``n``,
logarithmic in ``Δ`` — is the claim.
"""

from __future__ import annotations

import math

from repro.analysis import print_table
from repro.core import run_vertex_coloring

from .conftest import regular_workload

N_SIZES = (128, 256, 512, 1024, 2048)
DELTAS = (4, 8, 16, 32)
FIXED_DEGREE = 8
FIXED_N = 512


def test_e2_rounds_polyloglog(benchmark):
    rows_n = []
    rounds_by_n = []
    for n in N_SIZES:
        res = run_vertex_coloring(regular_workload(n, FIXED_DEGREE, 1), seed=1)
        model = math.log2(math.log2(n)) * math.log2(FIXED_DEGREE + 1)
        rows_n.append([n, res.rounds, round(model, 1), round(res.rounds / model, 1)])
        rounds_by_n.append(res.rounds)
    print_table(
        ["n", "rounds", "loglog(n)·log(Δ+1)", "ratio"],
        rows_n,
        title=f"E2a  Theorem 1 rounds vs n (Δ={FIXED_DEGREE})",
    )

    rows_d = []
    rounds_by_d = []
    for d in DELTAS:
        res = run_vertex_coloring(regular_workload(FIXED_N, d, 1), seed=1)
        model = math.log2(math.log2(FIXED_N)) * math.log2(d + 1)
        rows_d.append([d, res.rounds, round(model, 1), round(res.rounds / model, 1)])
        rounds_by_d.append(res.rounds)
    print_table(
        ["Δ", "rounds", "loglog(n)·log(Δ+1)", "ratio"],
        rows_d,
        title=f"E2b  Theorem 1 rounds vs Δ (n={FIXED_N})",
    )

    # Shape checks: a 16x growth in n must cost at most ~2x in rounds
    # (log log), and rounds must grow monotonically-ish but sublinearly in Δ.
    assert rounds_by_n[-1] <= 2.5 * rounds_by_n[0] + 10
    assert rounds_by_d[-1] <= 6 * rounds_by_d[0]
    assert rounds_by_d[-1] < 8 * math.log2(DELTAS[-1]) * math.log2(
        math.log2(FIXED_N)
    ) * 4

    benchmark(lambda: run_vertex_coloring(regular_workload(256, 16, 5), seed=5))
