"""E20 — Corollary 1.1's Markov argument, measured.

The paper converts expected-communication bounds into worst-case-budget
protocols: if a Las Vegas protocol spends ``B`` bits in expectation, then
by Markov's inequality capping the budget at ``c·B`` yields a protocol
that finishes within budget with probability ``≥ 1 − 1/c``.  (This is the
step that lets the Ω(n) worst-case lower bound of Theorem 4 imply the
Ω(n) *expected*-cost bound of Corollary 1.1, contrapositively.)

We measure the actual over-budget tail of Theorem 1's randomized cost
across seeds and compare it to the Markov ceiling — the concentration is
far better than Markov guarantees, as expected from a sum of per-vertex
costs.
"""

from __future__ import annotations

from repro.analysis import mean_ci, print_table
from repro.core import run_vertex_coloring

from .conftest import regular_workload

N = 256
DEGREE = 8
SEEDS = 40
MULTIPLIERS = (1.0, 1.1, 1.25, 1.5, 2.0)


def test_e20_markov_budget_tail(benchmark):
    part = regular_workload(N, DEGREE, seed=20)
    costs = [
        run_vertex_coloring(part, seed=seed).total_bits for seed in range(SEEDS)
    ]
    mean, half = mean_ci(costs)

    rows = []
    for mult in MULTIPLIERS:
        budget = mult * mean
        over = sum(1 for c in costs if c > budget)
        empirical = over / len(costs)
        markov = min(1.0, 1.0 / mult)
        rows.append(
            [f"{mult:.2f}×mean", round(budget), over, round(empirical, 3), round(markov, 3)]
        )
    print_table(
        ["budget", "bits", "runs over", "empirical tail", "Markov ceiling"],
        rows,
        title=(
            f"E20  Corollary 1.1 budget tail (n={N}, Δ={DEGREE}, {SEEDS} seeds; "
            f"mean cost {mean:.0f}±{half:.0f} bits)"
        ),
    )

    # Markov is an upper bound on the tail at every multiplier.
    for (_, _, _, empirical, markov) in rows:
        assert empirical <= markov + 1e-9
    # And the cost is concentrated: at 2x the mean, virtually nothing
    # exceeds the budget.
    assert rows[-1][3] <= 0.05
    # Spread sanity: the randomized cost's spread stays within ±50% of the
    # mean across seeds (sum-of-independent-ish-terms concentration).
    assert max(costs) <= 1.5 * mean
    assert min(costs) >= 0.5 * mean

    benchmark(lambda: run_vertex_coloring(part, seed=99))
