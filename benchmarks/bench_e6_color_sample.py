"""E6 — Color-Sample cost vs slack (Lemma 3.1 / Lemma A.2).

Measures the expected bits and rounds of sampling an available color when
``k`` of ``Δ+1`` colors are available.  The claim is the *upper bound*
``O(log²((Δ+1)/k))`` bits / ``O(log((Δ+1)/k))`` rounds.  Note the constant
structure: Algorithm 3's sampling constant ``C = 150`` means the very first
guess already succeeds whenever ``k ≳ (Δ+1)/C``, so the measured curve is
flat (≈ ``log² C`` bits) across most of the slack range and only climbs as
``k`` approaches 1 and the palette grows — exactly what the lemma permits.
We verify monotonicity in ``1/k``, the envelope, and the worst-case growth
with the palette size at ``k = 1``.
"""

from __future__ import annotations

import math

from repro.analysis import mean_ci, print_table
from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import color_sample_party
from repro.core.slack import SAMPLING_CONSTANT

PALETTE = 256
SLACKS = (256, 128, 64, 16, 4, 1)
WORST_CASE_PALETTES = (16, 64, 256, 1024)
TRIALS = 60


def sample_cost(m: int, k: int, seed: int):
    blocked = m - k
    used_a = set(range(1, blocked // 2 + 1))
    used_b = set(range(blocked // 2 + 1, blocked + 1))
    _, _, t = run_protocol(
        color_sample_party(m, used_a, Stream.from_seed(seed)),
        color_sample_party(m, used_b, Stream.from_seed(seed)),
    )
    return t.total_bits, t.rounds


def test_e6_color_sample_cost(benchmark):
    rows = []
    ys = []
    base_cost = math.log2(SAMPLING_CONSTANT) ** 2  # the first-guess floor
    for k in SLACKS:
        bits, rounds = zip(*(sample_cost(PALETTE, k, s) for s in range(TRIALS)))
        bits_mean, bits_half = mean_ci(bits)
        rounds_mean, _ = mean_ci(rounds)
        model = math.log2((PALETTE + 1) / k) ** 2 + 1
        rows.append(
            [
                k,
                round(bits_mean, 1),
                f"±{bits_half:.1f}",
                round(rounds_mean, 2),
                round(model, 1),
            ]
        )
        ys.append(bits_mean)
    print_table(
        ["available k", "bits (mean)", "ci", "rounds (mean)", "log²((Δ+1)/k)+1"],
        rows,
        title=(
            f"E6a  Color-Sample cost vs slack (Δ+1={PALETTE}; flat "
            f"≈log²C={base_cost:.0f}-bit regime until k ≲ (Δ+1)/C, C={SAMPLING_CONSTANT})"
        ),
    )
    # Shape: cost is monotone as slack shrinks and within the lemma's
    # envelope (model + the first-guess constant).
    assert ys == sorted(ys)
    assert ys[-1] > ys[0]
    for (k, *_), mean in zip(rows, ys):
        envelope = 3 * (math.log2((PALETTE + 1) / k) ** 2 + base_cost) + 16
        assert mean <= envelope

    # Worst case (k = 1): bits grow with the palette size like log² m.
    rows_wc = []
    wc = []
    for m in WORST_CASE_PALETTES:
        bits, _rounds = zip(*(sample_cost(m, 1, s) for s in range(TRIALS)))
        mean, half = mean_ci(bits)
        rows_wc.append([m, round(mean, 1), f"±{half:.1f}", round(math.log2(m) ** 2, 1)])
        wc.append(mean)
    print_table(
        ["palette m", "bits (mean, k=1)", "ci", "log²m"],
        rows_wc,
        title="E6b  Color-Sample worst case (single available color)",
    )
    assert wc == sorted(wc)  # grows with m
    assert wc[-1] <= 6 * math.log2(WORST_CASE_PALETTES[-1]) ** 2

    benchmark(lambda: sample_cost(PALETTE, 4, 123))
