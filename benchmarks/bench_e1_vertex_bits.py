"""E1 — Theorem 1 communication scaling: bits are O(n).

Regenerates the series behind the paper's headline claim: the expected
communication of the ``(Δ+1)``-vertex coloring protocol is ``O(n)`` bits.
We sweep ``n`` at fixed ``Δ`` and check that per-vertex cost is flat and a
linear fit explains the totals.

Ported to :mod:`repro.engine`: each (n, seed) cell is an engine scenario
run through :func:`repro.engine.run_scenario`, so it shares the engine's
workload cache and every cell's coloring is validated by the protocol
adapter.  (The cells pin explicit seeds 1–3, so they are distinct from —
though statistically interchangeable with — the CLI's default
``vertex/regular`` grid, which seeds itself from the workload key.)
"""

from __future__ import annotations

from repro.analysis import linear_fit, mean_ci, print_table
from repro.engine import run_scenario

from .conftest import regular_scenario

SIZES = (128, 256, 512, 1024, 2048)
DEGREE = 8
SEEDS = (1, 2, 3)


def collect_series():
    rows = []
    totals = []
    for n in SIZES:
        records = [
            run_scenario(regular_scenario(n, DEGREE, seed, protocol="vertex"))
            for seed in SEEDS
        ]
        assert all(r["valid"] for r in records)
        bits = [r["total_bits"] for r in records]
        mean, half = mean_ci(bits)
        rows.append([n, round(mean), f"±{half:.0f}", round(mean / n, 2)])
        totals.append((n, mean))
    return rows, totals


def test_e1_bits_linear_in_n(benchmark):
    rows, totals = collect_series()
    fit = linear_fit([n for n, _ in totals], [b for _, b in totals])
    print_table(
        ["n", "bits (mean)", "ci", "bits/n"],
        rows,
        title=(
            "E1  Theorem 1 (Δ+1)-vertex coloring — bits vs n "
            f"(Δ={DEGREE}, fit: {fit.slope:.1f}·n + {fit.intercept:.0f}, "
            f"R²={fit.r2:.4f})"
        ),
    )
    # O(n) shape: the linear fit must be essentially perfect and the
    # per-vertex cost must not drift across a 16x size range.
    assert fit.r2 > 0.99
    per_vertex = [row[3] for row in rows]
    assert max(per_vertex) <= 1.5 * min(per_vertex)

    benchmark(lambda: run_scenario(regular_scenario(512, DEGREE, 1)))
