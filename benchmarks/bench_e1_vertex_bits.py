"""E1 — Theorem 1 communication scaling: bits are O(n).

Regenerates the series behind the paper's headline claim: the expected
communication of the ``(Δ+1)``-vertex coloring protocol is ``O(n)`` bits.
We sweep ``n`` at fixed ``Δ`` and check that per-vertex cost is flat and a
linear fit explains the totals.
"""

from __future__ import annotations

from repro.analysis import linear_fit, mean_ci, print_table
from repro.core import run_vertex_coloring

from .conftest import regular_workload

SIZES = (128, 256, 512, 1024, 2048)
DEGREE = 8
SEEDS = (1, 2, 3)


def collect_series():
    rows = []
    totals = []
    for n in SIZES:
        bits = []
        for seed in SEEDS:
            part = regular_workload(n, DEGREE, seed=seed)
            res = run_vertex_coloring(part, seed=seed)
            bits.append(res.total_bits)
        mean, half = mean_ci(bits)
        rows.append([n, round(mean), f"±{half:.0f}", round(mean / n, 2)])
        totals.append((n, mean))
    return rows, totals


def test_e1_bits_linear_in_n(benchmark):
    rows, totals = collect_series()
    fit = linear_fit([n for n, _ in totals], [b for _, b in totals])
    print_table(
        ["n", "bits (mean)", "ci", "bits/n"],
        rows,
        title=(
            "E1  Theorem 1 (Δ+1)-vertex coloring — bits vs n "
            f"(Δ={DEGREE}, fit: {fit.slope:.1f}·n + {fit.intercept:.0f}, "
            f"R²={fit.r2:.4f})"
        ),
    )
    # O(n) shape: the linear fit must be essentially perfect and the
    # per-vertex cost must not drift across a 16x size range.
    assert fit.r2 > 0.99
    per_vertex = [b / n for n, b in totals]
    assert max(per_vertex) <= 1.5 * min(per_vertex)

    benchmark(lambda: run_vertex_coloring(regular_workload(512, DEGREE, 7), seed=7))
