"""E11 — the FM25 learning-gadget reduction (Section 2.3) end-to-end.

Encodes random bit strings as C4-gadget graphs (all edges at Alice), runs
our Theorem 1 protocol, and has Bob decode the string from the resulting
3-coloring.  Claims: decoding always succeeds (the K4 ambiguity argument),
and because the coloring transfers ``n`` bits of information, the measured
communication is itself Ω(n) — the protocol's O(n) upper bound is tight on
this instance family.
"""

from __future__ import annotations

import random

from repro.analysis import linear_fit, print_table
from repro.core import run_vertex_coloring
from repro.lowerbound import decode_bits, gadget_partition

LENGTHS = (16, 32, 64, 128, 256)


def run_reduction(num_bits: int, seed: int):
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(num_bits)]
    part = gadget_partition(bits)
    res = run_vertex_coloring(part, seed=seed)
    decoded = decode_bits(res.colors, num_bits)
    return bits, decoded, res


def test_e11_learning_reduction(benchmark):
    rows = []
    ns, costs = [], []
    for num_bits in LENGTHS:
        bits, decoded, res = run_reduction(num_bits, seed=num_bits)
        assert decoded == bits, "Bob must recover Alice's string exactly"
        rows.append(
            [
                num_bits,
                4 * num_bits,
                res.total_bits,
                round(res.total_bits / num_bits, 1),
                res.rounds,
            ]
        )
        ns.append(num_bits)
        costs.append(res.total_bits)
    fit = linear_fit(ns, costs)
    print_table(
        ["string bits", "graph n", "protocol bits", "bits per string bit", "rounds"],
        rows,
        title=(
            "E11  FM25 learning gadget: decode success + Ω(n)-shaped cost "
            f"(fit {fit.slope:.1f}·bits+{fit.intercept:.0f}, R²={fit.r2:.4f})"
        ),
    )
    # The protocol must spend at least one bit of communication per string
    # bit (information-theoretic floor of the reduction).
    assert all(r[3] >= 1.0 for r in rows)
    assert fit.r2 > 0.98 and fit.slope >= 1.0

    benchmark(lambda: run_reduction(64, seed=7))
