"""E15 — ablation: Random-Color-Trial iteration budget vs the D1LC fallback.

Theorem 1 splits work between Algorithm 1 (cheap, parallel) and the D1LC
leftover phase (polylog-factor more expensive per vertex).  The paper's
budget ``⌈1 + 4·log_{24/23} log n⌉`` is deliberately generous so the
leftover is ``O(n/log⁴n)``.  This sweep shows the full trade-off curve:
tiny budgets push work into D1LC and inflate total bits; a handful of
iterations already collapses the leftover; the paper's budget (with the
free early-stop) is on the flat part of the curve.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import paper_iteration_count, run_vertex_coloring
from repro.graphs import assert_proper_vertex_coloring

from .conftest import regular_workload

N = 512
DEGREE = 8
CAPS = (0, 1, 2, 4, 8, None)  # None = the paper's budget


def test_e15_trial_budget_tradeoff(benchmark):
    rows = []
    totals = {}
    for cap in CAPS:
        part = regular_workload(N, DEGREE, seed=15)
        res = run_vertex_coloring(part, seed=15, max_trial_iterations=cap)
        assert_proper_vertex_coloring(part.graph, res.colors, DEGREE + 1)
        label = "paper" if cap is None else cap
        trial = res.transcript.phase_stats("random_color_trial")
        leftover_phase = res.transcript.phase_stats("d1lc_leftover")
        rows.append(
            [
                label,
                res.leftover_size,
                trial.total_bits,
                leftover_phase.total_bits,
                res.total_bits,
                res.rounds,
            ]
        )
        totals[label] = res.total_bits
    print_table(
        ["budget", "|Z|", "trial bits", "D1LC bits", "total bits", "rounds"],
        rows,
        title=(
            f"E15  trial-budget ablation (n={N}, Δ={DEGREE}; paper budget = "
            f"{paper_iteration_count(N)} iterations, early-stop active)"
        ),
    )

    # Pushing everything into D1LC (budget 0) costs strictly more than the
    # paper's configuration.
    assert totals[0] > totals["paper"]
    # The curve flattens: by ~8 iterations we are within 2x of the paper
    # budget's total.
    assert totals[8] <= 2 * totals["paper"] + 64

    part = regular_workload(N, DEGREE, seed=16)
    benchmark(lambda: run_vertex_coloring(part, seed=16, max_trial_iterations=4))
