"""E12 — ablation: partition adversaries (Section 3.1's "adversarially
partitioned" premise).

The theorems hold for *every* edge partition.  This ablation runs
Theorem 1 and Theorem 2 across the partitioner zoo and reports how the
costs move: lopsided partitions (everything at one party) make Color-Sample
trivial on one side, degree-balanced splits maximize interaction, yet all
stay within the same O(n) envelope.
"""

from __future__ import annotations

import random

from repro.analysis import print_table
from repro.core import run_edge_coloring, run_vertex_coloring
from repro.graphs import (
    PARTITIONERS,
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    random_regular_graph,
)

N = 512
DEGREE = 10


def test_e12_partition_ablation(benchmark):
    rng = random.Random(12)
    graph = random_regular_graph(N, DEGREE, rng)
    rows = []
    vertex_bits = {}
    for name, factory in sorted(PARTITIONERS.items()):
        part = factory(graph, random.Random(99))
        vres = run_vertex_coloring(part, seed=1)
        assert_proper_vertex_coloring(graph, vres.colors, DEGREE + 1)
        eres = run_edge_coloring(part)
        assert_proper_edge_coloring(graph, eres.colors, 2 * DEGREE - 1)
        rows.append(
            [
                name,
                vres.total_bits,
                round(vres.total_bits / N, 1),
                vres.rounds,
                eres.total_bits,
                eres.rounds,
            ]
        )
        vertex_bits[name] = vres.total_bits
    print_table(
        ["partition", "thm1 bits", "bits/n", "thm1 rounds", "thm2 bits", "thm2 rounds"],
        rows,
        title=f"E12  partition-adversary ablation (n={N}, Δ={DEGREE})",
    )

    # Every adversary stays in the same O(n) envelope: max/min within a
    # small constant factor.
    values = list(vertex_bits.values())
    assert max(values) <= 4 * min(values) + 16 * N
    # Theorem 2 stays 2 rounds regardless of the adversary.
    assert all(r[5] == 2 for r in rows)

    part = PARTITIONERS["degree_split"](graph, random.Random(0))
    benchmark(lambda: run_vertex_coloring(part, seed=2))
