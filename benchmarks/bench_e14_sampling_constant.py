"""E14 — ablation: Algorithm 3's sampling constant ``C``.

DESIGN.md calls out the one genuinely tunable design choice inside
Color-Sample: the inclusion probability ``p = min(1, C·m/k̃²)`` with the
paper's ``C = 150``.  The constant buys first-guess success probability
(large ``C`` → large sample ``S`` → the ``|S∩X|+|S∩Y| < |S|`` test
succeeds immediately) at the price of a larger binary-search domain
(``log²|S|`` bits).  The sweep shows the trade-off: small ``C`` saves bits
when slack is plentiful but pays extra guess rounds when slack is scarce;
the paper's choice is a rounds-robust point.
"""

from __future__ import annotations

from repro.analysis import mean_ci, print_table
from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import color_sample_party

PALETTE = 256
CONSTANTS = (2, 8, 32, 150)
SLACKS = (128, 8, 1)
TRIALS = 60


def sample_cost(m: int, k: int, constant: int, seed: int):
    blocked = m - k
    used_a = set(range(1, blocked // 2 + 1))
    used_b = set(range(blocked // 2 + 1, blocked + 1))
    _, _, t = run_protocol(
        color_sample_party(m, used_a, Stream.from_seed(seed), constant),
        color_sample_party(m, used_b, Stream.from_seed(seed), constant),
    )
    return t.total_bits, t.rounds


def test_e14_sampling_constant_ablation(benchmark):
    rows = []
    summary: dict[tuple[int, int], tuple[float, float]] = {}
    for constant in CONSTANTS:
        for k in SLACKS:
            bits, rounds = zip(
                *(sample_cost(PALETTE, k, constant, s) for s in range(TRIALS))
            )
            bits_mean, _ = mean_ci(bits)
            rounds_mean, _ = mean_ci(rounds)
            summary[(constant, k)] = (bits_mean, rounds_mean)
            rows.append([constant, k, round(bits_mean, 1), round(rounds_mean, 2)])
    print_table(
        ["C", "available k", "bits (mean)", "rounds (mean)"],
        rows,
        title=f"E14  Algorithm 3 sampling-constant ablation (Δ+1={PALETTE})",
    )

    # Trade-off shape: at generous slack, small C is cheaper in bits...
    assert summary[(2, 128)][0] < summary[(150, 128)][0]
    # ...but at scarce slack, small C needs more rounds (failed guesses).
    assert summary[(2, 1)][1] > summary[(150, 1)][1]
    # Correctness held throughout (sample_cost asserts inside run_protocol
    # via the protocols' own invariants); every configuration terminated.
    assert len(summary) == len(CONSTANTS) * len(SLACKS)

    benchmark(lambda: sample_cost(PALETTE, 8, 150, 17))
