"""E4 — Theorem 2: (2Δ−1)-edge coloring uses O(n) bits and O(1) rounds.

Sweeps ``n`` at fixed ``Δ`` and ``Δ`` at fixed ``n``.  Claims to
reproduce: bits grow linearly in ``n``; the round count is a constant 2
(Algorithm 2's two exchanges) regardless of both parameters; bits do not
grow with ``Δ`` beyond the cover-message constants.

Ported to :mod:`repro.engine`: both ladders are engine scenario batches
executed through :func:`repro.engine.sweep`, sharing the same cached
workloads as ``python -m repro sweep``.
"""

from __future__ import annotations

from repro.analysis import linear_fit, print_table
from repro.engine import sweep

from .conftest import regular_scenario

N_SIZES = (128, 256, 512, 1024, 2048)
DELTAS = (10, 14, 20, 28)
FIXED_DEGREE = 10
FIXED_N = 512


def test_e4_edge_coloring_scaling(benchmark):
    records = sweep(
        [regular_scenario(n, FIXED_DEGREE, 2, protocol="edge") for n in N_SIZES],
        jobs=1,
    )
    assert all(r["valid"] for r in records)
    rows_n = [
        [r["n"], r["total_bits"], round(r["total_bits"] / r["n"], 2), r["rounds"]]
        for r in records
    ]
    fit = linear_fit([r["n"] for r in records], [r["total_bits"] for r in records])
    print_table(
        ["n", "bits", "bits/n", "rounds"],
        rows_n,
        title=(
            f"E4a  Theorem 2 (2Δ−1)-edge coloring vs n (Δ={FIXED_DEGREE}, "
            f"fit {fit.slope:.1f}·n+{fit.intercept:.0f}, R²={fit.r2:.4f})"
        ),
    )
    assert fit.r2 > 0.99
    assert all(r["rounds"] == 2 for r in records)

    delta_records = sweep(
        [regular_scenario(FIXED_N, d, 2, protocol="edge") for d in DELTAS],
        jobs=1,
    )
    assert all(r["valid"] for r in delta_records)
    rows_d = [
        [
            r["max_degree"],
            r["total_bits"],
            round(r["total_bits"] / FIXED_N, 2),
            r["rounds"],
        ]
        for r in delta_records
    ]
    print_table(
        ["Δ", "bits", "bits/n", "rounds"],
        rows_d,
        title=f"E4b  Theorem 2 vs Δ (n={FIXED_N})",
    )
    assert all(r["rounds"] == 2 for r in delta_records)
    # Bits stay O(n): per-vertex cost bounded by a constant across Δ.
    per_vertex = [row[2] for row in rows_d]
    assert max(per_vertex) <= 2 * min(per_vertex) + 8

    benchmark(
        lambda: sweep(
            [regular_scenario(512, FIXED_DEGREE, 4, protocol="edge")], jobs=1
        )
    )
