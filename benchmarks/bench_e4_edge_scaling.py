"""E4 — Theorem 2: (2Δ−1)-edge coloring uses O(n) bits and O(1) rounds.

Sweeps ``n`` at fixed ``Δ`` and ``Δ`` at fixed ``n``.  Claims to
reproduce: bits grow linearly in ``n``; the round count is a constant 2
(Algorithm 2's two exchanges) regardless of both parameters; bits do not
grow with ``Δ`` beyond the cover-message constants.
"""

from __future__ import annotations

from repro.analysis import linear_fit, print_table
from repro.core import run_edge_coloring

from .conftest import regular_workload

N_SIZES = (128, 256, 512, 1024, 2048)
DELTAS = (10, 14, 20, 28)
FIXED_DEGREE = 10
FIXED_N = 512


def test_e4_edge_coloring_scaling(benchmark):
    rows_n = []
    totals = []
    for n in N_SIZES:
        res = run_edge_coloring(regular_workload(n, FIXED_DEGREE, 2))
        rows_n.append([n, res.total_bits, round(res.total_bits / n, 2), res.rounds])
        totals.append((n, res.total_bits))
    fit = linear_fit([n for n, _ in totals], [b for _, b in totals])
    print_table(
        ["n", "bits", "bits/n", "rounds"],
        rows_n,
        title=(
            f"E4a  Theorem 2 (2Δ−1)-edge coloring vs n (Δ={FIXED_DEGREE}, "
            f"fit {fit.slope:.1f}·n+{fit.intercept:.0f}, R²={fit.r2:.4f})"
        ),
    )
    assert fit.r2 > 0.99
    assert all(rounds == 2 for _, _, _, rounds in rows_n)

    rows_d = []
    for d in DELTAS:
        res = run_edge_coloring(regular_workload(FIXED_N, d, 2))
        rows_d.append([d, res.total_bits, round(res.total_bits / FIXED_N, 2), res.rounds])
    print_table(
        ["Δ", "bits", "bits/n", "rounds"],
        rows_d,
        title=f"E4b  Theorem 2 vs Δ (n={FIXED_N})",
    )
    assert all(rounds == 2 for _, _, _, rounds in rows_d)
    # Bits stay O(n): per-vertex cost bounded by a constant across Δ.
    per_vertex = [r[2] for r in rows_d]
    assert max(per_vertex) <= 2 * min(per_vertex) + 8

    benchmark(lambda: run_edge_coloring(regular_workload(512, FIXED_DEGREE, 4)))
