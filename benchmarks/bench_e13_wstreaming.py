"""E13 — W-streaming (Section 6.4): space vs the Ω(n) lower bound.

Runs the one-pass greedy W-streaming edge colorer over growing graphs and
the generic streaming→two-party reduction.  Claims illustrated:

* the reduction's communication equals the streaming state size, so
  Theorem 5's Ω(n) communication bound transfers to Ω(n) space
  (Corollary 1.2);
* the greedy algorithm's measured O(n·Δ) state sits above that floor by
  exactly a Δ factor — the gap the paper leaves open.
"""

from __future__ import annotations

import random

from repro.analysis import linear_fit, print_table
from repro.graphs import assert_proper_edge_coloring, partition_random, random_regular_graph
from repro.lowerbound import GreedyWStreamColorer, reduce_streaming_to_two_party, run_wstreaming

SIZES = (128, 256, 512, 1024)
DEGREE = 8


def test_e13_wstreaming_space(benchmark):
    rng = random.Random(13)
    rows = []
    ns, states = [], []
    for n in SIZES:
        graph = random_regular_graph(n, DEGREE, rng)
        colors, peak = run_wstreaming(
            GreedyWStreamColorer(n, DEGREE), graph.edge_list()
        )
        assert_proper_edge_coloring(graph, colors, 2 * DEGREE - 1)

        part = partition_random(graph, rng)
        a_out, b_out, transcript = reduce_streaming_to_two_party(
            part, lambda n=n: GreedyWStreamColorer(n, DEGREE)
        )
        merged = {**a_out, **b_out}
        assert_proper_edge_coloring(graph, merged, 2 * DEGREE - 1)

        rows.append(
            [n, peak, round(peak / n, 1), transcript.total_bits, n]
        )
        ns.append(n)
        states.append(peak)
    fit = linear_fit(ns, states)
    print_table(
        ["n", "state bits", "state/n", "reduction comm bits", "Ω(n) floor"],
        rows,
        title=(
            f"E13  W-streaming greedy state vs the Ω(n) space bound (Δ={DEGREE}; "
            f"state fit {fit.slope:.1f}·n, R²={fit.r2:.4f})"
        ),
    )
    # State equals communication in the 1-pass reduction.
    assert all(r[1] == r[3] for r in rows)
    # Everything sits above the Ω(n) floor; greedy pays the expected Δ factor.
    assert all(r[1] >= r[4] for r in rows)
    assert fit.slope >= 2 * DEGREE - 1 - 0.5

    graph = random_regular_graph(512, DEGREE, rng)
    edges = graph.edge_list()
    benchmark(lambda: run_wstreaming(GreedyWStreamColorer(512, DEGREE), edges))
