"""E19 — round profiles and direction split of the main protocols.

Where do the bits actually flow?  The transcript's per-round log exposes
each protocol's texture:

* Theorem 1 front-loads heavy parallel rounds (every active vertex's
  Color-Sample shares the round) and tapers geometrically with the active
  set — the round profile is the E7 decay curve seen from the wire;
* Theorem 2 is two dense symmetric bursts;
* FM25 is a long whisper: thousands of rounds of a few bits each.

Direction symmetry is also a claim worth pinning: every protocol here is
role-symmetric except the gather steps (D1LC's Bob→Alice shipments).
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.baselines import run_flin_mittal
from repro.core import run_edge_coloring, run_vertex_coloring

from .conftest import regular_workload

N = 512
DEGREE = 8


def profile(round_log, buckets=6):
    """Compress a round log into per-bucket bit totals."""
    if not round_log:
        return [0] * buckets
    size = max(1, (len(round_log) + buckets - 1) // buckets)
    totals = []
    for start in range(0, len(round_log), size):
        chunk = round_log[start : start + size]
        totals.append(sum(a + b for a, b in chunk))
    while len(totals) < buckets:
        totals.append(0)
    return totals[:buckets]


def test_e19_round_profiles(benchmark):
    part = regular_workload(N, DEGREE, seed=19)

    thm1 = run_vertex_coloring(part, seed=19)
    thm2 = run_edge_coloring(part)
    fm = run_flin_mittal(part, seed=19)

    rows = []
    for name, res in (("theorem1", thm1), ("theorem2", thm2), ("fm25", fm)):
        t = res.transcript
        buckets = profile(t.round_log)
        rows.append(
            [
                name,
                t.rounds,
                round(t.total_bits / max(t.rounds, 1), 1),
                t.bits_alice_to_bob,
                t.bits_bob_to_alice,
            ]
            + buckets
        )
    print_table(
        ["protocol", "rounds", "bits/round", "A→B", "B→A"]
        + [f"sextile {i + 1}" for i in range(6)],
        rows,
        title=f"E19  round profiles and direction split (n={N}, Δ={DEGREE})",
    )

    t1 = thm1.transcript
    # Theorem 1's profile decays: the first sextile of rounds carries more
    # bits than the last (active set shrinks geometrically).
    p1 = profile(t1.round_log)
    assert p1[0] > p1[-1]
    # Direction split stays balanced for the symmetric protocols (within
    # 2x — count exchanges are symmetric, confirmations/gathers are not).
    assert t1.bits_alice_to_bob < 2 * t1.bits_bob_to_alice + 64
    assert t1.bits_bob_to_alice < 2 * t1.bits_alice_to_bob + 64
    # FM25's per-round payload is tiny compared to Theorem 1's parallel
    # rounds.
    fm_per_round = fm.total_bits / fm.rounds
    thm1_per_round = thm1.total_bits / thm1.rounds
    assert thm1_per_round > 10 * fm_per_round

    benchmark(lambda: run_vertex_coloring(regular_workload(256, 8, 20), seed=20))
