"""E18 — Theorems 1 & 2 across structured graph families.

The theorems promise their bounds for *every* input graph, not just the
random-regular workloads of E1–E4.  This sweep covers the structured
regimes the protocols' internals care about: heavy-tailed degrees
(Case 1/Case 2 of the Theorem 1 analysis), all-max-degree graphs
(hypercubes — Fournier's hypothesis fails everywhere, forcing Algorithm 2
through deferral), trees, grids, cliques, and the paper's own C4-gadget
hard family.
"""

from __future__ import annotations

import random

from repro.analysis import print_table
from repro.core import run_edge_coloring, run_vertex_coloring
from repro.graphs import (
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    c4_gadget_union,
    caterpillar_graph,
    complete_graph,
    configuration_model_graph,
    grid_graph,
    hypercube_graph,
    partition_random,
    power_law_degree_sequence,
)


def families(rng: random.Random):
    bits = [rng.randint(0, 1) for _ in range(128)]
    degrees = power_law_degree_sequence(600, 2.2, 24, rng)
    return {
        "hypercube d=9": hypercube_graph(9),
        "caterpillar 100x5": caterpillar_graph(100, 5),
        "grid 24x24": grid_graph(24, 24),
        "clique K_32": complete_graph(32),
        "power-law (n=600)": configuration_model_graph(degrees, rng),
        "C4 gadgets (n=512)": c4_gadget_union(bits),
    }


def test_e18_family_sweep(benchmark):
    rng = random.Random(18)
    rows = []
    for name, graph in families(rng).items():
        delta = graph.max_degree()
        part = partition_random(graph, rng)
        vres = run_vertex_coloring(part, seed=1)
        assert_proper_vertex_coloring(graph, vres.colors, delta + 1)
        eres = run_edge_coloring(part)
        assert_proper_edge_coloring(graph, eres.colors, max(2 * delta - 1, 1))
        rows.append(
            [
                name,
                graph.n,
                delta,
                round(vres.total_bits / graph.n, 1),
                vres.rounds,
                round(eres.total_bits / graph.n, 1),
                eres.rounds,
            ]
        )
    print_table(
        ["family", "n", "Δ", "thm1 bits/n", "thm1 rounds", "thm2 bits/n", "thm2 rounds"],
        rows,
        title="E18  structured-family sweep (Theorems 1 & 2)",
    )

    # The O(n) promise: per-vertex vertex-coloring cost stays within one
    # order of magnitude across wildly different structures.
    per_vertex = [r[3] for r in rows]
    assert max(per_vertex) <= 10 * min(per_vertex)
    # Edge protocol: ≤ 2 rounds everywhere (1 for small Δ, 2 otherwise).
    assert all(r[6] <= 2 for r in rows)

    graph = hypercube_graph(8)
    part = partition_random(graph, random.Random(1))
    benchmark(lambda: run_edge_coloring(part))
