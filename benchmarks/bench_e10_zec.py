"""E10 — the ZEC game (Lemma 6.2) and parallel repetition (Prop. 6.3).

Three measurements:

1. best-response optimization over the ``6²¹ × 6²¹`` strategy space —
   the best pair found wins strictly less than always, and never exceeds
   the Lemma 6.2 bound ``11024/11025``;
2. exact product-strategy decay over ``n`` independent instances —
   ``2^{−Ω(n)}`` as Theorem 4 needs;
3. the ZEC-NEW variant's union bound (Section 6.4).
"""

from __future__ import annotations

import math

from repro.rand import Stream
from repro.analysis import print_table
from repro.lowerbound import (
    LEMMA_62_BOUND,
    exact_win_probability,
    holenstein_bound,
    lemma_62_dichotomy,
    optimize_strategies,
    product_success_exact,
    random_strategy,
    zec_new_bound,
    zec_new_win_probability,
)

COPIES = (1, 10, 50, 100, 500)


def test_e10_zec_game_value_and_repetition(benchmark):
    rng = Stream.from_seed(10).derive_random("zec-bench")
    alice, bob, best = optimize_strategies(rng, restarts=8, iterations=20)
    rand_a, rand_b = random_strategy(rng), random_strategy(rng)
    rand_value = exact_win_probability(rand_a, rand_b)

    print_table(
        ["strategy pair", "win probability", "×441", "Lemma 6.2 case"],
        [
            ["random", round(rand_value, 6), round(rand_value * 441, 1),
             lemma_62_dichotomy(rand_a, rand_b)],
            ["best-response optimized", round(best, 6), round(best * 441, 1),
             lemma_62_dichotomy(alice, bob)],
            ["Lemma 6.2 upper bound", round(LEMMA_62_BOUND, 6),
             round(LEMMA_62_BOUND * 441, 1), "-"],
        ],
        title="E10a  ZEC single-game values (exact, 21×21 enumeration)",
    )
    assert rand_value <= best <= LEMMA_62_BOUND
    assert best < 1.0

    rows = []
    for n in COPIES:
        exact = product_success_exact(alice, bob, n)
        rows.append(
            [
                n,
                f"{exact:.3e}",
                round(math.log2(exact), 2),
                f"{holenstein_bound(best, n):.6f}",
            ]
        )
    print_table(
        ["copies n", "product success", "log2", "Prop. 6.3 bound"],
        rows,
        title="E10b  parallel repetition: product-strategy success decays 2^{−Ω(n)}",
    )
    # Exponential decay: log-success is linear in n with negative slope.
    logs = [math.log(product_success_exact(alice, bob, n)) for n in COPIES]
    slopes = [
        (logs[i + 1] - logs[i]) / (COPIES[i + 1] - COPIES[i])
        for i in range(len(COPIES) - 1)
    ]
    assert all(s < 0 for s in slopes)
    assert max(slopes) - min(slopes) < 1e-9  # exactly geometric

    new_bound = zec_new_bound(LEMMA_62_BOUND)
    new_value = zec_new_win_probability(alice, bob)
    print_table(
        ["quantity", "value"],
        [
            ["ZEC-NEW best-found win probability", round(new_value, 8)],
            ["ZEC-NEW paper bound 33074/33075", round(new_bound, 8)],
        ],
        title="E10c  ZEC-NEW (Section 6.4)",
    )
    assert new_value <= new_bound

    benchmark(lambda: exact_win_probability(alice, bob))
