"""E5 — Theorem 3: (2Δ)-edge coloring needs zero communication.

Exercises the zero-communication protocol across graph families,
verifying 0 bits / 0 rounds and a proper ``2Δ``-coloring everywhere —
plus the contrast row against Theorem 2 (one fewer color costs Θ(n)
bits, by Theorem 4 necessarily so).

Ported to :mod:`repro.engine`: the family zoo is drawn from the engine's
scenario registry, so each row is one registry coordinate run under both
the ``edge_zero_comm`` and ``edge`` protocols, with validation done by the
protocol adapters.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.engine import Scenario, run_scenario

FAMILY_ZOO = (
    ("random 10-regular (n=400)", "regular", (("d", 10), ("n", 400))),
    ("complete K_24", "complete", (("n", 24),)),
    ("grid 12x12", "grid", (("cols", 12), ("rows", 12))),
    ("bipartite 9-regular (n=200)", "bipartite_regular", (("d", 9), ("half", 100))),
    ("barbell of stars", "barbell", (("k", 20), ("leaves", 12))),
)


def _scenario(family: str, params: tuple, protocol: str) -> Scenario:
    return Scenario(
        family=family,
        params=params,
        partition="random",
        protocol=protocol,
        seed=5,
    )


def test_e5_zero_communication(benchmark):
    rows = []
    for label, family, params in FAMILY_ZOO:
        zero = run_scenario(_scenario(family, params, "edge_zero_comm"))
        assert zero["valid"]
        assert zero["total_bits"] == 0 and zero["rounds"] == 0
        thm2 = run_scenario(_scenario(family, params, "edge"))
        assert thm2["valid"]
        rows.append(
            [
                label,
                zero["num_colors"],
                zero["total_bits"],
                thm2["num_colors"],
                thm2["total_bits"],
                thm2["rounds"],
            ]
        )
    print_table(
        [
            "family",
            "colors (thm3)",
            "bits (thm3)",
            "colors (thm2)",
            "bits (thm2)",
            "rounds (thm2)",
        ],
        rows,
        title="E5  Theorem 3 (free with 2Δ colors) vs Theorem 2 (Θ(n) with 2Δ−1)",
    )

    # One fewer color switches the cost regime from 0 to Θ(n): every family
    # pays nothing at 2Δ and something linear at 2Δ−1.
    assert all(r[2] == 0 for r in rows)
    assert all(r[4] > 0 for r in rows)

    scenario = Scenario(
        family="regular",
        params=(("d", 10), ("n", 400)),
        partition="random",
        protocol="edge_zero_comm",
        seed=6,
    )
    benchmark(lambda: run_scenario(scenario))
