"""E5 — Theorem 3: (2Δ)-edge coloring needs zero communication.

Exercises the zero-communication protocol across graph families and
partition adversaries, verifying 0 bits / 0 rounds and a proper
``2Δ``-coloring everywhere — plus the contrast row against Theorem 2
(one fewer color costs Θ(n) bits, by Theorem 4 necessarily so).
"""

from __future__ import annotations

import random

from repro.analysis import print_table
from repro.core import run_edge_coloring, run_zero_comm_edge_coloring
from repro.graphs import (
    PARTITIONERS,
    assert_proper_edge_coloring,
    barbell_of_stars,
    complete_graph,
    grid_graph,
    random_bipartite_regular,
    random_regular_graph,
)


def families(rng):
    return {
        "random 10-regular (n=400)": random_regular_graph(400, 10, rng),
        "complete K_24": complete_graph(24),
        "grid 12x12": grid_graph(12, 12),
        "bipartite 9-regular (n=200)": random_bipartite_regular(100, 9, rng),
        "barbell of stars": barbell_of_stars(20, 12),
    }


def test_e5_zero_communication(benchmark):
    rng = random.Random(5)
    rows = []
    for name, graph in families(rng).items():
        delta = graph.max_degree()
        part = PARTITIONERS["random"](graph, rng)
        zero = run_zero_comm_edge_coloring(part)
        assert zero.total_bits == 0 and zero.rounds == 0
        assert_proper_edge_coloring(graph, zero.colors, 2 * delta)
        thm2 = run_edge_coloring(part)
        assert_proper_edge_coloring(graph, thm2.colors, 2 * delta - 1)
        rows.append(
            [
                name,
                2 * delta,
                zero.total_bits,
                2 * delta - 1,
                thm2.total_bits,
                thm2.rounds,
            ]
        )
    print_table(
        [
            "family",
            "colors (thm3)",
            "bits (thm3)",
            "colors (thm2)",
            "bits (thm2)",
            "rounds (thm2)",
        ],
        rows,
        title="E5  Theorem 3 (free with 2Δ colors) vs Theorem 2 (Θ(n) with 2Δ−1)",
    )

    # One fewer color switches the cost regime from 0 to Θ(n): every family
    # pays nothing at 2Δ and something linear at 2Δ−1.
    assert all(r[2] == 0 for r in rows)
    assert all(r[4] > 0 for r in rows)

    g = random_regular_graph(400, 10, random.Random(6))
    part = PARTITIONERS["random"](g, random.Random(6))
    benchmark(lambda: run_zero_comm_edge_coloring(part))
