"""E7 — Random-Color-Trial progress (Lemmas 4.1–4.4).

Instruments Algorithm 1 to record the active-set size at every iteration.
Claims: the count decays geometrically with per-iteration survival ratio
at most 23/24 (Lemma 4.3 — empirically far better), and the paper's
iteration budget leaves at most ``O(n/log⁴ n)`` vertices for the D1LC
leftover phase (Lemma 4.1(i)).
"""

from __future__ import annotations

import math

from repro.analysis import geometric_decay_rate, print_table
from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import random_color_trial_party

from .conftest import regular_workload

N = 1024
DEGREE = 8


def run_instrumented(seed: int):
    part = regular_workload(N, DEGREE, seed=seed)
    history: list[int] = []
    (colors, active), _, t = run_protocol(
        random_color_trial_party(
            part.alice_graph, DEGREE + 1, Stream.from_seed(seed), None, history
        ),
        random_color_trial_party(
            part.bob_graph, DEGREE + 1, Stream.from_seed(seed), None
        ),
    )
    return history, len(active), t


def test_e7_active_set_decay(benchmark):
    history, leftover, transcript = run_instrumented(seed=3)
    rows = [
        [i, count, round(count / N, 4)]
        for i, count in enumerate(history[:14], start=1)
    ]
    decay = geometric_decay_rate(history)
    print_table(
        ["iteration", "active vertices", "fraction"],
        rows,
        title=(
            f"E7  Random-Color-Trial decay (n={N}, Δ={DEGREE}; fitted "
            f"survival ratio {decay:.3f}, Lemma 4.3 bound 23/24 ≈ 0.958; "
            f"leftover {leftover}, bound O(n/log⁴n) ≈ "
            f"{N / math.log2(N) ** 4:.1f})"
        ),
    )

    # Lemma 4.3: empirical survival ratio at most the 23/24 bound.
    assert decay <= 23 / 24 + 0.01
    # Lemma 4.1(i): the paper's budget empties (or nearly empties) the
    # active set — allow the O(n/log^4 n) slack with a generous constant.
    assert leftover <= max(8.0, 40 * N / math.log2(N) ** 4)
    # Monotone decrease.
    assert all(a >= b for a, b in zip(history, history[1:]))

    benchmark(lambda: run_instrumented(seed=11))
