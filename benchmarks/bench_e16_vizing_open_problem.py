"""E16 — the conclusions' open problem: (Δ+1)-edge coloring cost anchor.

The paper closes asking for the optimal communication of ``(Δ+1)``-edge
coloring (Vizing's bound).  The only protocol on record is trivial
gathering — ``Θ(m log n) = Θ(nΔ log n)`` bits — while ``(2Δ−1)`` colors
cost ``Θ(n)`` (Theorem 2) and ``2Δ`` colors cost nothing (Theorem 3).
This bench measures the three points of that color-count/communication
frontier so future protocol work has a quantified target.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.baselines import run_vizing_gather
from repro.core import run_edge_coloring, run_zero_comm_edge_coloring
from repro.graphs import assert_proper_edge_coloring

from .conftest import regular_workload

SIZES = (128, 256, 512)
DEGREE = 12


def test_e16_color_communication_frontier(benchmark):
    rows = []
    for n in SIZES:
        part = regular_workload(n, DEGREE, seed=16)
        graph = part.graph

        vizing = run_vizing_gather(part)
        assert_proper_edge_coloring(graph, vizing.colors, DEGREE + 1)
        thm2 = run_edge_coloring(part)
        assert_proper_edge_coloring(graph, thm2.colors, 2 * DEGREE - 1)
        thm3 = run_zero_comm_edge_coloring(part)
        assert_proper_edge_coloring(graph, thm3.colors, 2 * DEGREE)

        rows.append(
            [
                n,
                vizing.total_bits,
                thm2.total_bits,
                thm3.total_bits,
                round(vizing.total_bits / max(thm2.total_bits, 1), 1),
            ]
        )
    print_table(
        [
            "n",
            f"Δ+1={DEGREE + 1} colors (gather)",
            f"2Δ−1={2 * DEGREE - 1} colors (Thm 2)",
            f"2Δ={2 * DEGREE} colors (Thm 3)",
            "gather/Thm2 ratio",
        ],
        rows,
        title=(
            "E16  color-count vs communication frontier for edge coloring "
            f"(Δ={DEGREE}; the Δ+1 column is the open problem's trivial anchor)"
        ),
    )

    # Frontier ordering at every size: gather ≫ Theorem 2 > Theorem 3 = 0.
    for _n, gather_bits, thm2_bits, thm3_bits, _ratio in rows:
        assert gather_bits > thm2_bits > thm3_bits == 0
    # The gather anchor grows like n·Δ·log n, so its ratio to Theorem 2's
    # Θ(n) grows with n.
    assert rows[-1][4] >= rows[0][4]

    part = regular_workload(256, DEGREE, seed=17)
    benchmark(lambda: run_vizing_gather(part))
