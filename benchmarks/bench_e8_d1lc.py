"""E8 — the D1LC protocol (Lemma 3.3) on leftover-style instances.

Measures the cost of coloring a leftover set ``Z`` of varying size:
Lemma 3.3 promises ``O(|Z| log² |Z| log² Δ + |Z| log³ |Z|)`` expected bits
and ``O(log Δ)`` worst-case rounds.  The leftover instances are produced
the same way Theorem 1 produces them: run Random-Color-Trial for a capped
number of iterations and hand the remainder to D1LC.
"""

from __future__ import annotations

import math

from repro.analysis import print_table
from repro.core import run_vertex_coloring
from repro.graphs import assert_proper_vertex_coloring

from .conftest import regular_workload

N = 512
DEGREE = 8
CAPS = (0, 1, 2, 4)


def test_e8_d1lc_leftover_phase(benchmark):
    rows = []
    for cap in CAPS:
        part = regular_workload(N, DEGREE, seed=8)
        res = run_vertex_coloring(part, seed=8, max_trial_iterations=cap)
        assert_proper_vertex_coloring(part.graph, res.colors, DEGREE + 1)
        stats = res.transcript.phase_stats("d1lc_leftover")
        rows.append(
            [
                cap,
                res.leftover_size,
                stats.total_bits,
                round(stats.total_bits / max(res.leftover_size, 1), 1),
                stats.rounds,
            ]
        )
    print_table(
        ["trial iterations", "|Z|", "D1LC bits", "bits/|Z|", "D1LC rounds"],
        rows,
        title=f"E8  Lemma 3.3 leftover coloring (n={N}, Δ={DEGREE})",
    )

    # Fewer trial iterations → larger leftover → more D1LC bits.
    leftovers = [r[1] for r in rows]
    assert leftovers == sorted(leftovers, reverse=True)
    # Lemma 3.3(ii): rounds bounded by O(log Δ) regardless of |Z|.
    round_cap = 3 * math.log2(DEGREE + 2) + 12
    assert all(r[4] <= round_cap for r in rows)

    part = regular_workload(N, DEGREE, seed=9)
    benchmark(lambda: run_vertex_coloring(part, seed=9, max_trial_iterations=1))
