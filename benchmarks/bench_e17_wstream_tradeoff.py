"""E17 — W-streaming space/colors trade-off above the Ω(n) floor.

Section 1.1 surveys the W-streaming edge-coloring upper-bound line
([BDH+19; CL21; ASZ22; SB24]); Corollary 1.2 gives its first lower bound:
``Ω(n)`` space for ``2Δ−1`` colors.  This bench sweeps the buffer capacity
of the buffer-and-flush scheme, tracing the empirical frontier between
state bits and colors used — as the buffer shrinks toward the Ω(n) floor,
the color count blows up past ``2Δ−1``, exactly the tension the
corollary's bound formalizes.
"""

from __future__ import annotations

import random

from repro.analysis import print_table
from repro.graphs import assert_proper_edge_coloring, random_regular_graph
from repro.lowerbound import (
    BufferedWStreamColorer,
    GreedyWStreamColorer,
    run_wstreaming,
)

N = 512
DEGREE = 12
CAPS = (64, 256, 1024, 4096)


def test_e17_space_color_tradeoff(benchmark):
    rng = random.Random(17)
    graph = random_regular_graph(N, DEGREE, rng)
    edges = graph.edge_list()
    rng.shuffle(edges)

    rows = []
    greedy_colors, greedy_peak = run_wstreaming(
        GreedyWStreamColorer(N, DEGREE), edges
    )
    assert_proper_edge_coloring(graph, greedy_colors, 2 * DEGREE - 1)
    rows.append(["greedy (2Δ−1 colors)", greedy_peak, 2 * DEGREE - 1])

    tradeoff = []
    for cap in CAPS:
        algo = BufferedWStreamColorer(N, cap)
        colors, peak = run_wstreaming(algo, edges)
        assert_proper_edge_coloring(graph, colors)
        used = max(colors.values())
        rows.append([f"buffered cap={cap}", peak, used])
        tradeoff.append((peak, used))
    print_table(
        ["algorithm", "peak state bits", "colors used"],
        rows,
        title=(
            f"E17  W-streaming space vs colors (n={N}, Δ={DEGREE}; "
            f"Corollary 1.2 floor: Ω(n)≈{N} bits at 2Δ−1={2 * DEGREE - 1} colors)"
        ),
    )

    # The dial works: more space → fewer colors, monotonically.
    peaks = [p for p, _ in tradeoff]
    used = [u for _, u in tradeoff]
    assert peaks == sorted(peaks)
    assert used == sorted(used, reverse=True)
    # Small buffers must exceed the (2Δ−1) color budget — the regime the
    # lower bound says cannot be had for free.
    assert used[0] > 2 * DEGREE - 1

    benchmark(lambda: run_wstreaming(BufferedWStreamColorer(N, 256), edges))
