"""Hypothesis-driven end-to-end properties of the main protocols.

These tests treat each full protocol as a black box and assert its
contract on arbitrary (small) random graphs, partitions, and seeds —
the protocol-level analogue of the encoder round-trip tests.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.baselines import run_flin_mittal, run_one_round_sparsify, run_vizing_gather
from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.graphs import (
    PARTITIONERS,
    gnp_random_graph,
    is_proper_edge_coloring,
    is_proper_vertex_coloring,
)

PARTITIONER_NAMES = sorted(PARTITIONERS)


def draw_instance(data, max_n=22):
    n = data.draw(st.integers(min_value=1, max_value=max_n), label="n")
    graph_seed = data.draw(st.integers(min_value=0, max_value=10**6), label="gseed")
    rng = random.Random(graph_seed)
    graph = gnp_random_graph(n, rng.random(), rng)
    pname = data.draw(st.sampled_from(PARTITIONER_NAMES), label="partitioner")
    part = PARTITIONERS[pname](graph, rng)
    seed = data.draw(st.integers(min_value=0, max_value=10**6), label="seed")
    return graph, part, seed


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_theorem1_contract(data):
    graph, part, seed = draw_instance(data)
    res = run_vertex_coloring(part, seed=seed)
    assert is_proper_vertex_coloring(graph, res.colors, graph.max_degree() + 1)
    assert res.rounds <= res.transcript.rounds
    assert res.total_bits >= 0


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_theorem2_contract(data):
    graph, part, seed = draw_instance(data)
    res = run_edge_coloring(part)
    assert set(res.alice_colors) == set(part.alice_edges)
    assert set(res.bob_colors) == set(part.bob_edges)
    assert is_proper_edge_coloring(graph, res.colors, max(2 * graph.max_degree() - 1, 1))
    assert res.rounds <= 2


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_theorem3_contract(data):
    graph, part, _seed = draw_instance(data)
    res = run_zero_comm_edge_coloring(part)
    assert res.total_bits == 0 and res.rounds == 0
    assert is_proper_edge_coloring(graph, res.colors, max(2 * graph.max_degree(), 1))


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_flin_mittal_contract(data):
    graph, part, seed = draw_instance(data, max_n=16)
    res = run_flin_mittal(part, seed=seed)
    assert is_proper_vertex_coloring(graph, res.colors, graph.max_degree() + 1)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_one_round_sparsify_contract(data):
    graph, part, seed = draw_instance(data, max_n=16)
    res = run_one_round_sparsify(part, seed=seed)
    assert is_proper_vertex_coloring(graph, res.colors, graph.max_degree() + 1)
    assert res.rounds <= 2


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_vizing_gather_contract(data):
    graph, part, _seed = draw_instance(data, max_n=16)
    res = run_vizing_gather(part)
    assert is_proper_edge_coloring(graph, res.colors, graph.max_degree() + 1)
    assert res.rounds <= 1
