"""Codec round-trips + cost-honesty checks against real protocol messages."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.comm.bits import bitmap_cost, uint_cost
from repro.comm.codecs import (
    decode_bounded_count,
    decode_color_vector,
    decode_cover_payload,
    decode_edge_list,
    decode_flag_bitmap,
    edge_list_cost,
    encode_bounded_count,
    encode_color_vector,
    encode_cover_payload,
    encode_edge_list,
    encode_flag_bitmap,
)
from repro.core import build_cover_message
from repro.graphs import gnp_random_graph


class TestBoundedCounts:
    @given(st.integers(min_value=0, max_value=10_000))
    def test_round_trip(self, bound):
        value = bound // 2
        bits = encode_bounded_count(value, bound)
        assert len(bits) == uint_cost(bound)
        assert decode_bounded_count(bits, bound) == value

    def test_zero_bound_is_free(self):
        assert encode_bounded_count(0, 0) == []


class TestFlagBitmaps:
    @given(st.lists(st.booleans(), max_size=200))
    def test_round_trip_and_cost(self, flags):
        bits = encode_flag_bitmap(flags)
        assert len(bits) == bitmap_cost(len(flags))
        assert decode_flag_bitmap(bits, len(flags)) == flags


class TestEdgeLists:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_and_declared_cost(self, data):
        n = data.draw(st.integers(min_value=2, max_value=50))
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = random.Random(seed)
        g = gnp_random_graph(n, rng.random(), rng)
        edges = g.edge_list()
        bits = encode_edge_list(edges, n)
        assert len(bits) == edge_list_cost(len(edges), n)
        assert decode_edge_list(bits, n) == edges

    def test_empty_list(self):
        bits = encode_edge_list([], 10)
        assert decode_edge_list(bits, 10) == []


class TestColorVectors:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(min_value=1, max_value=64), max_size=40),
    )
    def test_round_trip(self, num_colors, raw):
        colors = [1 + (c - 1) % num_colors for c in raw]
        bits = encode_color_vector(colors, num_colors)
        assert len(bits) == len(colors) * uint_cost(num_colors)
        assert decode_color_vector(bits, len(colors), num_colors) == colors


class TestCoverMessageCodec:
    def test_real_cover_messages_encode_to_declared_size(self, rng):
        """Lemma 5.4's declared nbits must match an actual encoding
        (up to the color-id width, which the declared cost also uses)."""
        palette = list(range(8, 20))
        for _ in range(25):
            vertices = rng.sample(range(60), rng.randint(1, 30))
            available = {
                v: set(rng.sample(palette, rng.randint(4, len(palette))))
                for v in vertices
            }
            msg = build_cover_message(vertices, available, palette)
            bits = encode_cover_payload(msg.colors, msg.bitmaps, max(palette))
            assert len(bits) == msg.nbits
            colors, bitmaps = decode_cover_payload(
                bits, len(vertices), max(palette)
            )
            assert tuple(colors) == msg.colors
            assert tuple(tuple(b) for b in bitmaps) == msg.bitmaps

    def test_empty_cover_message(self):
        bits = encode_cover_payload([], [], 7)
        colors, bitmaps = decode_cover_payload(bits, 0, 7)
        assert colors == [] and bitmaps == []
