"""Tests for the k-Slack-Int protocols (Lemma A.1 / Algorithm 3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Transcript, run_protocol
from repro.rand import Stream
from repro.core.slack import (
    guess_schedule,
    randomized_slack_party,
    sampling_probability,
    slack_find_party,
)


def run_deterministic(ground, X, Y):
    return run_protocol(
        slack_find_party(ground, X),
        slack_find_party(ground, Y),
    )


class TestDeterministicBinarySearch:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_finds_free_element(self, data):
        m = data.draw(st.integers(min_value=1, max_value=64))
        ground = list(range(m))
        X = set(data.draw(st.lists(st.integers(0, m - 1), max_size=m)))
        Y = set(data.draw(st.lists(st.integers(0, m - 1), max_size=m)))
        # Precondition of the protocol: counting slack is positive.
        if m - len(X) - len(Y) < 1:
            return
        a, b, t = run_deterministic(ground, X, Y)
        assert a == b
        assert a not in X and a not in Y
        assert t.rounds <= math.ceil(math.log2(m)) + 2

    def test_bit_cost_is_polylog(self):
        m = 1 << 12
        ground = list(range(m))
        X = set(range(0, m, 3))
        Y = set(range(1, m, 3))
        _, _, t = run_deterministic(ground, X, Y)
        assert t.total_bits <= 4 * (math.log2(m) + 1) ** 2

    def test_no_slack_raises(self):
        with pytest.raises(ValueError):
            run_deterministic([0, 1], {0}, {1})

    def test_overlapping_sets_still_ok_with_counting_slack(self):
        # X and Y overlap; counting slack 4 - 1 - 1 = 2 >= 1.
        a, b, _ = run_deterministic([0, 1, 2, 3], {0}, {0})
        assert a == b and a in (1, 2, 3)

    def test_singleton_ground(self):
        a, b, t = run_deterministic([7], set(), set())
        assert a == b == 7

    def test_skips_opening_round_with_known_counts(self):
        gen_a = slack_find_party([0, 1], {0}, own_count=1, peer_count=0)
        gen_b = slack_find_party([0, 1], set(), own_count=0, peer_count=1)
        a, b, t = run_protocol(gen_a, gen_b)
        assert a == b == 1
        assert t.rounds == 1  # only the halving step


class TestGuessSchedule:
    def test_descends_to_one(self):
        assert guess_schedule(16) == [16, 8, 4, 2, 1]
        assert guess_schedule(1) == [1]

    def test_length_logarithmic(self):
        assert len(guess_schedule(1 << 20)) == 21

    def test_probability_saturates(self):
        assert sampling_probability(100, 1) == 1.0
        assert sampling_probability(100, 100) == 1.0  # 150·m/k̃² = 1.5, clamped
        assert 0 < sampling_probability(10**6, 10**6) < 1


class TestRandomizedSlack:
    def run_randomized(self, m, X, Y, seed=0):
        return run_protocol(
            randomized_slack_party(m, X, Stream.from_seed(seed)),
            randomized_slack_party(m, Y, Stream.from_seed(seed)),
        )

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_finds_free_element(self, data):
        m = data.draw(st.integers(min_value=1, max_value=64))
        X = set(data.draw(st.lists(st.integers(0, m - 1), max_size=m)))
        Y = set(data.draw(st.lists(st.integers(0, m - 1), max_size=m)))
        if len(X) + len(Y) > m - 1:
            return
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        a, b, t = self.run_randomized(m, X, Y, seed)
        assert a == b
        assert a not in X and a not in Y
        # Lemma A.2 worst case: O(log m) rounds.
        assert t.rounds <= 3 * (math.log2(m) + 2)

    def test_large_slack_is_cheap(self):
        m = 1 << 10
        costs = []
        for seed in range(20):
            _, _, t = self.run_randomized(m, set(), set(), seed)
            costs.append(t.total_bits)
        # With full slack the first guess succeeds: tens of bits, not log^2 m.
        assert sum(costs) / len(costs) < 200

    def test_tiny_slack_costs_more_than_large_slack(self):
        m = 1 << 10
        tight_x = set(range(0, m - 1, 2))
        tight_y = set(range(1, m - 1, 2))
        assert len(tight_x) + len(tight_y) == m - 1
        tight = sum(
            self.run_randomized(m, tight_x, tight_y, s)[2].total_bits
            for s in range(10)
        )
        loose = sum(
            self.run_randomized(m, set(), set(), s)[2].total_bits
            for s in range(10)
        )
        assert tight > loose

    def test_rejects_empty_ground(self):
        with pytest.raises(ValueError):
            next(randomized_slack_party(0, set(), Stream.from_seed(0)))

    def test_violated_precondition_raises(self):
        # X ∪ Y = ground with |X|+|Y| = m: Algorithm 3 must detect this.
        with pytest.raises(RuntimeError):
            run_protocol(
                randomized_slack_party(2, {0}, Stream.from_seed(0)),
                randomized_slack_party(2, {1}, Stream.from_seed(0)),
            )

    def test_transcript_symmetry(self):
        transcript = Transcript()
        run_protocol(
            randomized_slack_party(32, {1, 2}, Stream.from_seed(5)),
            randomized_slack_party(32, {3}, Stream.from_seed(5)),
            transcript,
        )
        # Counts flow both ways every round.
        assert transcript.bits_alice_to_bob > 0
        assert transcript.bits_bob_to_alice > 0
