"""Tests for the deprecated ``repro.comm.randomness`` shim.

The shared-tape contract tests are kept verbatim: the shim must honor the
old ``PublicRandomness`` vocabulary (now over ``repro.rand`` streams).
The spawn order-independence class is the regression test for the bug the
migration fixed — spawn used to consume parent tape state, making sibling
sub-protocol tapes depend on spawn call order.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.randomness import PublicRandomness, newman_overhead_bits, split_rng
from repro.rand import Stream


class TestSharedTapeContract:
    """Two instances with the same seed must produce identical draws —
    the property every protocol in the library relies on."""

    def test_coins_agree(self):
        a, b = PublicRandomness(7), PublicRandomness(7)
        assert [a.coin() for _ in range(100)] == [b.coin() for _ in range(100)]

    def test_permutations_agree(self):
        a, b = PublicRandomness(7), PublicRandomness(7)
        for m in (1, 2, 5, 33):
            assert a.permutation(m) == b.permutation(m)

    def test_masks_agree(self):
        a, b = PublicRandomness(3), PublicRandomness(3)
        assert a.sample_mask(50, 0.3) == b.sample_mask(50, 0.3)

    def test_spawn_agrees_and_diverges_by_label(self):
        a, b = PublicRandomness(1), PublicRandomness(1)
        child_a = a.spawn("phase-1")
        child_b = b.spawn("phase-1")
        assert [child_a.coin() for _ in range(20)] == [
            child_b.coin() for _ in range(20)
        ]
        other = PublicRandomness(1).spawn("phase-2")
        assert [other.coin() for _ in range(20)] != [
            PublicRandomness(1).spawn("phase-1").coin() for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a, b = PublicRandomness(1), PublicRandomness(2)
        assert [a.coin() for _ in range(50)] != [b.coin() for _ in range(50)]


class TestSpawnOrderIndependence:
    """Regression: spawn used to consume parent state (``getrandbits``),
    so sibling spawns depended on call order.  It is pure now."""

    def test_sibling_spawn_order_does_not_matter(self):
        p1, p2 = PublicRandomness(6), PublicRandomness(6)
        x1, y1 = p1.spawn("x"), p1.spawn("y")
        y2, x2 = p2.spawn("y"), p2.spawn("x")
        assert [x1.coin() for _ in range(20)] == [x2.coin() for _ in range(20)]
        assert [y1.coin() for _ in range(20)] == [y2.coin() for _ in range(20)]

    def test_spawn_does_not_consume_parent_tape(self):
        a, b = PublicRandomness(6), PublicRandomness(6)
        a.spawn("child")
        a.spawn("other")
        assert [a.coin() for _ in range(20)] == [b.coin() for _ in range(20)]

    def test_spawn_after_draws_is_stable(self):
        p = PublicRandomness(6)
        before = p.spawn("child")
        p.coin()
        p.permutation(5)
        after = p.spawn("child")
        assert [before.coin() for _ in range(10)] == [
            after.coin() for _ in range(10)
        ]


class TestShimInterop:
    """The shim must satisfy both the old and the new API surfaces."""

    def test_is_a_stream(self):
        assert isinstance(PublicRandomness(0), Stream)

    def test_matches_stream_draws(self):
        pub, stream = PublicRandomness(12), Stream.from_seed(12)
        assert [pub.coin() for _ in range(32)] == [
            stream.coin() for _ in range(32)
        ]

    def test_permutation_is_a_list_with_lazy_perm_api(self):
        perm = PublicRandomness(0).permutation(12)
        assert isinstance(perm, list)
        assert sorted(perm) == list(range(12))
        # Migrated protocols handed a PublicRandomness still work:
        assert perm[perm.index_of(5)] == 5
        assert perm.materialize() == list(perm)

    def test_new_api_available_through_shim(self):
        pub = PublicRandomness(3)
        assert len(pub.coins(10, 0.5)) == 10
        assert list(pub.sample_indices(5, 1.0)) == [0, 1, 2, 3, 4]
        child = pub.derive("sub")
        assert isinstance(child, Stream)


class TestDrawSemantics:
    def test_permutation_is_a_permutation(self):
        pub = PublicRandomness(0)
        perm = pub.permutation(40)
        assert sorted(perm) == list(range(40))

    def test_mask_extremes(self):
        pub = PublicRandomness(0)
        assert pub.sample_mask(10, 1.0) == [True] * 10
        assert pub.sample_mask(10, 0.0) == [False] * 10

    def test_mask_probability_ballpark(self):
        pub = PublicRandomness(0)
        hits = sum(pub.sample_mask(10_000, 0.25))
        assert 2200 < hits < 2800

    def test_uniform_int_range(self):
        pub = PublicRandomness(0)
        values = {pub.uniform_int(3, 6) for _ in range(200)}
        assert values == {3, 4, 5, 6}

    def test_shuffled_leaves_original(self):
        pub = PublicRandomness(0)
        items = [1, 2, 3, 4, 5]
        out = pub.shuffled(items)
        assert sorted(out) == items
        assert items == [1, 2, 3, 4, 5]

    def test_coin_bias(self):
        pub = PublicRandomness(0)
        heads = sum(pub.coin(0.9) for _ in range(2000))
        assert heads > 1600

    def test_draws_counter(self):
        pub = PublicRandomness(0)
        pub.coin()
        pub.permutation(3)
        assert pub.draws == 2


class TestPrivateRandomness:
    def test_split_is_deterministic(self):
        a = split_rng(random.Random(5), "x")
        b = split_rng(random.Random(5), "x")
        assert a.random() == b.random()

    def test_split_differs_by_label(self):
        a = split_rng(random.Random(5), "x")
        b = split_rng(random.Random(5), "y")
        assert a.random() != b.random()


class TestNewmanOverhead:
    def test_monotone_in_n(self):
        assert newman_overhead_bits(1 << 20) >= newman_overhead_bits(1 << 10)

    def test_monotone_in_delta(self):
        assert newman_overhead_bits(100, 0.001) > newman_overhead_bits(100, 0.1)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            newman_overhead_bits(0)
        with pytest.raises(ValueError):
            newman_overhead_bits(10, 1.5)
