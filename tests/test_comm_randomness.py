"""Tests for public/private randomness: the shared-tape contract."""

from __future__ import annotations

import random

import pytest

from repro.comm.randomness import PublicRandomness, newman_overhead_bits, split_rng


class TestSharedTapeContract:
    """Two instances with the same seed must produce identical draws —
    the property every protocol in the library relies on."""

    def test_coins_agree(self):
        a, b = PublicRandomness(7), PublicRandomness(7)
        assert [a.coin() for _ in range(100)] == [b.coin() for _ in range(100)]

    def test_permutations_agree(self):
        a, b = PublicRandomness(7), PublicRandomness(7)
        for m in (1, 2, 5, 33):
            assert a.permutation(m) == b.permutation(m)

    def test_masks_agree(self):
        a, b = PublicRandomness(3), PublicRandomness(3)
        assert a.sample_mask(50, 0.3) == b.sample_mask(50, 0.3)

    def test_spawn_agrees_and_diverges_by_label(self):
        a, b = PublicRandomness(1), PublicRandomness(1)
        child_a = a.spawn("phase-1")
        child_b = b.spawn("phase-1")
        assert [child_a.coin() for _ in range(20)] == [
            child_b.coin() for _ in range(20)
        ]
        other = PublicRandomness(1).spawn("phase-2")
        assert [other.coin() for _ in range(20)] != [
            PublicRandomness(1).spawn("phase-1").coin() for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a, b = PublicRandomness(1), PublicRandomness(2)
        assert [a.coin() for _ in range(50)] != [b.coin() for _ in range(50)]


class TestDrawSemantics:
    def test_permutation_is_a_permutation(self):
        pub = PublicRandomness(0)
        perm = pub.permutation(40)
        assert sorted(perm) == list(range(40))

    def test_mask_extremes(self):
        pub = PublicRandomness(0)
        assert pub.sample_mask(10, 1.0) == [True] * 10
        assert pub.sample_mask(10, 0.0) == [False] * 10

    def test_mask_probability_ballpark(self):
        pub = PublicRandomness(0)
        hits = sum(pub.sample_mask(10_000, 0.25))
        assert 2200 < hits < 2800

    def test_uniform_int_range(self):
        pub = PublicRandomness(0)
        values = {pub.uniform_int(3, 6) for _ in range(200)}
        assert values == {3, 4, 5, 6}

    def test_shuffled_leaves_original(self):
        pub = PublicRandomness(0)
        items = [1, 2, 3, 4, 5]
        out = pub.shuffled(items)
        assert sorted(out) == items
        assert items == [1, 2, 3, 4, 5]

    def test_coin_bias(self):
        pub = PublicRandomness(0)
        heads = sum(pub.coin(0.9) for _ in range(2000))
        assert heads > 1600

    def test_draws_counter(self):
        pub = PublicRandomness(0)
        pub.coin()
        pub.permutation(3)
        assert pub.draws == 2


class TestPrivateRandomness:
    def test_split_is_deterministic(self):
        a = split_rng(random.Random(5), "x")
        b = split_rng(random.Random(5), "x")
        assert a.random() == b.random()

    def test_split_differs_by_label(self):
        a = split_rng(random.Random(5), "x")
        b = split_rng(random.Random(5), "y")
        assert a.random() != b.random()


class TestNewmanOverhead:
    def test_monotone_in_n(self):
        assert newman_overhead_bits(1 << 20) >= newman_overhead_bits(1 << 10)

    def test_monotone_in_delta(self):
        assert newman_overhead_bits(100, 0.001) > newman_overhead_bits(100, 0.1)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            newman_overhead_bits(0)
        with pytest.raises(ValueError):
            newman_overhead_bits(10, 1.5)
