"""Tests for ``repro.comm.randomness`` — Newman's-theorem accounting.

The deprecated ``PublicRandomness``/``split_rng`` shim is retired: the
shared-tape contract (equal seeds → identical draws, label-derived
independence, spawn order-independence) is covered by the ``repro.rand``
suite (``tests/test_rand_core.py``), which tests the real substrate
directly.  These tests pin what this module still owns: the retirement
itself, plus the [New91] public→private overhead accounting.
"""

from __future__ import annotations

import pytest

from repro.comm.randomness import newman_overhead_bits


def test_shim_is_gone():
    """The migration is finished: the old names must not quietly return."""
    import repro.comm as comm
    import repro.comm.randomness as randomness

    for name in ("PublicRandomness", "split_rng", "_PermList"):
        assert not hasattr(randomness, name)
        assert not hasattr(comm, name)
    assert "PublicRandomness" not in comm.__all__
    assert "split_rng" not in comm.__all__


class TestNewmanOverhead:
    def test_monotone_in_n(self):
        assert newman_overhead_bits(1 << 20) >= newman_overhead_bits(1 << 10)

    def test_monotone_in_delta(self):
        assert newman_overhead_bits(100, 0.001) > newman_overhead_bits(100, 0.1)

    def test_additive_form(self):
        # log2(1024) = 10 plus log2(1/0.01) → ceil(6.64...) = 7.
        assert newman_overhead_bits(1024, 0.01) == 17

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            newman_overhead_bits(0)
        with pytest.raises(ValueError):
            newman_overhead_bits(10, 1.5)
