"""Tests for the Channel/Transport API: channels, transports, strict codecs.

Covers the tentpole contract: one channel protocol runs on every
transport with identical transcripts; the lockstep shim preserves desync
detection; the strict transport actually fires on under-declared
messages; ``Msg.empty`` is a cached singleton.
"""

from __future__ import annotations

import pytest

from repro.comm import (
    TRANSPORTS,
    BatchMsg,
    CodecMismatchError,
    CountOnlyTransport,
    LockstepTransport,
    Msg,
    ProtocolDesyncError,
    StrictTransport,
    Transcript,
    as_party,
    compose_parallel,
    resolve_transport,
    run_protocol,
    verify_declared_cost,
)
from repro.comm.codecs import encode_flag_bitmap

ALL_TRANSPORTS = sorted(TRANSPORTS)


def echo_proto(ch, value, rounds):
    """Channel protocol: send ``value`` each round, collect replies."""
    received = []
    for _ in range(rounds):
        reply = yield from ch.send(8, value)
        received.append(reply)
    return received


def count_up_proto(ch, rounds):
    """Exchange i in round i; peers must see each other's counters."""
    seen = []
    for i in range(rounds):
        seen.append((yield from ch.send(4, i)))
    return seen


class TestMsgSingleton:
    def test_empty_is_cached(self):
        assert Msg.empty() is Msg.empty()
        assert Msg.empty().nbits == 0
        assert Msg.empty().payload is None

    def test_batch_get_reuses_singleton(self):
        batch = BatchMsg({"a": Msg(3)})
        assert batch.get("missing") is Msg.empty()


class TestResolveTransport:
    def test_names_and_instances(self):
        assert isinstance(resolve_transport("lockstep"), LockstepTransport)
        assert isinstance(resolve_transport("count"), CountOnlyTransport)
        assert isinstance(resolve_transport("strict"), StrictTransport)
        assert resolve_transport(None) is TRANSPORTS["lockstep"]
        custom = CountOnlyTransport()
        assert resolve_transport(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_transport("telepathy")


class TestChannelExchanges:
    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_send_round_trip(self, name):
        transport = TRANSPORTS[name]
        a, b, t = transport.run(
            lambda ch: echo_proto(ch, 1, 2),
            lambda ch: echo_proto(ch, 2, 2),
        )
        assert a == [2, 2]
        assert b == [1, 1]
        assert t.rounds == 2
        assert t.total_bits == 32

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_exchange_returns_msg(self, name):
        def proto(ch, value):
            reply = yield from ch.exchange(Msg(3, value))
            assert isinstance(reply, Msg)
            return (reply.nbits, reply.payload)

        a, b, _ = TRANSPORTS[name].run(
            lambda ch: proto(ch, 5), lambda ch: proto(ch, 6)
        )
        assert a == (3, 6)
        assert b == (3, 5)

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_recv_is_silent(self, name):
        def talker(ch):
            reply = yield from ch.send(7, 100)
            return reply

        def listener(ch):
            got = yield from ch.recv()
            return got

        a, b, t = TRANSPORTS[name].run(talker, listener)
        assert a is None
        assert b == 100
        assert t.bits_alice_to_bob == 7
        assert t.bits_bob_to_alice == 0
        assert t.messages == 1

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_zero_round_protocol(self, name):
        def silent(ch):
            return "done"
            yield  # pragma: no cover - makes this a generator

        a, b, t = TRANSPORTS[name].run(silent, silent)
        assert a == b == "done"
        assert t.rounds == 0

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_transcript_reuse_accumulates(self, name):
        transport = TRANSPORTS[name]
        t = transport.new_transcript()
        transport.run(lambda ch: echo_proto(ch, 1, 1), lambda ch: echo_proto(ch, 2, 1), t)
        transport.run(lambda ch: echo_proto(ch, 1, 1), lambda ch: echo_proto(ch, 2, 1), t)
        assert t.rounds == 2
        assert t.total_bits == 32


class TestDesync:
    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_round_count_mismatch_raises(self, name):
        with pytest.raises(ProtocolDesyncError):
            TRANSPORTS[name].run(
                lambda ch: echo_proto(ch, 1, 2),
                lambda ch: echo_proto(ch, 2, 3),
            )

    def test_desync_preserved_through_channel_shim(self):
        """Channel protocols adapted by ``as_party`` keep desync detection."""
        with pytest.raises(ProtocolDesyncError):
            run_protocol(
                as_party(echo_proto, "a", 1),
                as_party(echo_proto, "b", 4),
            )

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_phase_schedule_mismatch_raises(self, name):
        def phased(ch, phase_name):
            with ch.phase(phase_name):
                yield from ch.send(1, 0)

        with pytest.raises(ProtocolDesyncError):
            TRANSPORTS[name].run(
                lambda ch: phased(ch, "left"), lambda ch: phased(ch, "right")
            )


class TestChannelPhases:
    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_phase_attribution(self, name):
        def proto(ch):
            with ch.phase("first"):
                yield from ch.send(4, 0)
                yield from ch.send(4, 1)
            with ch.phase("second"):
                yield from ch.send(2, 2)
            return "ok"

        _, _, t = TRANSPORTS[name].run(proto, proto)
        assert t.phase_stats("first").total_bits == 16
        assert t.phase_stats("first").rounds == 2
        assert t.phase_stats("second").total_bits == 4
        assert t.phase_stats("second").rounds == 1
        assert t.total_bits == 20

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_nested_phases_accumulate(self, name):
        def proto(ch):
            with ch.phase("outer"):
                with ch.phase("inner"):
                    yield from ch.send(2, 0)
                yield from ch.send(1, 1)
            return None

        _, _, t = TRANSPORTS[name].run(proto, proto)
        assert t.phase_stats("outer").total_bits == 6
        assert t.phase_stats("inner").total_bits == 4

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_interleaved_phase_segments(self, name):
        """Re-entering a phase accumulates across separate segments."""

        def proto(ch):
            for i in range(2):
                with ch.phase("a"):
                    yield from ch.send(1, i)
                with ch.phase("b"):
                    yield from ch.send(2, i)
            return None

        _, _, t = TRANSPORTS[name].run(proto, proto)
        assert t.phase_stats("a").rounds == 2
        assert t.phase_stats("a").total_bits == 4
        assert t.phase_stats("b").rounds == 2
        assert t.phase_stats("b").total_bits == 8


class TestChannelParallel:
    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_round_sharing(self, name):
        specs = {"x": (7, 1), "y": (9, 3)}  # key -> (value, rounds)

        def party(ch):
            result = yield from ch.parallel(
                {
                    k: (lambda sub, v=v, r=r: echo_proto(sub, v, r))
                    for k, (v, r) in specs.items()
                }
            )
            return result

        a, b, t = TRANSPORTS[name].run(party, party)
        # Round cost is the max of the sub-protocol lengths; bit cost the sum.
        assert t.rounds == 3
        assert a["x"] == [7]
        assert a["y"] == [9, 9, 9]
        assert b == a
        assert t.total_bits == 2 * 8 * (1 + 3)

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_empty_composition_finishes_instantly(self, name):
        def party(ch):
            result = yield from ch.parallel({})
            return result

        a, b, t = TRANSPORTS[name].run(party, party)
        assert a == {} and b == {}
        assert t.rounds == 0

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_instant_subprotocol(self, name):
        def instant(sub):
            return 42
            yield  # pragma: no cover

        def party(ch):
            result = yield from ch.parallel(
                {"i": instant, "e": lambda sub: echo_proto(sub, 3, 1)}
            )
            return result

        a, _, t = TRANSPORTS[name].run(party, party)
        assert a == {"i": 42, "e": [3]}
        assert t.rounds == 1

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_rejects_non_batch_peer_message(self, name):
        """A peer outside the composition fails loudly on every transport."""

        def composed(ch):
            result = yield from ch.parallel(
                {"k": lambda sub: echo_proto(sub, 1, 1)}
            )
            return result

        def plain(ch):
            # A dict payload is the worst case: on an untagged wire it
            # could masquerade as a batch.
            yield from ch.send(8, {"k": (4, 1)}, codec=lambda p: [0] * 8)

        with pytest.raises(TypeError):
            TRANSPORTS[name].run(composed, plain)

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_negative_bits_inside_batch_rejected(self, name):
        def bad_sub(sub):
            yield from sub.send(-2, None)

        def party(ch):
            result = yield from ch.parallel({"k": bad_sub})
            return result

        # Lockstep/count reject at Msg/batch construction (ValueError);
        # strict rejects even earlier at codec verification.
        with pytest.raises((ValueError, CodecMismatchError)):
            TRANSPORTS[name].run(party, party)

    @pytest.mark.parametrize("name", ALL_TRANSPORTS)
    def test_nested_parallel(self, name):
        """Sub-channels are full channels: parallel composes recursively."""

        def inner(ch):
            result = yield from ch.parallel(
                {j: (lambda sub, j=j: echo_proto(sub, j, 1)) for j in range(2)}
            )
            return result

        def outer(ch):
            result = yield from ch.parallel({"nest": inner})
            return result

        a, b, t = TRANSPORTS[name].run(outer, outer)
        assert a == {"nest": {0: [0], 1: [1]}}
        assert t.rounds == 1
        assert t.total_bits == 2 * 2 * 8


class TestCountTransport:
    def test_round_log_skipped(self):
        transport = TRANSPORTS["count"]
        _, _, t = transport.run(
            lambda ch: echo_proto(ch, 1, 3), lambda ch: echo_proto(ch, 2, 3)
        )
        assert t.record_log is False
        assert t.round_log == []
        assert t.rounds == 3

    def test_lockstep_keeps_round_log(self):
        _, _, t = TRANSPORTS["lockstep"].run(
            lambda ch: echo_proto(ch, 1, 3), lambda ch: echo_proto(ch, 2, 3)
        )
        assert t.round_log == [(8, 8), (8, 8), (8, 8)]

    def test_negative_declared_bits_rejected(self):
        def bad(ch):
            yield from ch.send(-1, None)

        with pytest.raises(ValueError):
            TRANSPORTS["count"].run(bad, bad)

    def test_segment_accounting_matches_per_round(self):
        """Bulk segment flushes equal individual record_round calls."""
        reference = Transcript()
        with reference.phase("p"):
            reference.record_round(3, 0)
            reference.record_round(0, 2)

        def proto(ch, bits):
            with ch.phase("p"):
                yield from ch.send(bits[0], 1)
                yield from ch.send(bits[1], 1)
            return None

        _, _, t = TRANSPORTS["count"].run(
            lambda ch: proto(ch, (3, 0)), lambda ch: proto(ch, (0, 2))
        )
        assert t.summary() == reference.summary()
        stats = t.phase_stats("p")
        ref = reference.phase_stats("p")
        assert (stats.bits_alice_to_bob, stats.bits_bob_to_alice, stats.rounds) == (
            ref.bits_alice_to_bob,
            ref.bits_bob_to_alice,
            ref.rounds,
        )


class TestStrictTransport:
    def test_under_declared_int_fires(self):
        """Regression: the codec check actually fires on under-declaration."""

        def cheater(ch):
            # 17 needs 5 bits; declaring 3 under-reports the cost.
            yield from ch.send(3, 17)

        def honest(ch):
            yield from ch.recv()

        with pytest.raises(CodecMismatchError):
            TRANSPORTS["strict"].run(cheater, honest)

    def test_under_declared_bitmap_fires(self):
        def cheater(ch):
            yield from ch.send(2, (True, False, True))

        def honest(ch):
            yield from ch.recv()

        with pytest.raises(CodecMismatchError):
            TRANSPORTS["strict"].run(cheater, honest)

    def test_explicit_codec_mismatch_fires(self):
        def cheater(ch):
            yield from ch.send(
                5, [True] * 3, codec=lambda p: encode_flag_bitmap(p)
            )

        def honest(ch):
            yield from ch.recv()

        with pytest.raises(CodecMismatchError):
            TRANSPORTS["strict"].run(cheater, honest)

    def test_unencodable_payload_rejected(self):
        def opaque(ch):
            yield from ch.send(8, object())

        def honest(ch):
            yield from ch.recv()

        with pytest.raises(CodecMismatchError):
            TRANSPORTS["strict"].run(opaque, honest)

    def test_honest_messages_pass(self):
        def honest(ch):
            reply = yield from ch.send(5, 17)  # 17 fits in 5 bits
            reply = yield from ch.send(3, (True, False, True))
            return reply

        a, b, t = TRANSPORTS["strict"].run(honest, honest)
        assert a == (True, False, True)
        assert t.total_bits == 16

    def test_lockstep_does_not_verify(self):
        """Only strict pays (and enforces) the codec check."""

        def cheater(ch):
            yield from ch.send(3, 17)

        def honest(ch):
            yield from ch.recv()

        _, _, t = TRANSPORTS["lockstep"].run(cheater, honest)
        assert t.total_bits == 3

    def test_verify_declared_cost_none_payload(self):
        verify_declared_cost(0, None)
        with pytest.raises(CodecMismatchError):
            verify_declared_cost(4, None)


class TestLegacyInterop:
    def test_as_party_runs_under_run_protocol(self):
        a, b, t = run_protocol(
            as_party(count_up_proto, 2), as_party(count_up_proto, 2)
        )
        assert a == b == [0, 1]
        assert t.rounds == 2

    def test_as_party_composes_with_compose_parallel(self):
        def party():
            result = yield from compose_parallel(
                {k: as_party(echo_proto, k, rounds) for k, rounds in (("x", 1), ("y", 2))}
            )
            return result

        a, _, t = run_protocol(party(), party())
        assert a == {"x": ["x"], "y": ["y", "y"]}
        assert t.rounds == 2

    def test_legacy_generators_run_on_msg_transports(self):
        def legacy(value, rounds):
            received = []
            for _ in range(rounds):
                reply = yield Msg(8, value)
                received.append(reply.payload)
            return received

        for name in ("lockstep", "strict"):
            a, b, t = TRANSPORTS[name].run(legacy("A", 2), legacy("B", 2))
            assert a == ["B", "B"]
            assert b == ["A", "A"]
            assert t.rounds == 2
