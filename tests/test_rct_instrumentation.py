"""Tests for Random-Color-Trial's active-history instrumentation."""

from __future__ import annotations

from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import random_color_trial_party
from repro.graphs import partition_random, random_regular_graph


class TestActiveHistory:
    def run(self, rng, n=120, d=6, cap=None, seed=2):
        g = random_regular_graph(n, d, rng)
        part = partition_random(g, rng)
        history: list[int] = []
        (colors, active), _, t = run_protocol(
            random_color_trial_party(
                part.alice_graph, d + 1, Stream.from_seed(seed), cap, history
            ),
            random_color_trial_party(
                part.bob_graph, d + 1, Stream.from_seed(seed), cap
            ),
        )
        return history, colors, active, t

    def test_history_starts_at_n_and_decreases(self, rng):
        history, _, _, _ = self.run(rng)
        assert history[0] == 120
        assert all(a >= b for a, b in zip(history, history[1:]))

    def test_history_consistent_with_outcome(self, rng):
        history, colors, active, _ = self.run(rng)
        # The last recorded size can exceed the final count by the last
        # iteration's progress, but never undershoot it.
        assert history[-1] >= len(active)
        assert len(colors) + len(active) == 120

    def test_capped_run_records_exactly_cap_entries(self, rng):
        history, _, active, _ = self.run(rng, cap=3)
        assert len(history) == 3
        assert active  # three iterations cannot finish a 6-regular graph whp

    def test_instrumentation_does_not_change_protocol(self, rng):
        g = random_regular_graph(80, 6, rng)
        part = partition_random(g, rng)

        def run(with_history):
            history = [] if with_history else None
            (colors, active), _, t = run_protocol(
                random_color_trial_party(
                    part.alice_graph, 7, Stream.from_seed(9), None, history
                ),
                random_color_trial_party(
                    part.bob_graph, 7, Stream.from_seed(9), None
                ),
            )
            return colors, active, t.total_bits, t.rounds

        assert run(True) == run(False)
