"""Property/fuzz tests for channel semantics across all three transports.

The example-based parity suite runs the repo's real protocols; these tests
instead *generate* protocol shapes — random phase nesting, random keyed
parallel compositions whose sub-protocols finish in different rounds,
zero-payload sends, one-sided silence — from a seed, and assert the two
hard contracts hold on every shape:

1. lockstep == count == strict, bit for bit: identical return values and
   identical transcript fingerprints (the with-log fingerprint also agrees
   between the two log-keeping transports);
2. schedule violations (mismatched phase stacks, one party terminating
   early) raise :class:`ProtocolDesyncError` on every transport — never a
   silent desync.

Shapes are built from ``random.Random(seed)`` only, so failures replay
from the printed seed.
"""

from __future__ import annotations

import random

import pytest

from repro.comm import TRANSPORTS
from repro.comm.transport import ProtocolDesyncError

ALL_TRANSPORTS = sorted(TRANSPORTS)

# ---------------------------------------------------------------------------
# random protocol shapes
# ---------------------------------------------------------------------------
#
# A *plan* is a list of steps, interpreted identically by both parties
# (the schedule is common knowledge; only payload values differ by role):
#
#   ("both",  width, a_val, b_val)   both parties send width-bit ints
#   ("zero",)                        both parties send zero-payload silence
#   ("one",   role, width, val)      `role` sends, the other recv()s
#   ("phase", name, subplan)         both parties scope subplan in a phase
#   ("par",   {key: subplan})        keyed parallel; per-key plans have
#                                    different lengths, so sub-protocols
#                                    finish in different rounds


def _random_plan(rng: random.Random, depth: int, budget: list[int]) -> list:
    plan = []
    steps = rng.randint(1, 4)
    for _ in range(steps):
        if budget[0] <= 0:
            break
        budget[0] -= 1
        kinds = ["both", "both", "zero", "one"]
        if depth < 2:
            kinds += ["phase", "par"]
        kind = rng.choice(kinds)
        if kind == "both":
            width = rng.randint(1, 12)
            plan.append(
                (
                    "both",
                    width,
                    rng.randrange(1 << width),
                    rng.randrange(1 << width),
                )
            )
        elif kind == "zero":
            plan.append(("zero",))
        elif kind == "one":
            width = rng.randint(1, 8)
            plan.append(
                ("one", rng.choice(["alice", "bob"]), width, rng.randrange(1 << width))
            )
        elif kind == "phase":
            name = f"ph{rng.randint(0, 5)}"
            sub = _random_plan(rng, depth + 1, budget)
            if sub:
                plan.append(("phase", name, sub))
        else:
            keys = rng.sample(
                [0, 1, "k2", ("tup", 3), 4, "k5", 6, 7], rng.randint(1, 4)
            )
            keyed = {}
            for key in keys:
                sub = _random_plan(rng, depth + 1, budget)
                keyed[key] = sub or [("zero",)]
            if keyed:
                plan.append(("par", keyed))
    return plan


def _run_plan(ch, plan, role):
    """Interpret a plan on a channel; returns the observed reply trace."""
    trace = []
    for step in plan:
        kind = step[0]
        if kind == "both":
            _, width, a_val, b_val = step
            reply = yield from ch.send(width, a_val if role == "alice" else b_val)
            trace.append(reply)
        elif kind == "zero":
            reply = yield from ch.send(0, None)
            trace.append(reply)
        elif kind == "one":
            _, sender, width, val = step
            if role == sender:
                reply = yield from ch.send(width, val)
            else:
                reply = yield from ch.recv()
            trace.append(reply)
        elif kind == "phase":
            _, name, sub = step
            with ch.phase(name):
                inner = yield from _run_plan(ch, sub, role)
            trace.append(inner)
        else:
            _, keyed = step
            results = yield from ch.parallel(
                {key: (_run_plan, sub, role) for key, sub in keyed.items()}
            )
            trace.append(sorted(results.items(), key=lambda kv: repr(kv[0])))
    return trace


def _execute(seed: int, transport: str):
    rng = random.Random(seed)
    plan = _random_plan(rng, 0, [rng.randint(4, 14)])
    if not plan:
        plan = [("both", 3, 1, 2)]
    core = TRANSPORTS[transport]
    transcript = core.new_transcript()
    a, b, transcript = core.run(
        (_run_plan, plan, "alice"), (_run_plan, plan, "bob"), transcript
    )
    return a, b, transcript


@pytest.mark.parametrize("seed", range(40))
def test_random_shapes_are_transport_invariant(seed):
    runs = {t: _execute(seed, t) for t in ALL_TRANSPORTS}
    a_ref, b_ref, ref = runs["lockstep"]
    for transport, (a, b, transcript) in runs.items():
        assert a == a_ref, (seed, transport)
        assert b == b_ref, (seed, transport)
        assert transcript.fingerprint() == ref.fingerprint(), (seed, transport)
    assert runs["strict"][2].fingerprint(with_log=True) == ref.fingerprint(
        with_log=True
    ), seed
    assert runs["count"][2].round_log == []


@pytest.mark.parametrize("seed", range(40))
def test_phase_stack_mismatch_always_raises(seed):
    """Perturbing one party's phase schedule desyncs loudly, everywhere.

    Alice wraps her steps in an extra phase (or renames one) that Bob does
    not; every transport must raise ProtocolDesyncError — not silently
    misattribute the rounds.
    """
    rng = random.Random(seed)
    plan = _random_plan(rng, 0, [rng.randint(4, 14)]) or [("both", 3, 1, 2)]

    def alice(ch):
        with ch.phase("alice-only"):
            result = yield from _run_plan(ch, plan, "alice")
        return result

    for transport in ALL_TRANSPORTS:
        core = TRANSPORTS[transport]
        with pytest.raises(ProtocolDesyncError):
            core.run(alice, (_run_plan, plan, "bob"), core.new_transcript())


@pytest.mark.parametrize("seed", range(20))
def test_renamed_nested_phase_always_raises(seed):
    """A nested phase whose *name* differs between the parties desyncs."""
    rng = random.Random(seed)
    inner = _random_plan(rng, 1, [rng.randint(2, 6)]) or [("both", 3, 1, 2)]

    def party(name):
        def proto(ch):
            with ch.phase("outer"):
                with ch.phase(name):
                    result = yield from _run_plan(
                        ch, inner, "alice" if name == "mine" else "bob"
                    )
            return result

        return proto

    for transport in ALL_TRANSPORTS:
        core = TRANSPORTS[transport]
        with pytest.raises(ProtocolDesyncError):
            core.run(party("mine"), party("yours"), core.new_transcript())


@pytest.mark.parametrize("seed", range(20))
def test_early_termination_always_raises(seed):
    """One party running an extra round past the other's end desyncs."""
    rng = random.Random(seed)
    plan = _random_plan(rng, 0, [rng.randint(2, 8)]) or [("both", 3, 1, 2)]

    def greedy_alice(ch):
        result = yield from _run_plan(ch, plan, "alice")
        yield from ch.send(4, 9)  # one round the peer never plays
        return result

    for transport in ALL_TRANSPORTS:
        core = TRANSPORTS[transport]
        with pytest.raises(ProtocolDesyncError):
            core.run(greedy_alice, (_run_plan, plan, "bob"), core.new_transcript())


def test_exchange_paired_with_plain_send_desyncs_on_count():
    """Msg-level exchange needs the peer at Msg level on the count wire."""
    from repro.comm.messages import Msg

    def alice(ch):
        reply = yield from ch.exchange(Msg(4, 7))
        return reply

    def bob(ch):
        reply = yield from ch.send(4, 5)
        return reply

    core = TRANSPORTS["count"]
    with pytest.raises(ProtocolDesyncError):
        core.run(alice, bob, core.new_transcript())
