"""Smoke tests: every example script runs end to end and reports success."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart",
        "frequency_assignment",
        "link_scheduling",
        "exam_timetabling",
        "lower_bound_game",
    } <= set(EXAMPLES)


def test_quickstart_reports_all_three_theorems(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "Theorem 1" in out
    assert "Theorem 2" in out
    assert "Theorem 3" in out
    assert "zero communication" in out


def test_lower_bound_game_decodes_secret(capsys):
    load_example("lower_bound_game").main()
    out = capsys.readouterr().out
    assert "decoded correctly         : True" in out
