"""Unit tests for the CSR graph backend.

Mirrors ``test_graphs_bitset.py`` for the sparse backend: contract
checks, the mutation overlay (pending additions + in-row removals), the
numpy/pure build-parity guarantee, and the backend-native confirmation
sweep that ``repro.core.probes`` dispatches to.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    CSRGraph,
    GRAPH_BACKENDS,
    Graph,
    GraphBuilder,
    as_backend,
    from_edge_stream,
    gnp_random_graph,
)
from repro.rand import kernels


def test_csr_is_a_registered_backend():
    assert GRAPH_BACKENDS["csr"] is CSRGraph


def test_basic_construction_and_queries():
    g = CSRGraph(5, [(0, 1), (1, 2), (3, 4)])
    assert g.n == 5 and g.m == 3
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)
    assert g.neighbors(1) == {0, 2}
    assert list(g.iter_neighbors(1)) == [0, 2]
    assert g.degree(1) == 2 and g.degree(3) == 1
    assert g.degrees() == [1, 2, 1, 1, 1]
    assert g.max_degree() == 2
    assert g.edge_list() == [(0, 1), (1, 2), (3, 4)]
    assert repr(g).startswith("CSRGraph(")


def test_duplicate_and_reversed_input_edges_collapse():
    g = CSRGraph(4, [(0, 1), (1, 0), (2, 3), (0, 1)])
    assert g.m == 2
    assert g.edge_list() == [(0, 1), (2, 3)]


def test_queries_are_plain_python_ints():
    g = CSRGraph(4, [(0, 1), (1, 2)])
    assert all(type(v) is int for v in g.degrees())
    assert all(type(x) is int for e in g.edges() for x in e)
    assert all(type(u) is int for u in g.iter_neighbors(1))


def test_add_remove_edge_contract():
    g = CSRGraph(3)
    assert g.add_edge(0, 1) is True
    assert g.add_edge(1, 0) is False  # already present (still pending)
    with pytest.raises(ValueError):
        g.add_edge(0, 0)
    with pytest.raises(ValueError):
        g.add_edge(0, 3)
    g.remove_edge(0, 1)
    assert g.m == 0
    with pytest.raises(KeyError):
        g.remove_edge(0, 1)


def test_pending_overlay_answers_without_compaction():
    g = CSRGraph(6, [(0, 1), (2, 3)])
    g.add_edge(0, 5)
    # Single-row queries see the staged edge before any rebuild.
    assert g._pending  # staged, not flushed
    assert g.has_edge(0, 5) and g.has_edge(5, 0)
    assert g.degree(0) == 2 and g.degree(5) == 1
    assert g.degrees() == [2, 1, 1, 1, 0, 1]
    assert g.max_degree() == 2
    assert g._pending  # degree answers did not force a flush
    # Row iteration folds the overlay in, in sorted order.
    assert list(g.iter_neighbors(0)) == [1, 5]
    assert not g._pending
    assert list(g.edges()) == [(0, 1), (0, 5), (2, 3)]


def test_remove_staged_edge_unstages_it():
    g = CSRGraph(4, [(0, 1)])
    g.add_edge(2, 3)
    g.remove_edge(2, 3)
    assert not g._pending and g.m == 1
    assert not g.has_edge(2, 3)


def test_remove_compacted_edge_shifts_row_in_place():
    g = CSRGraph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    g.remove_edge(0, 2)
    assert g.degree(0) == 3 and g.m == 3
    assert list(g.iter_neighbors(0)) == [1, 3, 4]
    assert not g.has_edge(0, 2) and not g.has_edge(2, 0)
    assert g.degree(2) == 0


def test_max_degree_cache_invalidates_on_mutation():
    g = CSRGraph(4, [(0, 1)])
    assert g.max_degree() == 1
    g.add_edge(0, 2)
    assert g.max_degree() == 2
    g.add_edge(0, 3)
    assert g.max_degree() == 3
    g.remove_edge(0, 1)
    g.remove_edge(0, 2)
    assert g.max_degree() == 1


def test_copy_is_independent():
    g = CSRGraph(4, [(0, 1), (2, 3)])
    g.add_edge(1, 2)  # leave a pending overlay at copy time
    c = g.copy()
    assert c == g
    c.add_edge(0, 3)
    g.remove_edge(0, 1)
    assert c.has_edge(0, 3) and not g.has_edge(0, 3)
    assert c.has_edge(0, 1)  # the copy kept the edge g dropped


def test_graph_builder_validates_eagerly():
    b = GraphBuilder(3)
    with pytest.raises(ValueError):
        b.add(0, 3)
    with pytest.raises(ValueError):
        b.add(1, 1)
    with pytest.raises(ValueError):
        GraphBuilder(-1)
    b.extend([(0, 1), (1, 2), (0, 1)])
    g = b.to_graph()
    assert g.m == 2 and g.edge_list() == [(0, 1), (1, 2)]


def test_from_edge_stream_consumes_a_generator():
    g = from_edge_stream(6, ((u, u + 1) for u in range(5)))
    assert g.m == 5 and g.max_degree() == 2


def test_empty_graph():
    g = CSRGraph(0)
    assert g.n == 0 and g.m == 0
    assert g.degrees() == [] and g.max_degree() == 0
    assert list(g.edges()) == []


def test_numpy_and_pure_builds_are_byte_identical():
    rng = random.Random(17)
    edges = list(gnp_random_graph(80, 0.3, rng).edges())
    assert len(edges) >= 1024 / 2  # enough directed entries to hit numpy
    with_np = CSRGraph(80, edges)
    with kernels.disabled():
        without_np = CSRGraph(80, edges)
    assert with_np._indptr == without_np._indptr
    assert with_np._indices == without_np._indices
    assert with_np == without_np


def test_as_backend_round_trip():
    rng = random.Random(5)
    g = gnp_random_graph(30, 0.2, rng)
    c = as_backend(g, "csr")
    assert isinstance(c, CSRGraph)
    assert c == g and list(c.edges()) == list(g.edges())
    back = as_backend(c, "set")
    assert type(back) is Graph and back == g


def test_confirmation_bits_matches_generic_probe_path():
    from repro.core.probes import confirmation_bits

    rng = random.Random(9)
    g = gnp_random_graph(40, 0.15, rng)
    c = as_backend(g, "csr")
    awake = [v for v in range(40) if v % 3 != 0]
    chosen = {v: color for v, color in zip(awake, [1, 2, 3] * 40)}
    assert confirmation_bits(c, awake, chosen) == confirmation_bits(
        g, awake, chosen
    )
    assert c.confirmation_bits(awake, chosen) == confirmation_bits(
        g, awake, chosen
    )


def test_induced_subgraph_and_subgraph_edges_parity():
    rng = random.Random(13)
    g = gnp_random_graph(25, 0.25, rng)
    c = as_backend(g, "csr")
    keep = set(range(0, 25, 2))
    assert c.induced_subgraph(keep) == g.induced_subgraph(keep)
    some = [e for i, e in enumerate(g.edges()) if i % 2 == 0]
    assert c.subgraph_edges(some) == g.subgraph_edges(some)


def test_neighbor_mask_matches_bitset():
    rng = random.Random(21)
    g = gnp_random_graph(70, 0.1, rng)
    b = as_backend(g, "bitset")
    c = as_backend(g, "csr")
    for v in range(70):
        assert c.neighbor_mask(v) == b.neighbor_mask(v)


def test_randomized_mirror_against_set_backend():
    """Drive Graph and CSRGraph through one op sequence; all queries agree."""
    rng = random.Random(321)
    n = 24
    ref = Graph(n)
    csr = CSRGraph(n)
    for _ in range(600):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        op = rng.random()
        if op < 0.55:
            assert ref.add_edge(u, v) == csr.add_edge(u, v)
        elif op < 0.75 and ref.has_edge(u, v):
            ref.remove_edge(u, v)
            csr.remove_edge(u, v)
        else:
            assert ref.has_edge(u, v) == csr.has_edge(u, v)
            assert ref.degree(u) == csr.degree(u)
            assert ref.neighbors(v) == csr.neighbors(v)
    assert ref.m == csr.m
    assert ref.degrees() == csr.degrees()
    assert ref.max_degree() == csr.max_degree()
    assert list(ref.edges()) == list(csr.edges())
    assert ref == csr
    packed = csr.pack_vertices(range(0, n, 3))
    for v in range(n):
        assert csr.has_neighbor_in(v, packed) == ref.has_neighbor_in(v, packed)
        assert csr.neighbors_in(v, packed) == ref.neighbors_in(v, packed)
