"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Graph,
    gnp_random_graph,
    partition_alternating,
    partition_all_alice,
    partition_all_bob,
    partition_degree_split,
    partition_random,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for test reproducibility."""
    return random.Random(0xC0FFEE)


def random_graph_family(rng: random.Random, count: int, max_n: int = 40) -> list[Graph]:
    """A batch of assorted random graphs for sweep-style tests."""
    graphs = []
    for _ in range(count):
        n = rng.randint(2, max_n)
        p = rng.random() * 0.7
        graphs.append(gnp_random_graph(n, p, rng))
    return graphs


def all_partitions(graph: Graph, rng: random.Random):
    """One partition of each flavor, for adversary sweeps."""
    return [
        partition_random(graph, rng),
        partition_all_alice(graph),
        partition_all_bob(graph),
        partition_alternating(graph),
        partition_degree_split(graph),
    ]


def make_fournier_instance(n: int, p: float, rng: random.Random) -> Graph:
    """A random graph whose max-degree vertices form an independent set."""
    graph = gnp_random_graph(n, p, rng)
    while True:
        delta = graph.max_degree()
        if delta == 0:
            return graph
        heavy = {v for v in graph.vertices() if graph.degree(v) == delta}
        bad = [(u, v) for u, v in graph.edges() if u in heavy and v in heavy]
        if not bad:
            return graph
        graph.remove_edge(*bad[0])
