"""Public API surface tests: documented names exist and stay importable.

Downstream code imports through the package ``__all__`` lists; these
tests freeze that surface so refactors cannot silently drop exports.
"""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.coloring",
    "repro.comm",
    "repro.core",
    "repro.graphs",
    "repro.lowerbound",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.{export} missing"


def test_top_level_subpackages():
    assert repro.__version__ == "1.1.0"
    for sub in (
        "analysis",
        "baselines",
        "coloring",
        "comm",
        "core",
        "engine",
        "graphs",
        "lowerbound",
        "obs",
        "verify",
    ):
        assert hasattr(repro, sub)


def test_headline_entry_points_exist():
    """The functions the README documents."""
    from repro.core import (
        run_edge_coloring,
        run_vertex_coloring,
        run_zero_comm_edge_coloring,
    )
    from repro.verify import verify_edge_result, verify_vertex_result

    for fn in (
        run_edge_coloring,
        run_vertex_coloring,
        run_zero_comm_edge_coloring,
        verify_edge_result,
        verify_vertex_result,
    ):
        assert callable(fn)
        assert fn.__doc__, f"{fn.__name__} must be documented"


def test_every_public_function_has_a_docstring():
    import inspect

    undocumented = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        for export in getattr(module, "__all__", []):
            obj = getattr(module, export)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{name}.{export}")
    assert not undocumented, f"undocumented public items: {undocumented}"
