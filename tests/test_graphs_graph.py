"""Tests for the Graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.graphs import Graph, canonical_edge


def graph_strategy(max_n=12):
    """Hypothesis strategy producing small random graphs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=0, max_value=max_n))
        if n < 2:
            return Graph(n)
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
            )
        )
        return Graph(n, (canonical_edge(u, v) for u, v in edges))

    return build()


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_loops(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestGraphBasics:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0 and g.max_degree() == 0

    def test_add_and_remove(self):
        g = Graph(4)
        assert g.add_edge(0, 1)
        assert not g.add_edge(1, 0)  # duplicate
        assert g.m == 1
        g.remove_edge(0, 1)
        assert g.m == 0
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_rejects_out_of_range(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)

    def test_rejects_self_loop(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_degrees_and_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.neighbors(0) == {1, 2, 3}
        assert g.degrees() == [3, 1, 1, 1]
        assert g.max_degree() == 3

    def test_edge_list_sorted_canonical(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert g.edge_list() == [(0, 2), (1, 3)]

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1 and h.m == 2

    def test_union(self):
        g = Graph(3, [(0, 1)])
        h = Graph(3, [(1, 2), (0, 1)])
        u = g.union(h)
        assert u.edge_list() == [(0, 1), (1, 2)]
        with pytest.raises(ValueError):
            g.union(Graph(4))

    def test_independent_set(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.is_independent_set([0, 2])
        assert not g.is_independent_set([0, 1])
        assert g.is_independent_set([])

    def test_subgraph_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph_edges([(1, 2)])
        assert sub.n == 4 and sub.edge_list() == [(1, 2)]

    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])


class TestGraphProperties:
    @given(graph_strategy())
    def test_handshake_lemma(self, g):
        assert sum(g.degrees()) == 2 * g.m

    @given(graph_strategy())
    def test_edges_canonical_and_unique(self, g):
        edges = list(g.edges())
        assert all(u < v for u, v in edges)
        assert len(edges) == len(set(edges)) == g.m

    @given(graph_strategy())
    def test_neighbor_symmetry(self, g):
        for u, v in g.edges():
            assert v in g.neighbors(u)
            assert u in g.neighbors(v)

    @given(graph_strategy())
    def test_copy_equality(self, g):
        assert g.copy() == g
