"""Distributed sweep tests: sharding, journal resume, merge verification.

The headline invariant of ``repro.engine.sharding``: a full serial sweep
and the merged union of any N-way sharded sweep write bit-for-bit
identical ``sweep.json`` documents — including under replication
(``--reps``) and after a crash/resume cycle.
"""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.engine import (
    Journal,
    MergeError,
    Scenario,
    merge_documents,
    parse_shard_spec,
    run_scenario,
    run_scenario_reps,
    shard_index,
    shard_scenarios,
    smoke_scenarios,
    sweep,
    write_results,
)
from repro.engine import runner as runner_module
from repro.__main__ import main


def _tiny(protocol: str, backend: str = "set", partition: str = "random") -> Scenario:
    return Scenario(
        family="regular",
        params=(("d", 4), ("n", 24)),
        partition=partition,
        protocol=protocol,
        backend=backend,
    )


def _tiny_grid() -> list[Scenario]:
    """Six fast coordinates spanning protocols, partitions, and backends."""
    return [
        _tiny("vertex"),
        _tiny("vertex", backend="bitset"),
        _tiny("vertex", partition="all_alice"),
        _tiny("edge"),
        _tiny("edge_zero_comm"),
        _tiny("edge_zero_comm", backend="bitset"),
    ]


# ---------------------------------------------------------------------------
# shard assignment
# ---------------------------------------------------------------------------


def test_parse_shard_spec():
    assert parse_shard_spec("1/3") == (1, 3)
    assert parse_shard_spec("3/3") == (3, 3)
    assert parse_shard_spec("1/1") == (1, 1)
    for bad in ("0/3", "4/3", "-1/3", "1/0", "a/b", "3", "1/2/3", ""):
        with pytest.raises(ValueError):
            parse_shard_spec(bad)


@pytest.mark.parametrize("count", [1, 2, 3, 5])
def test_shards_partition_the_grid(count):
    grid = smoke_scenarios()
    shards = [shard_scenarios(grid, k, count) for k in range(1, count + 1)]
    # Disjoint and union-complete.
    names = [s.name for shard in shards for s in shard]
    assert sorted(names) == sorted(s.name for s in grid)
    assert len(names) == len(set(names))
    # Grid order is preserved within each shard.
    order = {s.name: i for i, s in enumerate(grid)}
    for shard in shards:
        positions = [order[s.name] for s in shard]
        assert positions == sorted(positions)


def test_shard_assignment_is_stable_under_grid_growth():
    # A scenario's shard depends only on its own name and the shard count:
    # computing it from the full grid or any sub-grid must agree, so adding
    # scenarios never reassigns existing ones.
    grid = smoke_scenarios()
    full = {s.name: shard_index(s.name, 3) for s in grid}
    half = {s.name: shard_index(s.name, 3) for s in grid[: len(grid) // 2]}
    assert all(full[name] == idx for name, idx in half.items())


def test_shard_scenarios_validates_index():
    grid = smoke_scenarios()
    with pytest.raises(ValueError):
        shard_scenarios(grid, 0, 3)
    with pytest.raises(ValueError):
        shard_scenarios(grid, 4, 3)


# ---------------------------------------------------------------------------
# the headline invariant: serial == merged shards, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("count", [2, 3])
@pytest.mark.parametrize("reps", [1, 2])
def test_serial_sweep_equals_merged_shards(tmp_path, count, reps):
    grid = _tiny_grid()
    serial = sweep(grid, jobs=1, reps=reps)
    serial_json, _ = write_results(serial, tmp_path / "serial")

    documents = []
    for k in range(1, count + 1):
        shard = shard_scenarios(grid, k, count)
        records = sweep(shard, jobs=1, reps=reps)
        json_path, _ = write_results(
            records, tmp_path / f"shard{k}", shard=f"{k}/{count}"
        )
        documents.append(json.loads(json_path.read_text()))

    merged = merge_documents(documents, grid, check_complete=True)
    merged_json, _ = write_results(merged, tmp_path / "merged")
    assert merged_json.read_bytes() == serial_json.read_bytes()


def test_sweep_json_is_canonical(tmp_path):
    # Volatile wall time stays out of the document; two runs of the same
    # grid produce identical bytes.
    grid = [_tiny("edge_zero_comm")]
    path_a, _ = write_results(sweep(grid, jobs=1), tmp_path / "a")
    path_b, _ = write_results(sweep(grid, jobs=1), tmp_path / "b")
    assert path_a.read_bytes() == path_b.read_bytes()
    document = json.loads(path_a.read_text())
    assert "wall_time_s" not in document["results"][0]


# ---------------------------------------------------------------------------
# replication
# ---------------------------------------------------------------------------


def test_rep_seeds_are_stable_and_distinct():
    scenario = _tiny("vertex")
    seeds = [scenario.rep_seed(r) for r in range(4)]
    assert seeds[0] == scenario.effective_seed
    assert len(set(seeds)) == 4
    assert seeds == [scenario.rep_seed(r) for r in range(4)]


def test_run_scenario_reps_aggregates():
    scenario = _tiny("vertex")
    record = run_scenario_reps(scenario, reps=3)
    assert record["reps"] == 3
    assert record["rep_seeds"] == [scenario.rep_seed(r) for r in range(3)]
    assert record["seed"] == scenario.effective_seed
    assert record["valid"] is True
    stats = record["metrics"]["total_bits"]
    assert {"mean", "std", "ci95", "min", "max", "count"} <= set(stats)
    assert stats["count"] == 3
    # The flat key carries the across-rep mean of per-rep runs.
    from dataclasses import replace

    per_rep = [
        run_scenario(replace(scenario, seed=scenario.rep_seed(r)))["total_bits"]
        for r in range(3)
    ]
    assert record["total_bits"] == pytest.approx(sum(per_rep) / 3)
    assert stats["min"] == min(per_rep) and stats["max"] == max(per_rep)


def test_run_scenario_reps_keeps_constants_integral():
    # Structural coordinates (n, m, Δ on a regular family) are identical
    # across reps: they must keep their integer value, not degrade to a
    # float mean with zero-width stats.
    record = run_scenario_reps(_tiny("vertex"), reps=3)
    for key in ("n", "m", "max_degree"):
        assert isinstance(record[key], int), key
        assert key not in record["metrics"], key
    assert record["n"] == 24


def test_run_scenario_reps_one_is_plain_run():
    scenario = _tiny("edge_zero_comm")

    def canonical(record):
        return {k: v for k, v in record.items() if k != "wall_time_s"}

    assert canonical(run_scenario_reps(scenario, reps=1)) == canonical(
        run_scenario(scenario)
    )
    with pytest.raises(ValueError):
        run_scenario_reps(scenario, reps=0)


# ---------------------------------------------------------------------------
# journal
# ---------------------------------------------------------------------------


def test_journal_resume_skips_completed(tmp_path, monkeypatch):
    grid = _tiny_grid()
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        baseline = sweep(grid, jobs=1, journal=journal)
    lines = path.read_text().splitlines()
    assert len(lines) == len(grid)

    # Crash after two scenarios: keep a truncated journal, then resume.
    path.write_text("\n".join(lines[:2]) + "\n")
    executed = []
    original = run_scenario_reps

    def tracking(scenario, reps=1, journal=None, on_rep=None):
        executed.append(scenario.name)
        return original(scenario, reps, journal=journal, on_rep=on_rep)

    monkeypatch.setattr(runner_module, "run_scenario_reps", tracking)
    with Journal(path, resume=True) as journal:
        assert set(journal.completed) == {s.name for s in grid[:2]}
        resumed = sweep(grid, jobs=1, journal=journal)
    assert executed == [s.name for s in grid[2:]]

    def canonical(rows):
        return [{k: v for k, v in r.items() if k != "wall_time_s"} for r in rows]

    assert canonical(resumed) == canonical(baseline)
    assert len(path.read_text().splitlines()) == len(grid)


def test_journal_without_resume_truncates(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        journal.append("x", {"scenario": "x"})
    with Journal(path) as journal:  # fresh run
        assert journal.completed == {}
    assert path.read_text() == ""


def test_journal_ignores_torn_and_stale_lines(tmp_path):
    path = tmp_path / "journal.jsonl"
    good = {"record": {"scenario": "a"}, "reps": 1, "scenario": "a", "version": __version__}
    stale = dict(good, scenario="b", version="0.0.0")
    wrong_reps = dict(good, scenario="c", reps=5)
    late = dict(good, scenario="d")
    path.write_text(
        json.dumps(good) + "\n"
        + json.dumps(stale) + "\n"
        + '{"torn": tru\n'  # crash mid-append, now an *interior* line
        + json.dumps(wrong_reps) + "\n"
        + json.dumps(late) + "\n"
    )
    journal = Journal(path, resume=True)
    journal.close()
    # Valid entries after the torn line still count; a resume rewrites the
    # journal so the corruption cannot accumulate.
    assert set(journal.completed) == {"a", "d"}
    survivors = [json.loads(line)["scenario"] for line in path.read_text().splitlines()]
    assert survivors == ["a", "d"]


def test_journal_resume_never_appends_onto_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    good = {"record": {"scenario": "a"}, "reps": 1, "scenario": "a", "version": __version__}
    path.write_text(json.dumps(good) + "\n" + '{"torn": tru')  # no newline
    with Journal(path, resume=True) as journal:
        journal.append("b", {"scenario": "b"})
    # Every line parses: the torn tail was dropped by the rewrite, not
    # concatenated with the next append.
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["scenario"] for e in parsed] == ["a", "b"]


def _canonical(rows):
    return [{k: v for k, v in r.items() if k != "wall_time_s"} for r in rows]


def test_rep_journal_resume_replays_completed_reps(tmp_path, monkeypatch):
    grid = _tiny_grid()[:2]
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        baseline = sweep(grid, jobs=1, reps=3, journal=journal)
    lines = path.read_text().splitlines()
    # Per scenario: one line per finished rep, then the aggregate.
    assert [json.loads(line).get("rep") for line in lines] == [
        0, 1, 2, None, 0, 1, 2, None,
    ]

    # Crash mid-replication: scenario 1 fully aggregated, scenario 2 has
    # journaled reps 0 and 1 but neither rep 2 nor its aggregate.
    path.write_text("\n".join(lines[:6]) + "\n")
    executed = []
    original = runner_module.run_scenario_rep

    def tracking(scenario, rep):
        executed.append((scenario.name, rep))
        return original(scenario, rep)

    monkeypatch.setattr(runner_module, "run_scenario_rep", tracking)
    with Journal(path, resume=True) as journal:
        assert set(journal.completed) == {grid[0].name}
        assert sorted(journal.partial[grid[1].name]) == [0, 1]
        resumed = sweep(grid, jobs=1, reps=3, journal=journal)

    # Only the one missing rep ran; reps 0 and 1 were replayed.
    assert executed == [(grid[1].name, 2)]
    assert _canonical(resumed) == _canonical(baseline)
    # The rewrite dropped rep lines of completed scenarios (the aggregate
    # supersedes them) and the resumed run completed scenario 2.
    final = [json.loads(line) for line in path.read_text().splitlines()]
    assert [(e["scenario"], e.get("rep")) for e in final] == [
        (grid[0].name, None),
        (grid[1].name, 0),
        (grid[1].name, 1),
        (grid[1].name, 2),
        (grid[1].name, None),
    ]


def test_pool_rep_sweep_matches_serial_and_journals_reps(tmp_path):
    grid = _tiny_grid()
    serial = sweep(grid, jobs=1, reps=2)
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        pooled = sweep(grid, jobs=2, reps=2, journal=journal)
    assert _canonical(pooled) == _canonical(serial)
    entries = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(entries) == len(grid) * 3
    for scenario in grid:
        mine = [e.get("rep") for e in entries if e["scenario"] == scenario.name]
        assert sorted(mine, key=lambda r: (r is None, r)) == [0, 1, None]


def test_pool_resume_mid_reps_replays_partial_scenarios(tmp_path):
    grid = _tiny_grid()
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        baseline = sweep(grid, jobs=1, reps=2, journal=journal)
    lines = path.read_text().splitlines()
    assert len(lines) == len(grid) * 3
    # Crash leaving: scenarios 0-3 aggregated, scenario 4 with both reps
    # journaled but no aggregate (died between last rep and aggregate),
    # scenario 5 not started.
    path.write_text("\n".join(lines[: 4 * 3 + 2]) + "\n")
    with Journal(path, resume=True) as journal:
        assert len(journal.completed) == 4
        assert sorted(journal.partial[grid[4].name]) == [0, 1]
        resumed = sweep(grid, jobs=2, reps=2, journal=journal)
    assert _canonical(resumed) == _canonical(baseline)
    final = [json.loads(line) for line in path.read_text().splitlines()]
    # Every scenario ends aggregated after the resume.
    aggregated = [e["scenario"] for e in final if "rep" not in e]
    assert sorted(aggregated) == sorted(s.name for s in grid)


# ---------------------------------------------------------------------------
# merge verification
# ---------------------------------------------------------------------------


def _shard_documents(grid, count=2):
    documents = []
    for k in range(1, count + 1):
        shard = shard_scenarios(grid, k, count)
        records = sweep(shard, jobs=1)
        documents.append(
            {
                "version": __version__,
                "count": len(records),
                "results": [
                    {key: v for key, v in r.items() if key != "wall_time_s"}
                    for r in records
                ],
            }
        )
    return documents


def test_merge_rejects_version_mismatch():
    grid = [_tiny("edge_zero_comm")]
    (document,) = _shard_documents(grid, count=1)
    document["version"] = "0.0.0"
    with pytest.raises(MergeError, match="version"):
        merge_documents([document], grid)


def test_merge_accepts_identical_duplicates():
    # Overlapping shards with byte-identical records merge idempotently
    # (a re-dispatched straggler may overlap the shard it replaced).
    grid = [_tiny("edge_zero_comm")]
    (document,) = _shard_documents(grid, count=1)
    merged = merge_documents([document, document], grid, check_complete=True)
    assert [r["scenario"] for r in merged] == [grid[0].name]


def test_merge_rejects_conflicting_duplicate():
    grid = [_tiny("edge_zero_comm")]
    (document,) = _shard_documents(grid, count=1)
    conflicting = json.loads(json.dumps(document))
    conflicting["results"][0]["total_bits"] = (
        document["results"][0]["total_bits"] + 1
    )
    with pytest.raises(MergeError, match="conflicting duplicate"):
        merge_documents([document, conflicting], grid)


def test_merge_rejects_unknown_coordinate():
    grid = [_tiny("edge_zero_comm")]
    (document,) = _shard_documents(grid, count=1)
    with pytest.raises(MergeError, match="not in"):
        merge_documents([document], [_tiny("vertex")])


def test_merge_rejects_seed_mismatch():
    grid = [_tiny("edge_zero_comm")]
    (document,) = _shard_documents(grid, count=1)
    document["results"][0]["seed"] += 1
    with pytest.raises(MergeError, match="seed"):
        merge_documents([document], grid)


def test_merge_rejects_mixed_reps():
    grid = _tiny_grid()
    count = 2
    documents = []
    for k in range(1, count + 1):
        shard = shard_scenarios(grid, k, count)
        records = sweep(shard, jobs=1, reps=k)  # shard 1 unreplicated, shard 2 reps=2
        documents.append(
            {
                "version": __version__,
                "results": [
                    {key: v for key, v in r.items() if key != "wall_time_s"}
                    for r in records
                ],
            }
        )
    with pytest.raises(MergeError, match="replication"):
        merge_documents(documents, grid, check_complete=True)


def test_merge_missing_shard_fails_completeness_check():
    grid = _tiny_grid()
    documents = _shard_documents(grid, count=2)
    with pytest.raises(MergeError, match="missing"):
        merge_documents(documents[:1], grid, check_complete=True)
    # Without the completeness check a partial merge is allowed and keeps
    # grid order.
    partial = merge_documents(documents[:1], grid, check_complete=False)
    kept = {r["scenario"] for r in partial}
    assert kept == {s.name for s in shard_scenarios(grid, 1, 2)}
    order = {s.name: i for i, s in enumerate(grid)}
    positions = [order[r["scenario"]] for r in partial]
    assert positions == sorted(positions)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


_FILTER = ["--filter", "edge_zero_comm"]


def test_cli_sharded_sweep_and_merge_reproduce_serial(tmp_path, capsys):
    serial_out = tmp_path / "serial"
    assert main(["sweep", "--smoke", *_FILTER, "--jobs", "1", "--out", str(serial_out)]) == 0
    shard_dirs = []
    for k in (1, 2):
        out = tmp_path / f"shard{k}"
        shard_dirs.append(str(out))
        code = main(
            ["sweep", "--smoke", *_FILTER, "--jobs", "1",
             "--shard", f"{k}/2", "--out", str(out)]
        )
        assert code == 0
    merged_out = tmp_path / "merged"
    code = main(
        ["merge", *shard_dirs, "--smoke", *_FILTER,
         "--check-complete", "--out", str(merged_out)]
    )
    assert code == 0
    assert "complete" in capsys.readouterr().out
    serial_doc = (serial_out / "sweep.json").read_bytes()
    assert (merged_out / "sweep.json").read_bytes() == serial_doc
    # Shard documents are tagged with their spec.
    shard_doc = json.loads((tmp_path / "shard1" / "sweep.json").read_text())
    assert shard_doc["shard"] == "1/2"


def test_cli_sweep_and_merge_custom_label(tmp_path):
    shard_dirs = []
    for k in (1, 2):
        out = tmp_path / f"shard{k}"
        shard_dirs.append(str(out))
        code = main(
            ["sweep", "--smoke", *_FILTER, "--jobs", "1", "--label", "nightly",
             "--shard", f"{k}/2", "--out", str(out)]
        )
        assert code == 0
        assert (out / "nightly.json").exists()
    merged_out = tmp_path / "merged"
    code = main(
        ["merge", *shard_dirs, "--smoke", *_FILTER, "--label", "nightly",
         "--check-complete", "--out", str(merged_out)]
    )
    assert code == 0
    assert (merged_out / "nightly.json").exists()


def test_cli_merge_rejects_incomplete_union(tmp_path, capsys):
    out = tmp_path / "shard1"
    assert main(
        ["sweep", "--smoke", *_FILTER, "--jobs", "1", "--shard", "1/2",
         "--out", str(out)]
    ) == 0
    code = main(
        ["merge", str(out), "--smoke", *_FILTER, "--check-complete",
         "--out", str(tmp_path / "merged")]
    )
    assert code == 1
    assert "missing" in capsys.readouterr().err


def test_cli_merge_unreadable_shard(tmp_path, capsys):
    code = main(
        ["merge", str(tmp_path / "nope"), "--smoke",
         "--out", str(tmp_path / "merged")]
    )
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_sweep_rejects_bad_shard_spec(tmp_path, capsys):
    for spec in ("0/3", "4/3", "abc"):
        code = main(
            ["sweep", "--smoke", "--shard", spec, "--out", str(tmp_path)]
        )
        assert code == 2
    assert "shard" in capsys.readouterr().err


def test_cli_sweep_rejects_bad_reps(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--reps", "0", "--out", str(tmp_path)])
    assert code == 2
    assert "--reps" in capsys.readouterr().err


def test_cli_empty_shard_writes_empty_document(tmp_path, capsys):
    # Narrow to one scenario, then ask for the shard it is NOT in.
    scenario = next(s for s in smoke_scenarios() if "edge_zero_comm" in s.name)
    pattern = scenario.name
    empty_k = 2 - shard_index(scenario.name, 2)  # the other 1-based shard
    code = main(
        ["sweep", "--smoke", "--filter", pattern, "--shard", f"{empty_k}/2",
         "--out", str(tmp_path)]
    )
    assert code == 0
    assert "holds no scenarios" in capsys.readouterr().out
    document = json.loads((tmp_path / "sweep.json").read_text())
    assert document["count"] == 0 and document["results"] == []


def test_cli_list_scenarios_shard(capsys):
    assert main(["list-scenarios", "--smoke"]) == 0
    full = set(capsys.readouterr().out.split())
    parts: list[set[str]] = []
    for k in (1, 2, 3):
        assert main(["list-scenarios", "--smoke", "--shard", f"{k}/3"]) == 0
        parts.append(set(capsys.readouterr().out.split()))
    assert set().union(*parts) == full
    assert sum(len(p) for p in parts) == len(full)


def test_cli_sweep_resume(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(
        ["sweep", "--smoke", *_FILTER, "--jobs", "1", "--out", str(out)]
    ) == 0
    reference = (out / "sweep.json").read_bytes()
    journal = out / "journal.jsonl"
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:2]) + "\n")
    assert main(
        ["sweep", "--smoke", *_FILTER, "--jobs", "1", "--resume",
         "--out", str(out)]
    ) == 0
    assert "resuming: 2 scenarios" in capsys.readouterr().out
    assert (out / "sweep.json").read_bytes() == reference


def test_cli_sweep_reps(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(
        ["sweep", "--smoke", *_FILTER, "--jobs", "1", "--reps", "2",
         "--out", str(out)]
    ) == 0
    document = json.loads((out / "sweep.json").read_text())
    record = document["results"][0]
    assert record["reps"] == 2 and len(record["rep_seeds"]) == 2
    assert "metrics" in record
    assert isinstance(record["n"], int)  # constants keep their type


def test_cli_min_speedup_requires_rand(capsys):
    assert main(["bench", "--min-speedup", "1.2"]) == 2
    assert "--min-speedup" in capsys.readouterr().err


def test_cli_min_speedup_guard_passes_at_zero(tmp_path, capsys):
    # A 0x floor always passes: exercises the guard plumbing cheaply.
    code = main(
        ["bench", "--rand", "--n", "48", "--degree", "4", "--repeat", "1",
         "--min-speedup", "0.0"]
    )
    assert code == 0
    assert "regression guard" in capsys.readouterr().out
