"""Tests for geometric-skip Bernoulli sampling.

The gap-skipping sampler must produce the *same distribution* as the
dense coin-per-position reference (only the PRF word consumption
differs): per-position inclusion frequencies, subset-size moments, and
gap distribution all have to match Bernoulli(p) statistics.
"""

from __future__ import annotations

from repro.rand import LegacyTape, Stream


class TestEdgeCases:
    def test_saturated_probability_is_the_full_range(self):
        s = Stream.from_seed(0)
        out = s.sample_indices(10, 1.0)
        assert isinstance(out, range) and list(out) == list(range(10))
        assert s.counter == 0  # no draws consumed at saturation

    def test_zero_probability_is_empty(self):
        s = Stream.from_seed(0)
        assert list(s.sample_indices(10, 0.0)) == []
        assert s.sample_mask(10, 0.0) == [False] * 10
        assert s.counter == 0

    def test_empty_ground_set(self):
        s = Stream.from_seed(0)
        assert list(s.sample_indices(0, 0.5)) == []
        assert s.sample_mask(0, 0.5) == []

    def test_mask_extremes(self):
        s = Stream.from_seed(0)
        assert s.sample_mask(10, 1.0) == [True] * 10
        assert s.sample_mask(10, 0.0) == [False] * 10


class TestDeterminism:
    def test_same_stream_same_subset(self):
        a, b = Stream.from_seed(3), Stream.from_seed(3)
        assert list(a.sample_indices(500, 0.2)) == list(b.sample_indices(500, 0.2))

    def test_mask_and_indices_agree(self):
        a, b = Stream.from_seed(9), Stream.from_seed(9)
        mask = a.sample_mask(500, 0.17)
        indices = list(b.sample_indices(500, 0.17))
        assert [i for i, hit in enumerate(mask) if hit] == indices

    def test_indices_sorted_and_unique(self):
        idx = list(Stream.from_seed(1).sample_indices(10_000, 0.05))
        assert idx == sorted(set(idx))
        assert all(0 <= i < 10_000 for i in idx)


class TestDistributionEquivalence:
    """Geometric-skip vs dense Bernoulli: same law, different draw counts."""

    def test_inclusion_rate_matches_p(self):
        m, p, trials = 400, 0.1, 200
        s = Stream.from_seed(5)
        total = sum(len(s.sample_indices(m, p)) for _ in range(trials))
        mean = total / trials
        # E = 40, sigma = sqrt(m p (1-p)) = 6 => mean-of-200 within ~4 sigma/sqrt(200)
        assert abs(mean - m * p) < 2.0, mean

    def test_per_position_frequencies_are_flat(self):
        m, p, trials = 50, 0.3, 2000
        s = Stream.from_seed(6)
        hits = [0] * m
        for _ in range(trials):
            for i in s.sample_indices(m, p):
                hits[i] += 1
        # each position ~ Binomial(2000, 0.3): mean 600, sigma ~ 20.5
        assert all(480 < h < 720 for h in hits), hits

    def test_matches_dense_reference_sampler_statistics(self):
        m, p, trials = 300, 0.08, 300
        geo = Stream.from_seed(7)
        dense = LegacyTape(7)
        geo_sizes = sorted(len(geo.sample_indices(m, p)) for _ in range(trials))
        dense_sizes = sorted(len(dense.sample_indices(m, p)) for _ in range(trials))
        geo_mean = sum(geo_sizes) / trials
        dense_mean = sum(dense_sizes) / trials
        assert abs(geo_mean - dense_mean) < 2.5, (geo_mean, dense_mean)
        # medians within a few positions of each other
        assert abs(geo_sizes[trials // 2] - dense_sizes[trials // 2]) <= 4

    def test_gap_distribution_is_geometric(self):
        # P(gap >= g) = (1-p)^g; check the empirical survival at g=10.
        p, trials = 0.1, 4000
        s = Stream.from_seed(8)
        gaps = []
        for _ in range(trials):
            idx = list(s.sample_indices(200, p))
            gaps.extend(b - a - 1 for a, b in zip(idx, idx[1:]))
        survival = sum(1 for g in gaps if g >= 10) / len(gaps)
        expected = (1 - p) ** 10  # ~0.349
        assert abs(survival - expected) < 0.04, survival
