"""Tests for the ZEC game machinery (Lemma 6.2) and ZEC-NEW (Section 6.4)."""

from __future__ import annotations

import itertools

import pytest

from repro.rand import Stream
from repro.lowerbound import (
    ALL_INPUTS,
    COLOR_PAIRS,
    LEMMA_62_BOUND,
    best_response,
    exact_win_probability,
    label_sets,
    lemma_62_dichotomy,
    optimize_strategies,
    random_strategy,
    simulate_zec_new,
    zec_new_bound,
    zec_new_win_probability,
)


class TestGameStructure:
    def test_input_count(self):
        assert len(ALL_INPUTS) == 21  # C(7, 2)

    def test_color_pairs_are_proper_hub_assignments(self):
        assert len(COLOR_PAIRS) == 6
        assert all(a != b for a, b in COLOR_PAIRS)


class TestExactEvaluation:
    def test_constant_strategy_loses_often(self):
        # Everyone always answers (1, 2): any shared spoke in first/second
        # position with the same role collides.
        strat = {inp: (1, 2) for inp in ALL_INPUTS}
        value = exact_win_probability(strat, strat)
        assert value < 0.8

    def test_disjoint_color_preference_does_well(self):
        # Alice prefers colors {1,2}, Bob prefers {3,1}: collisions are rare.
        alice = {inp: (1, 2) for inp in ALL_INPUTS}
        bob = {inp: (3, 1) for inp in ALL_INPUTS}
        value = exact_win_probability(alice, bob)
        assert value > 0.8

    def test_value_is_rational_with_denominator_441(self):
        rng = Stream.from_seed(1).derive_random("zec-tests")
        strat_a, strat_b = random_strategy(rng), random_strategy(rng)
        value = exact_win_probability(strat_a, strat_b)
        assert abs(value * 441 - round(value * 441)) < 1e-9

    def test_never_exceeds_lemma_bound(self):
        """Lemma 6.2 on 200 random strategy pairs."""
        rng = Stream.from_seed(2).derive_random("zec-tests")
        for _ in range(200):
            a, b = random_strategy(rng), random_strategy(rng)
            assert exact_win_probability(a, b) <= LEMMA_62_BOUND + 1e-12

    def test_optimized_strategies_never_exceed_bound(self):
        rng = Stream.from_seed(3).derive_random("zec-tests")
        alice, bob, value = optimize_strategies(rng, restarts=4, iterations=10)
        assert value < 1.0
        assert value <= LEMMA_62_BOUND + 1e-12
        # The search should land well above random play.
        assert value > 0.9


class TestBestResponse:
    def test_improves_or_matches(self):
        rng = Stream.from_seed(4).derive_random("zec-tests")
        for _ in range(10):
            alice, bob = random_strategy(rng), random_strategy(rng)
            base = exact_win_probability(alice, bob)
            improved = exact_win_probability(alice, best_response(alice, "bob"))
            assert improved >= base - 1e-12

    def test_response_is_locally_proper(self):
        rng = Stream.from_seed(5).derive_random("zec-tests")
        alice = random_strategy(rng)
        response = best_response(alice, "bob")
        assert all(pair in COLOR_PAIRS for pair in response.values())

    def test_rejects_unknown_role(self):
        rng = Stream.from_seed(5).derive_random("zec-tests")
        with pytest.raises(ValueError):
            best_response(random_strategy(rng), "carol")


class TestLabels:
    def test_labels_cover_used_colors(self):
        rng = Stream.from_seed(6).derive_random("zec-tests")
        strat = random_strategy(rng)
        labels = label_sets(strat)
        for (i, j), (ci, cj) in strat.items():
            assert ci in labels[i]
            assert cj in labels[j]

    def test_dichotomy_always_resolves(self):
        rng = Stream.from_seed(7).derive_random("zec-tests")
        for _ in range(100):
            a, b = random_strategy(rng), random_strategy(rng)
            assert lemma_62_dichotomy(a, b) in ("case1", "case2")

    def test_case1_on_singleton_heavy_strategy(self):
        # A strategy that colors each spoke with a fixed color has seven
        # singleton labels — case 1 territory.
        fixed = {}
        for i, j in ALL_INPUTS:
            ci, cj = 1 + (i % 3), 1 + (j % 3)
            if ci == cj:
                cj = 1 + ((j + 1) % 3)
                if ci == cj:
                    cj = 1 + ((j + 2) % 3)
            fixed[(i, j)] = (ci, cj)
        # Not all labels are singletons (the collision fix-ups), but at
        # least four are, on one side or the other.
        result = lemma_62_dichotomy(fixed, fixed)
        assert result in ("case1", "case2")


class TestZecNew:
    def test_bound_matches_paper_numbers(self):
        assert abs(zec_new_bound(11024 / 11025) - 33074 / 33075) < 1e-12

    def test_win_probability_above_coloring_alone(self):
        rng = Stream.from_seed(8).derive_random("zec-tests")
        a, b = random_strategy(rng), random_strategy(rng)
        coloring_only = exact_win_probability(a, b)
        with_guessing = zec_new_win_probability(a, b)
        assert with_guessing > coloring_only
        assert with_guessing < 1.0

    def test_simulation_close_to_exact(self):
        rng = Stream.from_seed(9).derive_random("zec-tests")
        a, b = random_strategy(rng), random_strategy(rng)
        exact = zec_new_win_probability(a, b)
        estimate = simulate_zec_new(a, b, rng, trials=4000)
        assert abs(exact - estimate) < 0.05


class TestExhaustiveTinyVariant:
    def test_no_perfect_pair_among_structured_strategies(self):
        """Spot-check Lemma 6.2's impossibility on a structured subfamily.

        Strategies that color spoke edges by a fixed map spoke → color
        (with deterministic collision fix-up) are enumerable: 3^7 per side
        is too many, but restricting to maps constant on residues mod 3
        gives 27 per side — none of the 27×27 pairs wins with probability
        1, matching the lemma.
        """
        def residue_strategy(c0, c1, c2):
            base = {0: c0, 1: c1, 2: c2}
            strat = {}
            for i, j in ALL_INPUTS:
                ci, cj = base[i % 3], base[j % 3]
                if ci == cj:
                    cj = next(c for c in (1, 2, 3) if c != ci)
                strat[(i, j)] = (ci, cj)
            return strat

        colorings = list(itertools.product((1, 2, 3), repeat=3))
        best = 0.0
        for ca in colorings:
            for cb in colorings:
                value = exact_win_probability(
                    residue_strategy(*ca), residue_strategy(*cb)
                )
                best = max(best, value)
                assert value < 1.0
        assert best <= LEMMA_62_BOUND
