"""Tests for Hopcroft–Karp and the Δ-perfect matching of Lemma 5.3."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    complete_bipartite,
    delta_perfect_matching,
    gnp_random_graph,
    hopcroft_karp,
    is_matching,
    star_graph,
)
from repro.graphs.graph import Graph

from .conftest import make_fournier_instance


class TestHopcroftKarp:
    def test_perfect_matching_in_even_cycle(self):
        # bipartite 4-cycle: left {0,1}, right {10, 11}
        adj = {0: [10, 11], 1: [10, 11]}
        match = hopcroft_karp([0, 1], adj)
        assert len(match) == 2
        assert len(set(match.values())) == 2

    def test_star_limits_matching(self):
        adj = {i: [100] for i in range(5)}
        match = hopcroft_karp(range(5), adj)
        assert len(match) == 1

    def test_empty(self):
        assert hopcroft_karp([], {}) == {}

    def test_matches_networkx_cardinality(self):
        networkx = pytest.importorskip("networkx")
        rng = random.Random(11)
        for _ in range(30):
            left = rng.randint(1, 12)
            right = rng.randint(1, 12)
            adj = {
                u: [100 + v for v in range(right) if rng.random() < 0.4]
                for u in range(left)
            }
            ours = hopcroft_karp(range(left), adj)
            g = networkx.Graph()
            g.add_nodes_from(range(left), bipartite=0)
            g.add_nodes_from(range(100, 100 + right), bipartite=1)
            for u, neigh in adj.items():
                g.add_edges_from((u, v) for v in neigh)
            theirs = networkx.bipartite.maximum_matching(g, top_nodes=range(left))
            assert len(ours) == len(theirs) // 2

    def test_result_is_valid_matching(self):
        rng = random.Random(5)
        for _ in range(20):
            left = rng.randint(1, 10)
            adj = {
                u: [50 + v for v in range(10) if rng.random() < 0.5]
                for u in range(left)
            }
            match = hopcroft_karp(range(left), adj)
            assert len(set(match.values())) == len(match)
            for u, v in match.items():
                assert v in adj[u]


class TestDeltaPerfectMatching:
    def test_covers_every_max_degree_vertex(self, rng):
        for _ in range(40):
            g = make_fournier_instance(rng.randint(2, 30), rng.random(), rng)
            delta = g.max_degree()
            if delta == 0:
                continue
            matching = delta_perfect_matching(g)
            assert is_matching(matching)
            covered = {v for e in matching for v in e}
            heavy = {v for v in g.vertices() if g.degree(v) == delta}
            assert heavy <= covered
            for u, v in matching:
                assert g.has_edge(u, v)

    def test_star(self):
        g = star_graph(5)
        matching = delta_perfect_matching(g)
        assert len(matching) == 1
        assert 0 in matching[0]

    def test_rejects_dependent_heavy_set(self):
        g = complete_bipartite(3, 3)
        with pytest.raises(ValueError):
            delta_perfect_matching(g)

    def test_explicit_degree_with_no_heavy_vertices(self, rng):
        g = gnp_random_graph(10, 0.2, rng)
        assert delta_perfect_matching(g, degree=g.max_degree() + 5) == []

    def test_empty_graph(self):
        assert delta_perfect_matching(Graph(4)) == []


class TestIsMatching:
    def test_accepts_disjoint(self):
        assert is_matching([(0, 1), (2, 3)])

    def test_rejects_shared_endpoint(self):
        assert not is_matching([(0, 1), (1, 2)])

    def test_rejects_loop(self):
        assert not is_matching([(2, 2)])

    def test_empty(self):
        assert is_matching([])
