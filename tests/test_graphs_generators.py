"""Tests for the graph generators."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    barbell_of_stars,
    c4_gadget_union,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    gnp_with_max_degree,
    grid_graph,
    path_graph,
    random_bipartite_regular,
    random_regular_graph,
    star_graph,
    zec_instance_graph,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4 and g.max_degree() == 2
        assert g.degree(0) == g.degree(4) == 1

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in g.vertices())
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6 and g.m == 6

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10 and g.max_degree() == 4

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.m == 12
        assert all(g.degree(v) == 4 for v in range(3))
        assert all(g.degree(v) == 3 for v in range(3, 7))

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4
        assert g.max_degree() <= 4

    def test_barbell_of_stars(self):
        g = barbell_of_stars(3, 5)
        assert g.n == 18
        # centers: leaves + up to 2 path edges
        assert g.max_degree() == 7


class TestRandomFamilies:
    def test_gnp_bounds(self):
        rng = random.Random(1)
        g = gnp_random_graph(30, 0.0, rng)
        assert g.m == 0
        g = gnp_random_graph(30, 1.0, rng)
        assert g.m == 30 * 29 // 2
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5, rng)

    def test_gnp_with_max_degree_respects_cap(self):
        rng = random.Random(2)
        g = gnp_with_max_degree(60, 0.5, 7, rng)
        assert g.max_degree() <= 7

    def test_random_regular_degrees(self):
        rng = random.Random(3)
        for n, d in [(10, 3), (50, 8), (80, 13), (200, 16)]:
            if n * d % 2:
                continue
            g = random_regular_graph(n, d, rng)
            assert all(g.degree(v) == d for v in g.vertices())

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, random.Random(0))

    def test_random_regular_rejects_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4, random.Random(0))

    def test_random_regular_zero_degree(self):
        g = random_regular_graph(6, 0, random.Random(0))
        assert g.m == 0

    def test_bipartite_regular(self):
        rng = random.Random(4)
        g = random_bipartite_regular(20, 5, rng)
        assert all(g.degree(v) == 5 for v in g.vertices())
        # bipartite: no edge within a part
        assert all(
            (u < 20) != (v < 20) for u, v in g.edges()
        )


class TestLowerBoundInstances:
    def test_c4_gadget_structure(self):
        g = c4_gadget_union([0, 1])
        assert g.n == 8 and g.m == 8
        assert g.max_degree() == 2
        # bit 0 gadget contains {a,c}
        assert g.has_edge(0, 2) and g.has_edge(1, 3)
        # bit 1 gadget contains {a,d}
        assert g.has_edge(4, 7) and g.has_edge(5, 6)

    def test_c4_gadget_rejects_non_bits(self):
        with pytest.raises(ValueError):
            c4_gadget_union([0, 2])

    def test_zec_instance(self):
        g = zec_instance_graph((1, 7), (1, 2))
        assert g.n == 9
        assert g.m == 4
        assert g.max_degree() == 2
        assert g.has_edge(0, 2) and g.has_edge(0, 8)
        assert g.has_edge(1, 2) and g.has_edge(1, 3)

    def test_zec_instance_rejects_bad_spokes(self):
        with pytest.raises(ValueError):
            zec_instance_graph((1, 1), (2, 3))
        with pytest.raises(ValueError):
            zec_instance_graph((0, 2), (2, 3))
