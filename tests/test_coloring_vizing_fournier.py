"""Property tests for Vizing and Fournier edge colorings (Props. 3.4/3.5)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    FanProcedureError,
    color_edge_with_fan,
    EdgeColoringState,
    fournier_edge_coloring,
    vizing_edge_coloring,
)
from repro.graphs import (
    assert_proper_edge_coloring,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)

from .conftest import make_fournier_instance


def small_gnp(draw, max_n=16):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    return gnp_random_graph(n, rng.random(), rng)


class TestVizing:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_proper_with_delta_plus_one_colors(self, data):
        g = small_gnp(data.draw)
        colors = vizing_edge_coloring(g)
        assert_proper_edge_coloring(g, colors, g.max_degree() + 1)

    def test_structured_families(self):
        for g in (
            path_graph(10),
            cycle_graph(9),
            star_graph(8),
            complete_graph(7),
            complete_bipartite(5, 6),
            grid_graph(4, 5),
        ):
            colors = vizing_edge_coloring(g)
            assert_proper_edge_coloring(g, colors, g.max_degree() + 1)

    def test_regular_graphs(self):
        rng = random.Random(0)
        for n, d in [(30, 5), (40, 9), (24, 11)]:
            g = random_regular_graph(n, d, rng)
            colors = vizing_edge_coloring(g)
            assert_proper_edge_coloring(g, colors, d + 1)

    def test_widened_palette(self):
        g = complete_graph(5)
        colors = vizing_edge_coloring(g, num_colors=10)
        assert_proper_edge_coloring(g, colors, 10)

    def test_rejects_too_few_colors(self):
        with pytest.raises(ValueError):
            vizing_edge_coloring(complete_graph(4), num_colors=3)

    def test_empty_graph(self):
        assert vizing_edge_coloring(gnp_random_graph(5, 0, random.Random(0))) == {}

    def test_odd_cycle_uses_three_colors(self):
        g = cycle_graph(5)
        colors = vizing_edge_coloring(g)
        assert len(set(colors.values())) == 3


class TestFournier:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_class_one_coloring(self, data):
        n = data.draw(st.integers(min_value=2, max_value=18))
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = random.Random(seed)
        g = make_fournier_instance(n, rng.random(), rng)
        delta = g.max_degree()
        if delta == 0:
            return
        colors = fournier_edge_coloring(g)
        assert_proper_edge_coloring(g, colors, delta)
        # exactly Δ colors at a max-degree vertex
        heavy = next(v for v in g.vertices() if g.degree(v) == delta)
        used_at_heavy = {
            colors[(min(heavy, u), max(heavy, u))] for u in g.neighbors(heavy)
        }
        assert len(used_at_heavy) == delta

    def test_star_is_class_one(self):
        g = star_graph(9)
        colors = fournier_edge_coloring(g)
        assert_proper_edge_coloring(g, colors, 8)

    def test_even_cycle_fails_hypothesis(self):
        # Even cycles are class one, but their max-degree vertices are all
        # adjacent — Fournier's hypothesis does not hold and the algorithm
        # must refuse rather than silently use the theorem outside its scope.
        with pytest.raises(ValueError):
            fournier_edge_coloring(cycle_graph(8))

    def test_unique_max_degree_vertex(self):
        # A spider: center of degree 3 with three 2-edge legs; the single
        # max-degree vertex is trivially independent.
        from repro.graphs import Graph

        g = Graph(7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
        colors = fournier_edge_coloring(g)
        assert_proper_edge_coloring(g, colors, 3)

    def test_rejects_dependent_max_degree_set(self):
        with pytest.raises(ValueError):
            fournier_edge_coloring(complete_bipartite(4, 4))

    def test_rejects_too_few_colors(self):
        with pytest.raises(ValueError):
            fournier_edge_coloring(star_graph(5), num_colors=3)

    def test_widened_palette_skips_independence_requirement(self):
        g = complete_bipartite(3, 3)
        colors = fournier_edge_coloring(g, num_colors=4)
        assert_proper_edge_coloring(g, colors, 4)

    def test_empty_graph(self):
        assert fournier_edge_coloring(gnp_random_graph(4, 0, random.Random(0))) == {}


class TestFanProcedure:
    def test_colors_a_fresh_edge(self):
        g = complete_graph(4)
        state = EdgeColoringState(4, 4)
        edges = g.edge_list()
        for u, v in edges[:-1]:
            free = next(c for c in state.free_colors(u) if state.is_free(v, c))
            state.assign(u, v, free)
        u, v = edges[-1]
        color_edge_with_fan(state, u, v)
        assert_proper_edge_coloring(g, state.colors(), 4)

    def test_rejects_already_colored_edge(self):
        state = EdgeColoringState(2, 2)
        state.assign(0, 1, 1)
        with pytest.raises(ValueError):
            color_edge_with_fan(state, 0, 1)

    def test_raises_when_center_saturated(self):
        # center 0 with both palette colors used; no way to color (0, 3)
        state = EdgeColoringState(4, 2)
        state.assign(0, 1, 1)
        state.assign(0, 2, 2)
        with pytest.raises(FanProcedureError):
            color_edge_with_fan(state, 0, 3)
