"""Metrics registry, wall-clock store, and gated comm telemetry.

The load-bearing assertions here tie the observability numbers back to
the measurement instrument: counters recorded during an observed run
must equal the transcript ledger's own totals, and the comm telemetry
counters must be dead (not merely unread) whenever no observer is
installed.
"""

from __future__ import annotations

import json

import pytest

from repro.comm import telemetry
from repro.comm.messages import intern_msg
from repro.engine import run_scenario, Scenario
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WALL_CLOCK,
    WallClock,
    get_observer,
    observing,
    read_trace,
    summarize_phases,
)


def test_counter_monotone():
    counter = Counter()
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_last_write_wins():
    gauge = Gauge()
    gauge.set(3.0)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_histogram_summary():
    histogram = Histogram()
    assert histogram.summary() == {"count": 0, "total": 0.0}
    for value in (1.0, 3.0, 2.0):
        histogram.observe(value)
    assert histogram.summary() == {
        "count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0,
    }


def test_registry_get_or_create_and_deterministic_snapshot(tmp_path):
    registry = MetricsRegistry()
    assert registry.counter("b") is registry.counter("b")
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(7.0)
    registry.histogram("h").observe(0.5)
    registry.extra["comm"] = {"intern_hits": 0}
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]  # sorted
    assert snapshot["counters"] == {"a": 1, "b": 2}
    assert snapshot["gauges"] == {"g": 7.0}
    assert snapshot["comm"] == {"intern_hits": 0}
    out = registry.write(tmp_path / "nested" / "metrics.json")
    assert json.loads(out.read_text()) == snapshot


def test_wall_clock_semantics():
    clock = WallClock()
    assert clock.total("x") is None and clock.last("x") is None
    clock.record("x", 0.25)
    clock.record("x", 0.5)
    clock.record("y", 1.0)
    assert clock.total("x") == 0.75
    assert clock.last("x") == 0.5
    assert clock.count("x") == 2
    assert clock.snapshot()["x"] == {
        "count": 2, "total_s": 0.75, "mean_s": 0.375,
    }
    clock.discard(["x"])
    assert clock.total("x") is None
    assert clock.total("y") == 1.0  # discard is selective
    clock.clear()
    assert clock.snapshot() == {}


def test_comm_telemetry_dead_when_no_observer_installed():
    assert get_observer().enabled is False
    assert telemetry.enabled is False
    telemetry.reset()
    for _ in range(50):
        intern_msg(3)
        intern_msg(5, 2)
    assert telemetry.intern_hits == 0 and telemetry.intern_misses == 0


def test_comm_telemetry_counts_under_observing(tmp_path):
    with observing(metrics=tmp_path / "metrics.json"):
        for _ in range(10):
            intern_msg(3)  # silent-message intern table
        intern_msg(4, 1)  # int-payload intern table
        intern_msg(10_000, None)  # beyond the table: a fresh allocation
    assert telemetry.enabled is False  # restored on exit
    document = json.loads((tmp_path / "metrics.json").read_text())
    comm = document["comm"]
    assert comm["intern_hits"] == 11
    assert comm["intern_misses"] == 1
    assert comm["intern_hit_rate"] == pytest.approx(11 / 12)


def _smoke_scenario():
    return Scenario(
        "regular", (("d", 4), ("n", 24)), "random", "vertex", seed=7
    )


def test_observed_counters_equal_ledger_totals(tmp_path):
    """The metrics document repeats the transcript ledger exactly."""
    scenario = _smoke_scenario()
    trace_path = tmp_path / "trace.jsonl"
    with observing(trace=trace_path, metrics=tmp_path / "metrics.json"):
        record = run_scenario(scenario)
    document = json.loads((tmp_path / "metrics.json").read_text())
    counters = document["counters"]
    assert counters["protocol.vertex.runs"] == 1
    assert counters["protocol.vertex.total_bits"] == record["total_bits"]
    assert counters["protocol.vertex.rounds"] == record["rounds"]
    # Per-phase counters partition the totals.
    phase_bits = sum(
        value for name, value in counters.items()
        if name.startswith("protocol.vertex.phase.") and name.endswith(".bits")
    )
    phase_rounds = sum(
        value for name, value in counters.items()
        if name.startswith("protocol.vertex.phase.")
        and name.endswith(".rounds")
    )
    assert phase_bits == record["total_bits"]
    assert phase_rounds == record["rounds"]
    # The trace's phase instants carry the same ledger numbers.
    phases = summarize_phases(read_trace(trace_path))
    assert sum(p["bits"] for p in phases) == record["total_bits"]
    assert sum(p["rounds"] for p in phases) == record["rounds"]
    # And the wall-clock store is the (only) home of the elapsed time.
    assert "wall_time_s" not in record
    assert WALL_CLOCK.last(scenario.name) is not None
    assert document["wall_time_s"][scenario.name]["count"] >= 1


def test_observing_restores_previous_observer_on_error(tmp_path):
    before = get_observer()
    with pytest.raises(RuntimeError):
        with observing(metrics=tmp_path / "metrics.json"):
            assert get_observer() is not before
            raise RuntimeError("boom")
    assert get_observer() is before
    assert telemetry.enabled is False
    # The metrics document is still written on the error path.
    assert (tmp_path / "metrics.json").exists()
