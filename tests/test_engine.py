"""Engine smoke tests: scenarios, sweep runner, result emission, CLI."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    FAMILIES,
    PROTOCOLS,
    Scenario,
    backend_comparison,
    build_partition,
    build_workload,
    default_scenarios,
    iter_scenarios,
    profile_hotspots,
    rand_comparison,
    results_table,
    run_scenario,
    smoke_scenarios,
    sweep,
    write_results,
)
from repro.__main__ import main


def _tiny(protocol: str, backend: str = "set", partition: str = "random") -> Scenario:
    return Scenario(
        family="regular",
        params=(("d", 4), ("n", 24)),
        partition=partition,
        protocol=protocol,
        backend=backend,
    )


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario("nope", (), "random", "vertex")
    with pytest.raises(ValueError):
        Scenario("regular", (), "nope", "vertex")
    with pytest.raises(ValueError):
        Scenario("regular", (), "random", "nope")
    with pytest.raises(ValueError):
        Scenario("regular", (), "random", "vertex", backend="nope")


def test_scenario_name_and_seed_are_stable():
    a = _tiny("vertex")
    b = _tiny("vertex", backend="bitset")
    assert a.name == "vertex/regular(d=4,n=24)/random/set"
    assert a.coordinate == b.coordinate
    # Seeds hash the (family, params) workload key only: every protocol,
    # partition scheme, and backend sharing the key runs the identical
    # graph instance.
    assert a.effective_seed == b.effective_seed
    assert _tiny("edge").effective_seed == a.effective_seed
    assert _tiny("vertex", partition="all_alice").effective_seed == a.effective_seed
    other_workload = Scenario("regular", (("d", 4), ("n", 32)), "random", "vertex")
    assert other_workload.effective_seed != a.effective_seed
    pinned = Scenario("regular", (("d", 4), ("n", 24)), "random", "vertex", seed=7)
    assert pinned.effective_seed == 7


def test_scenario_params_are_normalized():
    a = Scenario("regular", (("n", 24), ("d", 4)), "random", "vertex")
    b = Scenario("regular", (("d", 4), ("n", 24)), "random", "vertex")
    assert a == b
    assert a.name == b.name
    assert a.effective_seed == b.effective_seed


def test_protocols_share_cached_workload_by_default():
    # No explicit seed: same (family, params) → same graph across protocols
    # and partition schemes.
    a = _tiny("vertex")
    b = _tiny("edge")
    c = _tiny("vertex", partition="all_alice")
    assert build_workload(a) is build_workload(b) is build_workload(c)


def test_workload_and_partition_caching():
    # Distinct protocols, same (family, params, seed): the cached graph and
    # partitioned instance must be shared, not regenerated.
    a = Scenario("regular", (("d", 4), ("n", 24)), "random", "vertex", seed=1)
    b = Scenario("regular", (("d", 4), ("n", 24)), "random", "edge", seed=1)
    assert build_workload(a) is build_workload(b)
    assert build_partition(a) is build_partition(b)


def test_run_scenario_record_shape():
    record = run_scenario(_tiny("vertex"))
    for key in (
        "scenario",
        "protocol",
        "family",
        "partition",
        "backend",
        "seed",
        "n",
        "m",
        "max_degree",
        "total_bits",
        "rounds",
        "num_colors",
        "valid",
        "params",
    ):
        assert key in record, key
    assert record["valid"] is True
    assert record["n"] == 24
    # Wall-clock time lives in the observability layer, never in the
    # canonical record (it would break byte-identical merge/verify).
    assert "wall_time_s" not in record
    from repro.obs import WALL_CLOCK

    assert WALL_CLOCK.last(record["scenario"]) is not None


def test_every_protocol_runs_one_tiny_scenario():
    for protocol in PROTOCOLS:
        record = run_scenario(_tiny(protocol))
        assert record["valid"], protocol
        if protocol == "edge_zero_comm":
            assert record["total_bits"] == 0 and record["rounds"] == 0


def test_backend_rows_agree_in_sweep():
    scenarios = [_tiny("vertex", backend=b) for b in ("set", "bitset", "csr")]
    set_row, bitset_row, csr_row = sweep(scenarios, jobs=1)
    for row in (bitset_row, csr_row):
        assert set_row["total_bits"] == row["total_bits"]
        assert set_row["rounds"] == row["rounds"]
        # Everything but the coordinate label must agree key-for-key, so
        # sweep.json records differ only in the backend column.
        strip = lambda r: {
            k: v for k, v in r.items() if k not in ("scenario", "backend")
        }
        assert strip(set_row) == strip(row)


def test_sweep_parallel_matches_serial():
    scenarios = [_tiny(p) for p in ("vertex", "edge", "edge_zero_comm")]
    serial = sweep(scenarios, jobs=1)
    parallel = sweep(scenarios, jobs=2)
    # Records carry no wall times (those live in repro.obs.WALL_CLOCK),
    # so serial and pooled sweeps must agree exactly, key for key.
    assert serial == parallel


def test_iter_scenarios_filter_and_backend():
    grid = smoke_scenarios()
    only_edge = list(iter_scenarios(grid, pattern="edge/"))
    assert only_edge and all("edge/" in s.name for s in only_edge)
    both = list(iter_scenarios([_tiny("vertex")], backend="both"))
    assert {s.backend for s in both} == {"set", "bitset", "csr"}
    pinned = list(iter_scenarios(grid, backend="bitset"))
    assert all(s.backend == "bitset" for s in pinned)


def test_registry_grids_are_valid():
    for scenario in default_scenarios() + smoke_scenarios():
        assert scenario.family in FAMILIES
        assert scenario.protocol in PROTOCOLS


def test_write_results_and_table(tmp_path):
    results = sweep([_tiny("vertex"), _tiny("edge_zero_comm")], jobs=1)
    json_path, md_path = write_results(results, tmp_path, label="smoke")
    document = json.loads(json_path.read_text())
    assert document["count"] == 2
    assert document["all_valid"] is True
    assert len(document["results"]) == 2
    markdown = md_path.read_text()
    assert markdown.startswith("###")
    assert "| scenario |" in markdown
    console = results_table(results)
    assert "sweep results (2 scenarios)" in console


def test_backend_comparison_rows():
    rows = backend_comparison(n=48, d=4, seed=1, repeat=1)
    kernels = {r["kernel"] for r in rows}
    assert "graph.copy" in kernels
    assert all(r["set_s"] > 0 and r["bitset_s"] > 0 for r in rows)


def test_graphs_comparison_rows():
    from repro.engine import graphs_comparison

    rows = graphs_comparison(n=400, degree=8, seed=1, repeat=1)
    assert [r["backend"] for r in rows] == ["set", "bitset", "csr"]
    assert len({r["m"] for r in rows}) == 1  # identical shared edge list
    csr = rows[-1]
    assert csr["probe_speedup_vs_bitset"] > 0
    assert csr["mem_ratio_vs_bitset"] > 1  # CSR beats dense masks already at n=400
    assert all(r["build_s"] > 0 and r["probe_s"] > 0 for r in rows)


def test_cli_list_and_sweep(tmp_path, capsys):
    assert main(["list-scenarios", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "vertex/regular" in out

    code = main(
        [
            "sweep",
            "--smoke",
            "--filter",
            "edge_zero_comm",
            "--jobs",
            "1",
            "--out",
            str(tmp_path / "results"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "results" / "sweep.json").exists()
    assert (tmp_path / "results" / "sweep.md").exists()


def test_cli_sweep_rejects_empty_filter(capsys):
    assert main(["sweep", "--smoke", "--filter", "zzz-no-match"]) == 2


def test_cli_bench_tiny(capsys):
    assert main(["bench", "--n", "48", "--degree", "4", "--repeat", "1"]) == 0
    out = capsys.readouterr().out
    assert "graph backend comparison" in out


def test_rand_comparison_rows():
    rows = rand_comparison(n=48, d=4, seed=1, repeat=1)
    assert {r["op"] for r in rows} >= {"derive 2k sub-streams", "protocol: vertex (thm 1)"}
    protocol = next(r for r in rows if r["op"].startswith("protocol"))
    assert protocol["stream_coloring_proper"]
    assert all(r["tape_s"] > 0 and r["stream_s"] > 0 for r in rows)


def test_profile_hotspots_rows():
    rows = profile_hotspots(n=48, d=4, seed=1, top=5)
    assert 0 < len(rows) <= 5
    assert {"function", "file", "line", "ncalls", "tottime_s", "cumtime_s"} <= set(
        rows[0]
    )
    # cumtime-sorted: the driver should dominate the first row
    assert rows[0]["cumtime_s"] >= rows[-1]["cumtime_s"]


def test_cli_bench_rand_and_profile(tmp_path, capsys):
    out_json = tmp_path / "rand.json"
    assert main(
        ["bench", "--rand", "--n", "48", "--degree", "4", "--repeat", "1",
         "--json", str(out_json)]
    ) == 0
    out = capsys.readouterr().out
    assert "randomness substrate comparison" in out
    document = json.loads(out_json.read_text())
    assert document["bench"] == "rand_comparison"
    assert any(r["op"].startswith("protocol") for r in document["rows"])

    assert main(["bench", "--profile", "--n", "48", "--degree", "4", "--top", "5"]) == 0
    assert "cProfile hotspots" in capsys.readouterr().out


def test_cli_bench_graphs(tmp_path, capsys):
    out_json = tmp_path / "graphs.json"
    assert main(
        ["bench", "--graphs", "--n", "400", "--degree", "8", "--repeat", "1",
         "--json", str(out_json), "--min-csr-speedup", "0.01"]
    ) == 0
    out = capsys.readouterr().out
    assert "graph representation comparison" in out
    assert "csr guard" in out
    document = json.loads(out_json.read_text())
    assert document["bench"] == "graphs_comparison"
    assert {r["backend"] for r in document["rows"]} == {"set", "bitset", "csr"}


def test_cli_bench_graphs_guard_flag_needs_graphs(capsys):
    assert main(["bench", "--min-csr-speedup", "3.0"]) == 2
    assert "--min-csr-speedup only applies to --graphs" in capsys.readouterr().err


def test_cli_list_large_grid(capsys):
    assert main(["list-scenarios", "--large"]) == 0
    out = capsys.readouterr().out
    assert "social(exponent=2.3,max_degree=64,n=1000000)" in out
    assert all(line.endswith("/csr") for line in out.strip().splitlines())


def test_cli_smoke_and_large_are_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["list-scenarios", "--smoke", "--large"])
    assert "not allowed with" in capsys.readouterr().err


def test_cli_bench_mode_flags_are_exclusive(capsys):
    assert main(["bench", "--rand", "--profile"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["bench", "--graphs", "--rand"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_bench_rand_and_profile_reject_transport(capsys):
    assert main(["bench", "--rand", "--transport", "count"]) == 2
    assert "--transport conflicts with --rand" in capsys.readouterr().err
    assert main(["bench", "--profile", "--transport", "strict"]) == 2
    assert "--transport conflicts with --profile" in capsys.readouterr().err
    assert main(["bench", "--graphs", "--transport", "count"]) == 2
    assert "--transport conflicts with --graphs" in capsys.readouterr().err


def test_cli_bench_profile_rejects_infeasible_workload(capsys):
    # n*d odd -> random_regular_graph raises; the CLI must exit 2 cleanly.
    assert main(["bench", "--profile", "--n", "11", "--degree", "3"]) == 2
    assert "infeasible workload" in capsys.readouterr().err
