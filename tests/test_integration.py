"""Cross-protocol integration tests: all protocols on shared workloads."""

from __future__ import annotations


from repro.baselines import (
    run_flin_mittal,
    run_greedy_binary_search,
    run_naive_exchange,
    run_one_round_sparsify,
)
from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.graphs import (
    PARTITIONERS,
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    gnp_with_max_degree,
    random_regular_graph,
)


class TestEveryProtocolOnEveryPartitioner:
    def test_full_matrix(self, rng):
        g = random_regular_graph(40, 6, rng)
        delta = 6
        for name, factory in PARTITIONERS.items():
            part = factory(g, rng)
            vertex_results = [
                run_vertex_coloring(part, seed=1),
                run_flin_mittal(part, seed=1),
                run_greedy_binary_search(part),
                run_one_round_sparsify(part, seed=1),
                run_naive_exchange(part),
            ]
            for res in vertex_results:
                assert_proper_vertex_coloring(g, res.colors, delta + 1)
            edge = run_edge_coloring(part)
            assert_proper_edge_coloring(g, edge.colors, 2 * delta - 1)
            zero = run_zero_comm_edge_coloring(part)
            assert_proper_edge_coloring(g, zero.colors, 2 * delta)


class TestHeadToHeadShapes:
    """The qualitative comparisons the paper's contribution rests on."""

    def test_ours_beats_fm25_on_rounds_at_same_bit_order(self, rng):
        g = random_regular_graph(256, 8, rng)
        part = PARTITIONERS["random"](g, rng)
        ours = run_vertex_coloring(part, seed=3)
        fm = run_flin_mittal(part, seed=3)
        # Round separation: ours is orders of magnitude below Θ(n).
        assert ours.rounds * 5 < fm.rounds
        # Bits stay within a constant factor of each other.
        assert ours.total_bits < 12 * fm.total_bits

    def test_ours_beats_naive_on_bits_for_dense_graphs(self, rng):
        g = gnp_with_max_degree(300, 0.5, 24, rng)
        part = PARTITIONERS["random"](g, rng)
        ours = run_vertex_coloring(part, seed=3)
        naive = run_naive_exchange(part)
        assert ours.total_bits < naive.total_bits

    def test_edge_protocol_rounds_constant_while_vertex_grows(self, rng):
        for n in (64, 256):
            g = random_regular_graph(n, 10, rng)
            part = PARTITIONERS["random"](g, rng)
            edge = run_edge_coloring(part)
            assert edge.rounds == 2

    def test_transcript_bits_match_direction_split(self, rng):
        g = random_regular_graph(64, 6, rng)
        part = PARTITIONERS["random"](g, rng)
        res = run_vertex_coloring(part, seed=5)
        t = res.transcript
        assert t.total_bits == t.bits_alice_to_bob + t.bits_bob_to_alice


class TestRepeatabilityAcrossSeeds:
    def test_many_seeds_all_proper(self, rng):
        g = random_regular_graph(60, 6, rng)
        part = PARTITIONERS["degree_split"](g, rng)
        bits = []
        for seed in range(10):
            res = run_vertex_coloring(part, seed=seed)
            assert_proper_vertex_coloring(g, res.colors, 7)
            bits.append(res.total_bits)
        # Randomized cost fluctuates but stays in one order of magnitude.
        assert max(bits) < 10 * min(bits)
