"""Tests for the verification harness."""

from __future__ import annotations

import pytest

from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.graphs import partition_random, random_regular_graph
from repro.verify import verify_edge_result, verify_vertex_result


@pytest.fixture
def workload(rng):
    g = random_regular_graph(60, 8, rng)
    return partition_random(g, rng)


class TestVertexVerification:
    def test_accepts_genuine_result(self, workload):
        res = run_vertex_coloring(workload, seed=1)
        report = verify_vertex_result(workload, res)
        assert report.ok
        report.raise_if_failed()  # no-op on success

    def test_detects_conflict(self, workload):
        res = run_vertex_coloring(workload, seed=1)
        v = 0
        u = next(iter(workload.graph.neighbors(v)))
        res.colors[v] = res.colors[u]
        report = verify_vertex_result(workload, res)
        assert not report.ok
        assert any("monochromatic" in p for p in report.problems)
        with pytest.raises(AssertionError, match="monochromatic"):
            report.raise_if_failed()

    def test_detects_missing_vertex(self, workload):
        res = run_vertex_coloring(workload, seed=1)
        del res.colors[5]
        report = verify_vertex_result(workload, res)
        assert any("uncolored" in p for p in report.problems)

    def test_detects_out_of_palette(self, workload):
        res = run_vertex_coloring(workload, seed=1)
        res.colors[3] = 999
        report = verify_vertex_result(workload, res)
        assert any("palette" in p for p in report.problems)

    def test_detects_transcript_mismatch(self, workload):
        res = run_vertex_coloring(workload, seed=1)
        res.transcript.record_round(1, 0)  # desynchronize summary fields?
        # rounds property reads the transcript, so tamper differently:
        object.__setattr__(res, "num_colors", 4)
        report = verify_vertex_result(workload, res)
        assert any("palette 4" in p for p in report.problems)


class TestEdgeVerification:
    def test_accepts_theorem2(self, workload):
        res = run_edge_coloring(workload)
        assert verify_edge_result(workload, res).ok

    def test_accepts_theorem3(self, workload):
        res = run_zero_comm_edge_coloring(workload)
        assert verify_edge_result(workload, res, zero_communication=True).ok

    def test_detects_ownership_violation(self, workload):
        res = run_edge_coloring(workload)
        # Move one of Bob's edges into Alice's output.
        edge = next(iter(workload.bob_edges))
        res.alice_colors[edge] = res.bob_colors.pop(edge)
        report = verify_edge_result(workload, res)
        assert not report.ok
        assert any("Alice" in p or "Bob" in p for p in report.problems)

    def test_detects_color_conflict(self, workload):
        res = run_edge_coloring(workload)
        v = 0
        neigh = sorted(workload.graph.neighbors(v))
        e1 = (min(v, neigh[0]), max(v, neigh[0]))
        e2 = (min(v, neigh[1]), max(v, neigh[1]))
        side1 = res.alice_colors if e1 in res.alice_colors else res.bob_colors
        side2 = res.alice_colors if e2 in res.alice_colors else res.bob_colors
        side1[e1] = side2[e2]
        report = verify_edge_result(workload, res)
        assert any("share color" in p for p in report.problems)

    def test_detects_fake_zero_communication(self, workload):
        res = run_edge_coloring(workload)  # spent real bits
        report = verify_edge_result(workload, res, zero_communication=True)
        assert any("spent" in p for p in report.problems)
