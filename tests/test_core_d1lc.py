"""Tests for the D1LC protocol (Lemma 3.3)."""

from __future__ import annotations

import random

import pytest

from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import d1lc_party, sample_list_size, sparsity_threshold
from repro.core.d1lc import SAMPLE_FACTOR
from repro.graphs import Graph, gnp_random_graph, is_proper_list_coloring, partition_random


def make_d1lc_instance(rng, n, p):
    """A random valid two-party D1LC instance.

    Built like the paper's leftover instances: start from the full palette
    ``[Δ+1]`` and strike out at most ``Δ − deg(v)`` colors at each vertex
    (split arbitrarily between the two sides), which preserves both
    ``|Ψ_A ∩ Ψ_B| ≥ deg + 1`` and the slack precondition
    ``|Ψ_A| + |Ψ_B| ≥ m + 1``.
    """
    g = gnp_random_graph(n, p, rng)
    delta = g.max_degree()
    m = delta + 1
    part = partition_random(g, rng)
    palette = set(range(1, m + 1))
    lists_a, lists_b = {}, {}
    for v in g.vertices():
        budget = rng.randint(0, delta - g.degree(v))
        drops = rng.sample(sorted(palette), budget)
        cut = rng.randint(0, budget)
        lists_a[v] = palette - set(drops[:cut])
        lists_b[v] = palette - set(drops[cut:])
    return g, part, lists_a, lists_b, m


def run_d1lc(part, lists_a, lists_b, active, m, seed=0):
    pub_a, pub_b = Stream.from_seed(seed), Stream.from_seed(seed)
    rng_a = Stream.from_seed(seed).derive_random("a")
    rng_b = Stream.from_seed(seed).derive_random("b")
    a, b, t = run_protocol(
        d1lc_party("alice", part.alice_graph, lists_a, active, m, pub_a, rng_a),
        d1lc_party("bob", part.bob_graph, lists_b, active, m, pub_b, rng_b),
    )
    assert a == b, "the D1LC coloring must be common knowledge"
    return a, t


class TestSizingHelpers:
    def test_sample_list_size_grows_polylog(self):
        assert sample_list_size(2) >= 4
        assert sample_list_size(10**6) < 10**3
        assert sample_list_size(1 << 16) > sample_list_size(1 << 4)

    def test_sparsity_threshold_superlinear(self):
        assert sparsity_threshold(1000) > 1000

    def test_sample_factor_positive(self):
        assert SAMPLE_FACTOR > 0


class TestProtocol:
    def test_colors_leftover_style_instances(self, rng):
        for _ in range(15):
            n = rng.randint(2, 25)
            g, part, la, lb, m = make_d1lc_instance(rng, n, rng.random() * 0.4)
            if not _valid_instance(g, la, lb, m):
                continue
            active = list(g.vertices())
            colors, t = run_d1lc(part, la, lb, active, m, seed=rng.randint(0, 99))
            merged = {v: la[v] & lb[v] for v in g.vertices()}
            assert is_proper_list_coloring(g, colors, merged)

    def test_full_palette_instance(self, rng):
        g = gnp_random_graph(20, 0.3, rng)
        m = g.max_degree() + 1
        part = partition_random(g, rng)
        palette = set(range(1, m + 1))
        lists = {v: set(palette) for v in g.vertices()}
        colors, _ = run_d1lc(part, lists, lists, list(g.vertices()), m)
        assert is_proper_list_coloring(g, colors, lists)

    def test_empty_active_set(self, rng):
        g = gnp_random_graph(5, 0.5, rng)
        part = partition_random(g, rng)
        colors, t = run_d1lc(part, {}, {}, [], g.max_degree() + 1)
        assert colors == {}
        assert t.rounds == 0

    def test_subset_active(self, rng):
        # Only a subset of the vertices is uncolored; the protocol must
        # restrict itself to the induced instance.
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        part = partition_random(g, rng)
        active = [0, 1, 2]
        sub_a = part.alice_graph.subgraph_edges(
            [(u, v) for u, v in part.alice_graph.edges() if u in active and v in active]
        )
        sub_b = part.bob_graph.subgraph_edges(
            [(u, v) for u, v in part.bob_graph.edges() if u in active and v in active]
        )
        m = 3
        lists = {v: {1, 2, 3} for v in active}
        pub_a, pub_b = Stream.from_seed(1), Stream.from_seed(1)
        a, b, _ = run_protocol(
            d1lc_party("alice", sub_a, lists, active, m, pub_a, random.Random(1)),
            d1lc_party("bob", sub_b, lists, active, m, pub_b, random.Random(1)),
        )
        assert set(a) == set(active)
        assert a[0] != a[1] and a[1] != a[2]

    def test_rejects_bad_role(self, rng):
        g = gnp_random_graph(3, 0.5, rng)
        with pytest.raises(ValueError):
            next(
                d1lc_party(
                    "carol", g, {v: {1} for v in g.vertices()}, [0], 1,
                    Stream.from_seed(0), rng,
                )
            )

    def test_round_complexity_logarithmic_in_delta(self, rng):
        g = gnp_random_graph(30, 0.4, rng)
        m = g.max_degree() + 1
        part = partition_random(g, rng)
        palette = set(range(1, m + 1))
        lists = {v: set(palette) for v in g.vertices()}
        _, t = run_d1lc(part, lists, lists, list(g.vertices()), m)
        import math

        assert t.rounds <= 3 * math.log2(m + 1) + 12


def _valid_instance(g, la, lb, m):
    """Check the D1LC + slack preconditions the protocol documents."""
    for v in g.vertices():
        if len(la[v] & lb[v]) < g.degree(v) + 1:
            return False
        if len(la[v]) + len(lb[v]) < m + 1:
            return False
    return True
