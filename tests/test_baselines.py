"""Tests for the four baseline protocols and their cost signatures."""

from __future__ import annotations


from repro.baselines import (
    ack_list_size,
    run_flin_mittal,
    run_greedy_binary_search,
    run_naive_exchange,
    run_one_round_sparsify,
)
from repro.graphs import (
    assert_proper_vertex_coloring,
    gnp_random_graph,
    partition_random,
    random_regular_graph,
)

from .conftest import all_partitions


class TestCorrectness:
    def test_all_baselines_color_properly(self, rng):
        for trial in range(12):
            g = gnp_random_graph(rng.randint(2, 30), rng.random() * 0.5, rng)
            part = partition_random(g, rng)
            k = g.max_degree() + 1
            for result in (
                run_flin_mittal(part, seed=trial),
                run_greedy_binary_search(part),
                run_one_round_sparsify(part, seed=trial),
                run_naive_exchange(part),
            ):
                assert_proper_vertex_coloring(g, result.colors, k)

    def test_partition_adversaries(self, rng):
        g = gnp_random_graph(20, 0.4, rng)
        k = g.max_degree() + 1
        for part in all_partitions(g, rng):
            for result in (
                run_flin_mittal(part, seed=0),
                run_greedy_binary_search(part),
                run_one_round_sparsify(part, seed=0),
                run_naive_exchange(part),
            ):
                assert_proper_vertex_coloring(g, result.colors, k)

    def test_edgeless(self, rng):
        g = gnp_random_graph(8, 0.0, rng)
        part = partition_random(g, rng)
        for result in (
            run_flin_mittal(part),
            run_greedy_binary_search(part),
            run_one_round_sparsify(part),
            run_naive_exchange(part),
        ):
            assert result.colors == {v: 1 for v in range(8)}


class TestCostSignatures:
    """Each baseline has a distinctive (bits, rounds) signature the
    experiments rely on; pin the qualitative facts here."""

    def test_flin_mittal_is_round_heavy(self, rng):
        g = random_regular_graph(100, 6, rng)
        part = partition_random(g, rng)
        res = run_flin_mittal(part, seed=1)
        assert res.rounds >= g.n  # Θ(n) rounds: at least one per vertex

    def test_greedy_binary_search_round_heavy_and_deterministic(self, rng):
        g = random_regular_graph(60, 6, rng)
        part = partition_random(g, rng)
        a = run_greedy_binary_search(part)
        b = run_greedy_binary_search(part)
        assert a.colors == b.colors and a.total_bits == b.total_bits
        assert a.rounds >= g.n

    def test_one_round_uses_single_round_whp(self, rng):
        g = random_regular_graph(80, 6, rng)
        part = partition_random(g, rng)
        res = run_one_round_sparsify(part, seed=2)
        assert res.rounds <= 2  # 1 whp, 2 if the rare fallback fires

    def test_naive_is_single_round_but_bit_heavy(self, rng):
        g = random_regular_graph(100, 8, rng)
        part = partition_random(g, rng)
        naive = run_naive_exchange(part)
        fm = run_flin_mittal(part, seed=1)
        assert naive.rounds == 1
        assert naive.total_bits > fm.total_bits  # m log n ≫ O(n)

    def test_ack_list_size_clamped_to_palette(self):
        assert ack_list_size(1000, 5) == 5
        assert ack_list_size(1000, 100) > 10

    def test_result_metadata(self, rng):
        g = random_regular_graph(40, 4, rng)
        part = partition_random(g, rng)
        res = run_flin_mittal(part, seed=0)
        assert res.name == "flin_mittal"
        assert res.num_colors == 5
