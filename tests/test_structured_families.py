"""Integration: all three theorems on the structured graph families.

Hypercubes are the adversarial extreme for the edge protocols — *every*
vertex has maximum degree, so Fournier's hypothesis fails globally and
Algorithm 2 (and Theorem 3's peel) must restructure the graph before any
class-one coloring applies.
"""

from __future__ import annotations


from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.graphs import (
    caterpillar_graph,
    configuration_model_graph,
    disjoint_union,
    hypercube_graph,
    partition_degree_split,
    partition_random,
    power_law_degree_sequence,
    star_graph,
)
from repro.verify import verify_edge_result, verify_vertex_result


def family(rng):
    degrees = power_law_degree_sequence(150, 2.1, 18, rng)
    return [
        hypercube_graph(6),
        caterpillar_graph(40, 4),
        configuration_model_graph(degrees, rng),
        disjoint_union([star_graph(9)] * 10),
    ]


class TestTheoremsOnFamilies:
    def test_vertex_coloring(self, rng):
        for graph in family(rng):
            part = partition_random(graph, rng)
            res = run_vertex_coloring(part, seed=3)
            verify_vertex_result(part, res).raise_if_failed()

    def test_edge_coloring(self, rng):
        for graph in family(rng):
            part = partition_random(graph, rng)
            res = run_edge_coloring(part)
            verify_edge_result(part, res).raise_if_failed()

    def test_zero_comm_edge_coloring(self, rng):
        for graph in family(rng):
            part = partition_random(graph, rng)
            res = run_zero_comm_edge_coloring(part)
            verify_edge_result(part, res, zero_communication=True).raise_if_failed()


class TestHypercubeExtremes:
    """All-max-degree graphs stress the deferral and peel machinery."""

    def test_zero_comm_on_all_heavy_graph(self, rng):
        graph = hypercube_graph(7)  # 128 vertices, all degree 7
        for partitioner in (partition_random, partition_degree_split):
            part = (
                partitioner(graph, rng)
                if partitioner is partition_random
                else partitioner(graph)
            )
            res = run_zero_comm_edge_coloring(part)
            verify_edge_result(part, res, zero_communication=True).raise_if_failed()

    def test_theorem2_on_all_heavy_graph(self, rng):
        graph = hypercube_graph(7)
        part = partition_random(graph, rng)
        res = run_edge_coloring(part)
        verify_edge_result(part, res).raise_if_failed()
        assert res.rounds <= 1  # Δ=7 routes through Lemma 5.1

    def test_theorem2_on_bigger_hypercube(self, rng):
        graph = hypercube_graph(9)  # Δ=9 ≥ 8: the full Algorithm 2 path
        part = partition_random(graph, rng)
        res = run_edge_coloring(part)
        verify_edge_result(part, res).raise_if_failed()
        assert res.rounds == 2
