"""Tests for lazy permutations: Feistel bijectivity and the small-m table.

The Feistel network must be a bijection on ``[0, m)`` for *every* m —
cycle walking handles non-powers-of-two — and the inverse must invert
exactly, because Color-Sample maps used colors through ``index_of`` and
the sampled position back through ``perm[i]``.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import pytest

from repro.rand import (
    SMALL_THRESHOLD,
    FeistelPermutation,
    SmallPermutation,
    Stream,
    make_permutation,
)

NON_POWERS_OF_TWO = [1, 2, 3, 5, 6, 7, 9, 11, 12, 13, 37, 97, 100, 129, 1000, 4097]


class TestFeistelBijectivity:
    @pytest.mark.parametrize("m", NON_POWERS_OF_TWO)
    def test_is_a_permutation(self, m):
        perm = FeistelPermutation(0xC0FFEE ^ m, m)
        assert sorted(perm.materialize()) == list(range(m))

    @pytest.mark.parametrize("m", NON_POWERS_OF_TWO)
    def test_inverse_round_trip(self, m):
        perm = FeistelPermutation(0xBADF00D ^ m, m)
        for i in range(m):
            assert perm.index_of(perm[i]) == i
        for x in range(m):
            assert perm[perm.index_of(x)] == x

    def test_pinned_golden(self):
        perm = FeistelPermutation(0xDEADBEEF, 1000)
        digest = hashlib.sha256(
            ",".join(map(str, perm.materialize())).encode()
        ).hexdigest()
        assert digest == (
            "7594c54ef440d1ddc19337441f53133781d8187b7f988273241a801515aeb2c9"
        )

    def test_different_keys_differ(self):
        a = FeistelPermutation(1, 500).materialize()
        b = FeistelPermutation(2, 500).materialize()
        assert a != b

    def test_out_of_range_rejected(self):
        perm = FeistelPermutation(7, 10)
        with pytest.raises(IndexError):
            perm[10]
        with pytest.raises(IndexError):
            perm.index_of(-1)

    def test_lazy_iteration_matches_materialize(self):
        perm = FeistelPermutation(99, 200)
        assert list(perm) == perm.materialize()
        assert len(perm) == 200


class TestSmallPermutation:
    @pytest.mark.parametrize("m", list(range(0, 14)) + [37, SMALL_THRESHOLD])
    def test_is_a_permutation_with_exact_inverse(self, m):
        perm = SmallPermutation(0x5EED ^ m, m)
        assert sorted(perm.materialize()) == list(range(m))
        for i in range(m):
            assert perm.index_of(perm[i]) == i

    def test_lazy_until_first_access(self):
        perm = SmallPermutation(1, 20)
        assert perm._forward is None  # construction draws nothing
        perm[0]
        assert perm._forward is not None

    def test_lehmer_path_is_uniformish(self):
        # m=5 uses the one-word Lehmer decode; every first element should
        # appear ~1/5 of the time across keys.
        counts = Counter(SmallPermutation(key, 5)[0] for key in range(10000))
        assert all(abs(c - 2000) < 300 for c in counts.values()), counts


class TestMakePermutation:
    def test_backend_choice_is_size_deterministic(self):
        assert isinstance(make_permutation(3, SMALL_THRESHOLD), SmallPermutation)
        assert isinstance(make_permutation(3, SMALL_THRESHOLD + 1), FeistelPermutation)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_permutation(3, -1)


class TestStreamPermutation:
    def test_shared_stream_permutations_agree(self):
        a, b = Stream.from_seed(7), Stream.from_seed(7)
        for m in (1, 2, 5, 33, 200):
            assert a.permutation(m).materialize() == b.permutation(m).materialize()

    def test_successive_permutations_differ(self):
        s = Stream.from_seed(7)
        assert s.permutation(50).materialize() != s.permutation(50).materialize()

    def test_consumes_exactly_one_word(self):
        s = Stream.from_seed(7)
        s.permutation(1000)
        assert s.counter == 1
