"""Tests for parallel repetition, transcript guessing, the learning gadget,
and the W-streaming reduction."""

from __future__ import annotations


import pytest

from repro.rand import Stream
from repro.core import run_edge_coloring, run_vertex_coloring
from repro.graphs import (
    assert_proper_edge_coloring,
    gnp_random_graph,
    partition_random,
)
from repro.lowerbound import (
    BitProtocol,
    GreedyWStreamColorer,
    decode_bit,
    decode_bits,
    gadget_partition,
    guessing_success_probability,
    holenstein_bound,
    optimize_strategies,
    product_game_graph,
    product_success_exact,
    reduce_streaming_to_two_party,
    run_wstreaming,
    simulate_product_game,
    simulate_with_guess,
)


class TestParallelRepetition:
    def test_exact_product_decay(self):
        rng = Stream.from_seed(0).derive_random("reduction-tests")
        alice, bob, value = optimize_strategies(rng, restarts=3, iterations=8)
        assert value < 1.0
        for copies in (1, 10, 100):
            assert abs(product_success_exact(alice, bob, copies) - value**copies) < 1e-12
        # Strictly decreasing: exponential decay.
        assert (
            product_success_exact(alice, bob, 100)
            < product_success_exact(alice, bob, 10)
            < product_success_exact(alice, bob, 1)
        )

    def test_simulation_matches_exact(self):
        rng = Stream.from_seed(1).derive_random("reduction-tests")
        alice, bob, value = optimize_strategies(rng, restarts=2, iterations=5)
        est = simulate_product_game(alice, bob, copies=5, trials=3000, rng=rng)
        assert abs(est - value**5) < 0.06

    def test_holenstein_bound_is_valid_probability_and_decays(self):
        b10 = holenstein_bound(0.99, 10)
        b10000 = holenstein_bound(0.99, 10_000)
        assert 0 < b10000 < b10 <= 1

    def test_holenstein_rejects_bad_value(self):
        with pytest.raises(ValueError):
            holenstein_bound(1.5, 10)

    def test_product_graph_structure(self):
        instances = [((1, 2), (3, 4)), ((5, 6), (1, 7))]
        g = product_game_graph(instances)
        assert g.n == 18
        assert g.m == 8
        assert g.max_degree() == 2

    def test_product_graph_colorable_by_theorem2(self):
        rng = Stream.from_seed(2).derive_random("reduction-tests")
        instances = [
            (tuple(sorted(rng.sample(range(1, 8), 2))), tuple(sorted(rng.sample(range(1, 8), 2))))
            for _ in range(10)
        ]
        g = product_game_graph(instances)
        part = partition_random(g, rng)
        res = run_edge_coloring(part)
        assert_proper_edge_coloring(g, res.colors, 3)


class TestTranscriptGuessing:
    @staticmethod
    def xor_protocol():
        """Toy 2-bit protocol: parties exchange their input bits; output XOR."""

        def next_bit(role, own_input, transcript):
            return own_input

        def output(role, own_input, transcript):
            return transcript[0] ^ transcript[1]

        return BitProtocol(2, next_bit, output)

    def test_honest_run(self):
        proto = self.xor_protocol()
        transcript, out_a, out_b = proto.run(1, 0)
        assert transcript == (1, 0)
        assert out_a == out_b == 1

    def test_simulation_accepts_only_consistent_guesses(self):
        proto = self.xor_protocol()
        assert simulate_with_guess(proto, "alice", 1, (1, 0)) == 1
        assert simulate_with_guess(proto, "alice", 1, (0, 0)) is None
        # Bob's bit is transcript position 1; Alice can't check it.
        assert simulate_with_guess(proto, "alice", 1, (1, 1)) == 0

    def test_success_probability_matches_two_to_minus_t(self):
        """Lemma 6.1 quantitatively, on the toy protocol.

        Alice's guess must fix her 1 bit correctly (prob 1/2) and agree
        with Bob's on his bit, and symmetrically — over all 16 guess
        pairs, exactly the consistent-and-agreeing ones win.
        """
        proto = self.xor_protocol()
        prob = guessing_success_probability(
            proto, 1, 0, win=lambda a, b: a == b == 1
        )
        # Alice survives on guesses (1, *) -> 2 of 4; Bob on (*, 0) -> 2 of 4;
        # winning also needs both to OUTPUT xor=1, i.e. guesses (1,0)/(1,0)
        # and (1,0)/(1,... ) — enumerate: alice guess in {(1,0),(1,1)},
        # bob in {(0,0),(1,0)}; outputs xor: alice 1/0, bob 0/1 -> only
        # ((1,0),(1,0)) has both outputs 1: 1/16.
        assert abs(prob - 1 / 16) < 1e-12

    def test_guess_length_validated(self):
        proto = self.xor_protocol()
        with pytest.raises(ValueError):
            simulate_with_guess(proto, "alice", 1, (1,))


class TestLearningGadget:
    def test_end_to_end_decoding(self):
        rng = Stream.from_seed(3).derive_random("reduction-tests")
        for trial in range(5):
            bits = [rng.randint(0, 1) for _ in range(25)]
            part = gadget_partition(bits)
            assert part.max_degree == 2
            assert len(part.bob_edges) == 0  # Alice holds everything
            res = run_vertex_coloring(part, seed=trial)
            assert decode_bits(res.colors, len(bits)) == bits

    def test_decode_rejects_improper_coloring(self):
        bits = [0]
        # All-same coloring is consistent with neither candidate.
        with pytest.raises(ValueError):
            decode_bit({0: 1, 1: 1, 2: 1, 3: 1}, 0)

    def test_decode_is_unambiguous_for_every_proper_3_coloring(self):
        """The K4 argument: enumerate all 3-colorings of one gadget."""
        import itertools

        from repro.lowerbound import gadget_candidate_edges

        candidates = gadget_candidate_edges(0)
        for bit, edges in candidates.items():
            for assignment in itertools.product((1, 2, 3), repeat=4):
                colors = dict(enumerate(assignment))
                if any(colors[u] == colors[v] for u, v in edges):
                    continue  # not proper for this gadget
                assert decode_bit(colors, 0) == bit


class TestWStreaming:
    def test_greedy_stream_colors_properly(self, rng):
        for _ in range(10):
            g = gnp_random_graph(rng.randint(2, 30), rng.random() * 0.6, rng)
            delta = max(g.max_degree(), 1)
            colors, peak = run_wstreaming(
                GreedyWStreamColorer(g.n, delta), g.edge_list()
            )
            if g.m:
                assert_proper_edge_coloring(g, colors, 2 * delta - 1)
            assert peak == g.n * max(2 * delta - 1, 1)

    def test_stream_order_does_not_matter(self, rng):
        g = gnp_random_graph(20, 0.4, rng)
        delta = g.max_degree()
        edges = g.edge_list()
        rng.shuffle(edges)
        colors, _ = run_wstreaming(GreedyWStreamColorer(g.n, delta), edges)
        assert_proper_edge_coloring(g, colors, 2 * delta - 1)

    def test_reduction_produces_weaker_protocol(self, rng):
        g = gnp_random_graph(40, 0.2, rng)
        delta = max(g.max_degree(), 1)
        part = partition_random(g, rng)
        a_out, b_out, transcript = reduce_streaming_to_two_party(
            part, lambda: GreedyWStreamColorer(g.n, delta)
        )
        # Every edge reported by exactly one party; union proper.
        assert set(a_out) | set(b_out) == set(g.edges())
        assert not set(a_out) & set(b_out)
        merged = {**a_out, **b_out}
        assert_proper_edge_coloring(g, merged, 2 * delta - 1)
        # Communication equals the streaming state size (one party switch).
        assert transcript.total_bits == g.n * (2 * delta - 1)
        assert transcript.rounds == 1

    def test_degree_overflow_detected(self):
        algo = GreedyWStreamColorer(3, 1)
        list(algo.process((0, 1)))
        with pytest.raises(RuntimeError):
            list(algo.process((1, 2)))
