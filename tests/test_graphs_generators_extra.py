"""Tests for the structured-family generators (hypercube, caterpillar,
configuration model, disjoint union)."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    caterpillar_graph,
    configuration_model_graph,
    cycle_graph,
    disjoint_union,
    hypercube_graph,
    power_law_degree_sequence,
    star_graph,
)


class TestHypercube:
    def test_structure(self):
        for d in range(0, 7):
            g = hypercube_graph(d)
            assert g.n == 1 << d
            assert g.m == d * (1 << d) // 2
            assert all(g.degree(v) == d for v in g.vertices())

    def test_neighbors_differ_in_one_bit(self):
        g = hypercube_graph(5)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_bipartite(self):
        # Parity classes are independent sets.
        g = hypercube_graph(4)
        even = [v for v in g.vertices() if bin(v).count("1") % 2 == 0]
        assert g.is_independent_set(even)

    def test_rejects_negative_dimension(self):
        with pytest.raises(ValueError):
            hypercube_graph(-1)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar_graph(5, 3)
        assert g.n == 20
        assert g.m == 4 + 15  # spine + legs
        # interior spine vertices: 2 spine edges + 3 legs
        assert g.degree(2) == 5
        # leaves have degree 1
        assert g.degree(19) == 1

    def test_is_a_tree(self):
        g = caterpillar_graph(7, 2)
        assert g.m == g.n - 1

    def test_zero_legs_is_a_path(self):
        g = caterpillar_graph(6, 0)
        assert g.m == 5 and g.max_degree() == 2

    def test_rejects_empty_spine(self):
        with pytest.raises(ValueError):
            caterpillar_graph(0, 2)


class TestPowerLawSequence:
    def test_even_sum_and_range(self):
        rng = random.Random(1)
        for _ in range(20):
            degs = power_law_degree_sequence(50, 2.5, 12, rng)
            assert sum(degs) % 2 == 0
            assert all(1 <= d <= 13 for d in degs)

    def test_heavy_tail_shape(self):
        rng = random.Random(2)
        degs = power_law_degree_sequence(5000, 2.0, 30, rng)
        ones = sum(1 for d in degs if d <= 2)
        heavy = sum(1 for d in degs if d >= 15)
        assert ones > 10 * heavy  # low degrees dominate

    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, -1, 3, rng)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2, 10, rng)


class TestConfigurationModel:
    def test_simple_and_degree_bounded(self):
        rng = random.Random(3)
        for _ in range(20):
            degs = power_law_degree_sequence(60, 2.2, 15, rng)
            g = configuration_model_graph(degs, rng)
            assert all(g.degree(v) <= degs[v] for v in g.vertices())
            seen = set()
            for e in g.edges():
                assert e not in seen
                seen.add(e)

    def test_rejects_out_of_range_degree(self):
        with pytest.raises(ValueError):
            configuration_model_graph([5], random.Random(0))


class TestDisjointUnion:
    def test_blocks_are_disjoint(self):
        a = cycle_graph(4)
        b = star_graph(5)
        u = disjoint_union([a, b])
        assert u.n == 9
        assert u.m == a.m + b.m
        # No edge crosses the block boundary.
        assert all((x < 4) == (y < 4) for x, y in u.edges())

    def test_empty_union(self):
        assert disjoint_union([]).n == 0

    def test_degrees_preserved(self):
        a = star_graph(4)
        u = disjoint_union([a, a, a])
        for block in range(3):
            assert u.degree(block * 4) == 3
