"""Tests for the stream-native driver signatures.

Every ``run_*`` driver accepts ``rand=`` (a :class:`repro.rand.Stream`)
with ``seed=`` kept as the back-compat alias, and the two must be
bit-for-bit interchangeable: ``run(part, seed=s)`` and
``run(part, rand=Stream.from_seed(s))`` draw the same tapes and produce
identical colorings and transcripts.  Graph generators and partitioners
accept ``Stream | random.Random`` through :func:`repro.rand.as_random`.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    run_flin_mittal,
    run_greedy_binary_search,
    run_naive_exchange,
    run_one_round_sparsify,
    run_vizing_gather,
)
from repro.core.edge_coloring import run_edge_coloring, run_zero_comm_edge_coloring
from repro.core.vertex_coloring import run_vertex_coloring
from repro.engine._legacy_thm1 import run_vertex_coloring_legacy
from repro.graphs import (
    Graph,
    gnp_random_graph,
    partition_crossing,
    partition_random,
    random_regular_graph,
)
from repro.rand import Stream, as_random


@pytest.fixture(scope="module")
def part():
    rng = random.Random(99)
    graph = random_regular_graph(64, 6, rng)
    return partition_random(graph, rng)


def _same_result(a, b):
    assert a.colors == b.colors
    assert a.transcript.summary() == b.transcript.summary()


class TestSeedRandEquivalence:
    """seed=s and rand=Stream.from_seed(s) are bit-for-bit interchangeable."""

    def test_vertex_coloring(self, part):
        by_seed = run_vertex_coloring(part, seed=5)
        by_rand = run_vertex_coloring(part, rand=Stream.from_seed(5))
        _same_result(by_seed, by_rand)
        assert by_seed.leftover_size == by_rand.leftover_size

    def test_vertex_coloring_legacy(self, part):
        by_seed = run_vertex_coloring_legacy(part, seed=5)
        by_rand = run_vertex_coloring_legacy(part, rand=Stream.from_seed(5))
        _same_result(by_seed, by_rand)
        # The legacy fixture must also still match the modern driver.
        _same_result(by_seed, run_vertex_coloring(part, seed=5))

    def test_flin_mittal(self, part):
        by_seed = run_flin_mittal(part, seed=5)
        by_rand = run_flin_mittal(part, rand=Stream.from_seed(5))
        _same_result(by_seed, by_rand)

    def test_one_round_sparsify(self, part):
        by_seed = run_one_round_sparsify(part, seed=5)
        by_rand = run_one_round_sparsify(part, rand=Stream.from_seed(5))
        # The solver RNG is derived differently on the two paths (the
        # seed path preserves the historical seed+1 tape), so only the
        # coloring-validity contract is shared; on the common case the
        # sparsified instance and exchanged bits are identical.
        assert by_seed.transcript.summary() == by_rand.transcript.summary()

    def test_partially_consumed_rand_stream_is_fine(self, part):
        fresh = Stream.from_seed(5)
        consumed = Stream.from_seed(5)
        consumed.next64()  # derive() ignores the root counter
        _same_result(
            run_vertex_coloring(part, rand=fresh),
            run_vertex_coloring(part, rand=consumed),
        )


class TestDeterministicDriversAcceptUniformSignature:
    """The deterministic drivers take seed/rand for signature uniformity."""

    def test_edge_drivers(self, part):
        base = run_edge_coloring(part)
        with_rand = run_edge_coloring(part, seed=3, rand=Stream.from_seed(3))
        _same_result(base, with_rand)
        zero = run_zero_comm_edge_coloring(part, seed=3, rand=Stream.from_seed(3))
        _same_result(run_zero_comm_edge_coloring(part), zero)

    def test_deterministic_baselines(self, part):
        for runner in (run_greedy_binary_search, run_naive_exchange, run_vizing_gather):
            base = runner(part)
            with_rand = runner(part, seed=3, rand=Stream.from_seed(3))
            _same_result(base, with_rand)


class TestAsRandom:
    def test_stream_coerces_to_derived_random(self):
        root = Stream.from_seed(7)
        a = as_random(root)
        b = as_random(Stream.from_seed(7))
        assert isinstance(a, random.Random)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_random_passes_through_identically(self):
        rng = random.Random(1)
        assert as_random(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_random(42)

    def test_coercion_ignores_root_counter(self):
        consumed = Stream.from_seed(7)
        consumed.next64()
        a = as_random(Stream.from_seed(7))
        b = as_random(consumed)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestGeneratorsAcceptStreams:
    def test_gnp_with_stream_is_deterministic(self):
        g1 = gnp_random_graph(40, 0.2, Stream.from_seed(9))
        g2 = gnp_random_graph(40, 0.2, Stream.from_seed(9))
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_stream_matches_manual_coercion(self):
        direct = random_regular_graph(32, 4, Stream.from_seed(9))
        manual = random_regular_graph(32, 4, as_random(Stream.from_seed(9)))
        assert sorted(direct.edges()) == sorted(manual.edges())

    def test_plain_random_still_works(self):
        g = gnp_random_graph(30, 0.3, random.Random(4))
        assert isinstance(g, Graph)

    def test_partitioners_accept_streams(self):
        graph = gnp_random_graph(40, 0.2, random.Random(2))
        p1 = partition_random(graph, Stream.from_seed(9))
        p2 = partition_random(graph, Stream.from_seed(9))
        assert p1.alice_edges == p2.alice_edges
        c1 = partition_crossing(graph, Stream.from_seed(9))
        c2 = partition_crossing(graph, Stream.from_seed(9))
        assert c1.alice_edges == c2.alice_edges
