"""Streaming edge generators: stream == materialized, on every substrate.

The CSR tier builds graphs from edge *streams* (``from_edge_stream``
never materializes an edge list).  These tests pin the two contracts
that make that safe:

* **Equivalence** — consuming a generator's stream yields the identical
  edge sequence, and builds the identical graph, as materializing the
  list first; and the set/csr builds of one stream are equal graphs.
* **Determinism** — the ``repro.rand`` Stream path consumes exactly the
  same counter range with the numpy kernels enabled or disabled (and
  under ``REPRO_NO_NUMPY=1``), so kernel availability can never shift a
  workload; the legacy ``random.Random`` path still replays the
  historical tape bit-for-bit.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Graph,
    configuration_model_edge_stream,
    configuration_model_graph,
    from_edge_stream,
    gnp_edge_stream,
    gnp_random_graph,
    gnp_with_max_degree,
    gnp_with_max_degree_edge_stream,
    power_law_degree_sequence,
)
from repro.rand import Stream, kernels


def _stream(label: str) -> Stream:
    return Stream.from_seed(77, "edge-streams").derive(label)


def test_gnp_stream_matches_materialized_graph():
    edges = list(gnp_edge_stream(120, 0.08, _stream("gnp")))
    assert edges == sorted(set(edges))  # canonical order, no duplicates
    built = gnp_random_graph(120, 0.08, _stream("gnp"))
    assert list(built.edges()) == edges
    assert from_edge_stream(120, gnp_edge_stream(120, 0.08, _stream("gnp"))) == built


def test_gnp_stream_counter_is_kernel_invariant():
    with_kernels = _stream("inv")
    edges_a = list(gnp_edge_stream(200, 0.05, with_kernels))
    without = _stream("inv")
    with kernels.disabled():
        edges_b = list(gnp_edge_stream(200, 0.05, without))
    assert edges_a == edges_b
    assert with_kernels.counter == without.counter


def test_gnp_legacy_tape_is_preserved():
    """The random.Random path draws one coin per pair in u-major order."""
    edges = list(gnp_edge_stream(40, 0.2, random.Random(5)))
    rng = random.Random(5)
    expected = [
        (u, v)
        for u in range(40)
        for v in range(u + 1, 40)
        if rng.random() < 0.2
    ]
    assert edges == expected
    assert list(gnp_random_graph(40, 0.2, random.Random(5)).edges()) == sorted(
        expected
    )


def test_gnp_edge_cases():
    assert list(gnp_edge_stream(50, 0.0, _stream("zero"))) == []
    complete = list(gnp_edge_stream(10, 1.0, _stream("one")))
    assert len(complete) == 45
    with pytest.raises(ValueError):
        list(gnp_edge_stream(10, 1.5, _stream("bad")))


@pytest.mark.parametrize("rng_factory", [
    lambda: _stream("capped"),
    lambda: random.Random(31),
], ids=["stream", "legacy"])
def test_gnp_with_max_degree_stream_matches_graph(rng_factory):
    edges = list(gnp_with_max_degree_edge_stream(80, 0.2, 5, rng_factory()))
    built = gnp_with_max_degree(80, 0.2, 5, rng_factory())
    assert sorted(edges) == list(built.edges())
    assert built.max_degree() <= 5


def test_configuration_model_stream_matches_graph():
    stream = _stream("social")
    degrees = power_law_degree_sequence(300, 2.3, 12, stream.derive("degrees"))
    graph = configuration_model_graph(degrees, stream.derive("pairing"))
    # The raw stream may carry duplicate stub pairs; both Graph.add_edge
    # and the CSR bulk build collapse them to the same simple graph.
    csr = from_edge_stream(
        300, configuration_model_edge_stream(degrees, stream.derive("pairing"))
    )
    via_set = Graph(
        300,
        configuration_model_edge_stream(degrees, stream.derive("pairing")),
    )
    assert csr == graph and via_set == graph
    assert list(csr.edges()) == list(graph.edges())
    assert all(graph.degree(v) <= degrees[v] for v in range(300))


def test_configuration_model_legacy_rng_still_works():
    degrees = [2] * 20
    a = configuration_model_graph(degrees, random.Random(8))
    b = configuration_model_graph(degrees, random.Random(8))
    assert a == b and a.m > 0


def test_power_law_degrees_are_kernel_invariant():
    with_kernels = _stream("degs")
    a = power_law_degree_sequence(500, 2.3, 16, with_kernels)
    without = _stream("degs")
    with kernels.disabled():
        b = power_law_degree_sequence(500, 2.3, 16, without)
    assert a == b
    assert with_kernels.counter == without.counter
    assert all(1 <= d <= 16 for d in a)
