"""Tests for the analysis helpers (stats + tables)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    format_table,
    geometric_decay_rate,
    linear_fit,
    mean_ci,
    print_table,
    r_squared,
)


class TestMeanCI:
    def test_single_value(self):
        assert mean_ci([5.0]) == (5.0, 0.0)

    def test_constant_series(self):
        mean, half = mean_ci([2.0] * 10)
        assert mean == 2.0 and half == 0.0

    def test_ci_shrinks_with_samples(self):
        wide = mean_ci([1, 2, 3, 4])[1]
        narrow = mean_ci([1, 2, 3, 4] * 25)[1]
        assert narrow < wide

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert abs(fit.slope - 2) < 1e-9
        assert abs(fit.intercept - 1) < 1e-9
        assert fit.r2 > 0.999999
        assert abs(fit.predict(10) - 21) < 1e-9

    def test_noisy_line_reasonable_r2(self):
        xs = list(range(20))
        ys = [2 * x + ((-1) ** x) * 0.5 for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.r2 > 0.99

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])


class TestRSquared:
    def test_perfect(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_constant_actual(self):
        assert r_squared([2, 2], [2, 2]) == 1.0
        assert r_squared([2, 2], [1, 3]) == 0.0


class TestGeometricDecay:
    def test_exact_geometric(self):
        series = [1000 * (0.5**i) for i in range(8)]
        assert abs(geometric_decay_rate(series) - 0.5) < 1e-6

    def test_ignores_zero_tail(self):
        series = [100, 50, 25, 0, 0]
        rate = geometric_decay_rate(series)
        assert abs(rate - 0.5) < 1e-6

    def test_needs_two_positive_points(self):
        with pytest.raises(ValueError):
            geometric_decay_rate([5, 0, 0])


class TestTables:
    def test_alignment_and_content(self):
        table = format_table(
            ["n", "bits"], [[10, 120], [1000, 9800]], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "bits" in lines[1]
        assert "9800" in lines[-1]
        # aligned: all rows same width
        assert len(lines[2]) == len(lines[3])

    def test_float_formatting(self):
        table = format_table(["x"], [[0.000123456], [12345.678], [1.5], [0.0]])
        assert "1.235e-04" in table
        assert "1.235e+04" in table
        assert "1.5" in table
        assert math.isfinite(1.0)  # noqa: S101 - keep math import honest

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_print_table_smoke(self, capsys):
        print_table(["a"], [[1]])
        out = capsys.readouterr().out
        assert "a" in out and "1" in out
