"""Tests for bit-level encoders: round trips and cost honesty."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.comm.bits import (
    BitReader,
    BitWriter,
    bit_length,
    bitmap_cost,
    gamma_cost,
    uint_cost,
    uint_width,
)


class TestBitLength:
    def test_zero(self):
        assert bit_length(0) == 0

    def test_powers_of_two(self):
        for k in range(20):
            assert bit_length(1 << k) == k + 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length(-1)


class TestUintWidth:
    def test_zero_bound_needs_no_bits(self):
        assert uint_width(0) == 0

    def test_small_bounds(self):
        assert uint_width(1) == 1
        assert uint_width(2) == 2
        assert uint_width(3) == 2
        assert uint_width(4) == 3

    def test_cost_matches_width(self):
        for bound in range(0, 100):
            assert uint_cost(bound) == uint_width(bound)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uint_width(-3)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_width_suffices_for_all_values_up_to_bound(self, bound):
        width = uint_width(bound)
        assert bound.bit_length() <= width


class TestGammaCost:
    def test_known_values(self):
        assert gamma_cost(1) == 1
        assert gamma_cost(2) == 3
        assert gamma_cost(3) == 3
        assert gamma_cost(4) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gamma_cost(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_formula(self, value):
        assert gamma_cost(value) == 2 * (value.bit_length() - 1) + 1


class TestBitmapCost:
    def test_linear(self):
        assert bitmap_cost(0) == 0
        assert bitmap_cost(17) == 17

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitmap_cost(-1)


class TestWriterReaderRoundTrip:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_bits_round_trip(self, bits):
        writer = BitWriter()
        for b in bits:
            writer.write_bit(b)
        assert writer.to_bits() == bits
        reader = BitReader(writer.to_bits())
        assert [reader.read_bit() for _ in bits] == bits

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_uint_round_trip(self, value):
        width = max(value.bit_length(), 1)
        writer = BitWriter()
        writer.write_uint(value, width)
        assert len(writer) == width
        reader = BitReader(writer.to_bits())
        assert reader.read_uint(width) == value

    @given(st.integers(min_value=1, max_value=2**30))
    def test_gamma_round_trip_and_cost(self, value):
        writer = BitWriter()
        writer.write_gamma(value)
        assert len(writer) == gamma_cost(value)
        reader = BitReader(writer.to_bits())
        assert reader.read_gamma() == value

    @given(st.lists(st.booleans(), max_size=150))
    def test_bitmap_round_trip_and_cost(self, flags):
        writer = BitWriter()
        writer.write_bitmap(flags)
        assert len(writer) == bitmap_cost(len(flags))
        reader = BitReader(writer.to_bits())
        assert reader.read_bitmap(len(flags)) == flags

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=2**20), st.booleans()),
            max_size=40,
        )
    )
    def test_mixed_stream(self, items):
        writer = BitWriter()
        for value, flag in items:
            writer.write_gamma(value)
            writer.write_bit(1 if flag else 0)
        reader = BitReader(writer.to_bits())
        for value, flag in items:
            assert reader.read_gamma() == value
            assert reader.read_bit() == (1 if flag else 0)
        assert reader.remaining() == 0

    def test_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(8, 3)

    def test_read_past_end_raises(self):
        reader = BitReader([1])
        reader.read_bit()
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_to_bytes_pads_with_zeros(self):
        writer = BitWriter()
        writer.write_bitmap([True, False, True])
        assert writer.to_bytes() == bytes([0b10100000])
