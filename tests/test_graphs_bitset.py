"""Unit tests for the bitset graph backend.

The randomized mirror test drives a Graph and a BitsetGraph through the
same operation sequence and asserts every query agrees — the API-contract
complement to the protocol-level parity suite in
``test_backend_parity.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    BitsetGraph,
    GRAPH_BACKENDS,
    Graph,
    as_backend,
    gnp_random_graph,
    iter_bits,
)


def test_iter_bits_enumerates_increasing():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b1011)) == [0, 1, 3]
    big = (1 << 500) | (1 << 64) | 1
    assert list(iter_bits(big)) == [0, 64, 500]


def test_basic_construction_and_queries():
    g = BitsetGraph(5, [(0, 1), (1, 2), (3, 4)])
    assert g.n == 5 and g.m == 3
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)
    assert g.neighbors(1) == {0, 2}
    assert list(g.iter_neighbors(1)) == [0, 2]
    assert g.degree(1) == 2 and g.degree(3) == 1
    assert g.degrees() == [1, 2, 1, 1, 1]
    assert g.max_degree() == 2
    assert g.edge_list() == [(0, 1), (1, 2), (3, 4)]
    assert repr(g).startswith("BitsetGraph(")


def test_add_remove_edge_contract():
    g = BitsetGraph(3)
    assert g.add_edge(0, 1) is True
    assert g.add_edge(1, 0) is False  # already present
    with pytest.raises(ValueError):
        g.add_edge(0, 0)
    with pytest.raises(ValueError):
        g.add_edge(0, 3)
    g.remove_edge(0, 1)
    assert g.m == 0
    with pytest.raises(KeyError):
        g.remove_edge(0, 1)


def test_copy_is_independent():
    g = BitsetGraph(4, [(0, 1), (2, 3)])
    clone = g.copy()
    clone.remove_edge(0, 1)
    assert g.has_edge(0, 1) and not clone.has_edge(0, 1)
    assert g.m == 2 and clone.m == 1


def test_cross_backend_equality_and_conversion():
    edges = [(0, 1), (1, 2), (0, 3)]
    g = Graph(4, edges)
    b = as_backend(g, "bitset")
    assert isinstance(b, BitsetGraph)
    assert b == g and g == b
    assert as_backend(b, "bitset") is b
    back = as_backend(b, "set")
    assert type(back) is Graph and back == g
    with pytest.raises(ValueError):
        as_backend(g, "quantum")


def test_pack_and_neighbors_in():
    g = BitsetGraph(8, [(0, 1), (0, 2), (0, 5), (3, 4)])
    packed = g.pack_vertices([1, 5, 7])
    assert g.neighbors_in(0, packed) == [1, 5]
    assert g.neighbors_in(3, packed) == []


def test_neighbor_colors():
    g = BitsetGraph(5, [(0, 1), (0, 2), (0, 3)])
    assert g.neighbor_colors(0, {1: 7, 3: 9}) == {7, 9}
    assert g.neighbor_colors(4, {0: 1}) == set()


def test_induced_subgraph_keeps_vertex_range():
    g = BitsetGraph(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
    sub = g.induced_subgraph([1, 2, 3, 4])
    assert sub.n == 6
    assert sub.edge_list() == [(1, 2), (2, 3)]
    assert sub.m == 2


def test_is_independent_set():
    g = BitsetGraph(5, [(0, 1), (2, 3)])
    assert g.is_independent_set([0, 2, 4]) is True
    assert g.is_independent_set([0, 1]) is False


def test_union_and_subgraph_edges_preserve_backend():
    a = BitsetGraph(4, [(0, 1)])
    b = BitsetGraph(4, [(2, 3)])
    merged = a.union(b)
    assert isinstance(merged, BitsetGraph)
    assert merged.edge_list() == [(0, 1), (2, 3)]
    sub = merged.subgraph_edges([(0, 1)])
    assert isinstance(sub, BitsetGraph)
    assert sub.edge_list() == [(0, 1)]


def test_backend_registry():
    assert GRAPH_BACKENDS["set"] is Graph
    assert GRAPH_BACKENDS["bitset"] is BitsetGraph


def test_randomized_operation_mirror():
    """Both backends must agree on every query after any operation mix."""
    rng = random.Random(0xB175E7)
    for _ in range(10):
        n = rng.randint(1, 30)
        seed_graph = gnp_random_graph(n, rng.random() * 0.6, rng)
        g = seed_graph
        b = as_backend(seed_graph, "bitset")
        for _ in range(30):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if rng.random() < 0.5:
                assert g.add_edge(u, v) == b.add_edge(u, v)
            elif g.has_edge(u, v):
                g.remove_edge(u, v)
                b.remove_edge(u, v)
        assert b == g
        assert b.m == g.m
        assert b.degrees() == g.degrees()
        assert b.max_degree() == g.max_degree()
        assert b.edge_list() == g.edge_list()
        assert list(b.edges()) == list(g.edges())
        sample = [v for v in range(n) if rng.random() < 0.5]
        assert b.is_independent_set(sample) == g.is_independent_set(sample)
        assert b.induced_subgraph(sample) == g.induced_subgraph(sample)
        for v in range(n):
            assert list(b.iter_neighbors(v)) == list(g.iter_neighbors(v))
            assert b.neighbors(v) == g.neighbors(v)
            assert b.neighbors_in(v, b.pack_vertices(sample)) == g.neighbors_in(
                v, g.pack_vertices(sample)
            )


def test_degree_caches_invalidate_on_mutation():
    """degrees()/max_degree() memoize popcounts; mutation must drop them.

    Regression test: the caches were added because every max_degree()
    call repopcounted all n masks; a stale cache after add/remove_edge
    would silently corrupt Δ-dependent palette sizes.
    """
    g = BitsetGraph(5, [(0, 1), (1, 2)])
    assert g.degrees() == [1, 2, 1, 0, 0]
    assert g.max_degree() == 2
    g.add_edge(1, 3)
    g.add_edge(1, 4)
    assert g.degrees() == [1, 4, 1, 1, 1]
    assert g.max_degree() == 4
    g.remove_edge(1, 2)
    assert g.degrees() == [1, 3, 0, 1, 1]
    assert g.max_degree() == 3
    # The returned list is a defensive copy, not the cache itself.
    leaked = g.degrees()
    leaked[0] = 99
    assert g.degrees()[0] == 1
    # A copy carries the caches but invalidates independently.
    c = g.copy()
    c.add_edge(2, 3)
    assert c.max_degree() == 3 and c.degree(2) == 1
    assert g.max_degree() == 3 and g.degree(2) == 0
