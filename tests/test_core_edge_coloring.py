"""End-to-end tests for Theorems 2 & 3 and their building blocks."""

from __future__ import annotations


import pytest

from repro.core import (
    SMALL_DELTA_THRESHOLD,
    run_edge_coloring,
    run_zero_comm_edge_coloring,
)
from repro.core.edge_coloring import (
    defer_heavy_edges,
    party_palette,
    peel_heavy_matching,
    special_color,
)
from repro.graphs import (
    assert_proper_edge_coloring,
    barbell_of_stars,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    is_matching,
    partition_random,
    random_bipartite_regular,
    random_regular_graph,
    star_graph,
)

from .conftest import all_partitions


class TestPalettes:
    def test_disjoint_cover(self):
        delta = 10
        alice = set(party_palette("alice", delta))
        bob = set(party_palette("bob", delta))
        sp = special_color(delta)
        assert len(alice) == len(bob) == delta - 1
        assert not alice & bob
        assert sp not in alice | bob
        assert alice | bob | {sp} == set(range(1, 2 * delta))

    def test_rejects_unknown_role(self):
        with pytest.raises(ValueError):
            party_palette("carol", 5)


class TestDeferral:
    def test_deferred_subgraph_max_degree_two(self, rng):
        """Lemma 5.2 on random graphs."""
        for _ in range(30):
            g = gnp_random_graph(rng.randint(2, 30), rng.random(), rng)
            delta = g.max_degree()
            if delta < 2:
                continue
            remaining, deferred = defer_heavy_edges(g, delta - 1)
            counts: dict[int, int] = {}
            for u, v in deferred:
                counts[u] = counts.get(u, 0) + 1
                counts[v] = counts.get(v, 0) + 1
            assert all(c <= 2 for c in counts.values())
            # No remaining edge joins two high-degree vertices.
            for u, v in remaining.edges():
                assert (
                    remaining.degree(u) < delta - 1
                    or remaining.degree(v) < delta - 1
                )
            # Partition property: deferred + remaining = original.
            assert remaining.m + len(deferred) == g.m

    def test_clique_defers_heavily(self):
        g = complete_graph(6)
        remaining, deferred = defer_heavy_edges(g, 4)
        assert remaining.m + len(deferred) == 15


class TestPeeling:
    def test_peeled_set_is_matching_and_heavy_set_independent(self, rng):
        for _ in range(30):
            g = gnp_random_graph(rng.randint(2, 30), rng.random(), rng)
            delta = g.max_degree()
            if delta == 0:
                continue
            remaining, peeled = peel_heavy_matching(g, delta)
            assert is_matching(peeled)
            heavy = {
                v for v in remaining.vertices() if remaining.degree(v) == delta
            }
            assert remaining.is_independent_set(heavy)


class TestTheorem2:
    def test_random_graphs_all_partitions(self, rng):
        for trial in range(15):
            g = gnp_random_graph(rng.randint(2, 35), rng.random() * 0.7, rng)
            delta = g.max_degree()
            for part in all_partitions(g, rng):
                res = run_edge_coloring(part)
                assert set(res.alice_colors) == set(part.alice_edges)
                assert set(res.bob_colors) == set(part.bob_edges)
                assert_proper_edge_coloring(g, res.colors, max(2 * delta - 1, 1))

    def test_structured_families(self, rng):
        for g in (
            cycle_graph(9),
            star_graph(14),
            complete_graph(12),
            complete_bipartite(9, 9),
            grid_graph(4, 7),
            barbell_of_stars(8, 10),
            random_regular_graph(60, 12, rng),
            random_bipartite_regular(30, 9, rng),
        ):
            part = partition_random(g, rng)
            res = run_edge_coloring(part)
            assert_proper_edge_coloring(g, res.colors, 2 * g.max_degree() - 1)

    def test_constant_rounds(self, rng):
        for n in (64, 256):
            g = random_regular_graph(n, 10, rng)
            res = run_edge_coloring(partition_random(g, rng))
            assert res.rounds == 2  # Algorithm 2: exactly two exchanges

    def test_small_delta_single_round(self, rng):
        g = cycle_graph(20)
        res = run_edge_coloring(partition_random(g, rng))
        assert res.rounds <= 1
        assert_proper_edge_coloring(g, res.colors, 3)

    def test_matching_delta_one(self, rng):
        g = gnp_random_graph(10, 0.0, rng)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        res = run_edge_coloring(partition_random(g, rng))
        assert res.rounds == 0
        assert_proper_edge_coloring(g, res.colors, 1)

    def test_empty_graph(self, rng):
        g = gnp_random_graph(5, 0.0, rng)
        res = run_edge_coloring(partition_random(g, rng))
        assert res.colors == {}
        assert res.total_bits == 0

    def test_bits_linear_in_n(self, rng):
        per_vertex = []
        for n in (128, 256, 512):
            g = random_regular_graph(n, 10, rng)
            res = run_edge_coloring(partition_random(g, rng))
            per_vertex.append(res.total_bits / n)
        assert max(per_vertex) <= 2 * min(per_vertex) + 4

    def test_uses_at_most_required_palette(self, rng):
        g = random_regular_graph(40, SMALL_DELTA_THRESHOLD + 2, rng)
        res = run_edge_coloring(partition_random(g, rng))
        assert max(res.colors.values()) <= 2 * (SMALL_DELTA_THRESHOLD + 2) - 1


class TestTheorem3:
    def test_zero_communication_everywhere(self, rng):
        for trial in range(20):
            g = gnp_random_graph(rng.randint(2, 35), rng.random() * 0.7, rng)
            part = partition_random(g, rng)
            res = run_zero_comm_edge_coloring(part)
            assert res.total_bits == 0 and res.rounds == 0
            assert_proper_edge_coloring(g, res.colors, max(2 * g.max_degree(), 1))

    def test_each_party_colors_own_edges(self, rng):
        g = random_regular_graph(50, 7, rng)
        part = partition_random(g, rng)
        res = run_zero_comm_edge_coloring(part)
        assert set(res.alice_colors) == set(part.alice_edges)
        assert set(res.bob_colors) == set(part.bob_edges)

    def test_regular_graph_all_on_one_side(self, rng):
        from repro.graphs import partition_all_alice

        g = random_regular_graph(30, 6, rng)
        res = run_zero_comm_edge_coloring(partition_all_alice(g))
        assert_proper_edge_coloring(g, res.colors, 12)
