"""Tests for the buffered W-streaming colorer (space/colors trade-off)."""

from __future__ import annotations


import pytest

from repro.graphs import assert_proper_edge_coloring, gnp_random_graph, random_regular_graph
from repro.lowerbound import BufferedWStreamColorer, GreedyWStreamColorer, run_wstreaming


class TestBufferedColorer:
    def test_always_proper_any_capacity(self, rng):
        for _ in range(30):
            g = gnp_random_graph(rng.randint(2, 30), rng.random() * 0.7, rng)
            if g.m == 0:
                continue
            cap = rng.randint(1, g.m + 2)
            colors, _ = run_wstreaming(BufferedWStreamColorer(g.n, cap), g.edge_list())
            assert_proper_edge_coloring(g, colors)

    def test_single_flush_matches_offline_greedy_color_count(self, rng):
        g = random_regular_graph(40, 6, rng)
        colors, _ = run_wstreaming(
            BufferedWStreamColorer(g.n, g.m + 1), g.edge_list()
        )
        assert max(colors.values()) <= 2 * 6 - 1

    def test_tiny_buffer_blows_up_colors(self, rng):
        g = random_regular_graph(60, 8, rng)
        colors, _ = run_wstreaming(BufferedWStreamColorer(g.n, 2), g.edge_list())
        assert max(colors.values()) > 2 * 8 - 1

    def test_state_scales_with_capacity(self, rng):
        g = random_regular_graph(100, 8, rng)
        peaks = []
        for cap in (8, 64, 400):
            _, peak = run_wstreaming(BufferedWStreamColorer(g.n, cap), g.edge_list())
            peaks.append(peak)
        assert peaks == sorted(peaks)
        # Large buffers use less state than greedy's O(nΔ) only when the
        # capacity is below n·(2Δ−1)/(2·log n)-ish; at cap=8 it certainly is.
        _, greedy_peak = run_wstreaming(GreedyWStreamColorer(g.n, 8), g.edge_list())
        assert peaks[0] < greedy_peak

    def test_flush_boundaries_use_disjoint_palettes(self, rng):
        g = random_regular_graph(30, 4, rng)
        algo = BufferedWStreamColorer(g.n, 10)
        emitted: list[list[int]] = []
        batch: list[int] = []
        for edge in g.edge_list():
            out = list(algo.process(edge))
            if out:
                emitted.append([c for _, c in out])
        tail = [c for _, c in algo.finish()]
        if tail:
            emitted.append(tail)
        del batch
        for earlier, later in zip(emitted, emitted[1:]):
            assert max(earlier) < min(later)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BufferedWStreamColorer(5, 0)

    def test_empty_stream(self):
        colors, peak = run_wstreaming(BufferedWStreamColorer(5, 3), [])
        assert colors == {}
