"""Tests for the gather-and-Vizing (Δ+1)-edge coloring anchor."""

from __future__ import annotations

import math

from repro.baselines import run_vizing_gather
from repro.graphs import (
    assert_proper_edge_coloring,
    complete_graph,
    gnp_random_graph,
    partition_random,
    random_regular_graph,
)

from .conftest import all_partitions


class TestVizingGather:
    def test_colors_with_delta_plus_one(self, rng):
        for _ in range(15):
            g = gnp_random_graph(rng.randint(2, 25), rng.random() * 0.6, rng)
            part = partition_random(g, rng)
            res = run_vizing_gather(part)
            if g.m:
                assert_proper_edge_coloring(g, res.colors, g.max_degree() + 1)

    def test_partition_adversaries_agree(self, rng):
        g = complete_graph(9)
        for part in all_partitions(g, rng):
            res = run_vizing_gather(part)
            assert_proper_edge_coloring(g, res.colors, 9)

    def test_single_round(self, rng):
        g = random_regular_graph(40, 6, rng)
        res = run_vizing_gather(partition_random(g, rng))
        assert res.rounds == 1

    def test_bits_scale_with_m_log_n(self, rng):
        """The anchor's Θ(m log n) signature, vs Theorem 2's Θ(n)."""
        from repro.core import run_edge_coloring

        g = random_regular_graph(256, 12, rng)
        part = partition_random(g, rng)
        gather = run_vizing_gather(part)
        thm2 = run_edge_coloring(part)
        m = g.m
        assert gather.total_bits >= m  # at least one bit per edge
        assert gather.total_bits <= 4 * m * math.log2(256)
        assert gather.total_bits > 3 * thm2.total_bits

    def test_uses_fewer_colors_than_theorem2(self, rng):
        g = random_regular_graph(60, 10, rng)
        part = partition_random(g, rng)
        res = run_vizing_gather(part)
        assert max(res.colors.values()) <= 11  # Δ+1, not 2Δ−1
