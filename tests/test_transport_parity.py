"""Transport parity: all transports produce bit-for-bit identical transcripts.

A transport is only admissible if it is *observationally equivalent* on
the measurement instrument: same colorings, same transcript totals, same
per-phase stats, same round counts, on the same instances, under the same
seeds.  These tests run every registered scenario (smoke params) and the
full protocol/baseline stack across the lockstep, count-only, and strict
transports and compare everything — mirroring the backend parity suite.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    run_flin_mittal,
    run_greedy_binary_search,
    run_naive_exchange,
    run_one_round_sparsify,
    run_vizing_gather,
)
from repro.comm import TRANSPORTS
from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
    weaker_from_streaming,
)
from repro.engine import run_scenario, smoke_scenarios
from repro.graphs import (
    gnp_random_graph,
    partition_random,
    random_regular_graph,
)
from repro.lowerbound.wstreaming import (
    BufferedWStreamColorer,
    GreedyWStreamColorer,
)

ALL_TRANSPORTS = sorted(TRANSPORTS)


def _phase_view(transcript):
    """Per-phase stats as a comparable plain structure."""
    return {
        name: (stats.bits_alice_to_bob, stats.bits_bob_to_alice, stats.rounds)
        for name, stats in transcript.phases.items()
    }


def _partition(n=48, d=6, seed=17):
    rng = random.Random(seed)
    return partition_random(random_regular_graph(n, d, rng), rng)


@pytest.mark.parametrize(
    "scenario", smoke_scenarios(), ids=lambda s: s.name
)
def test_every_registered_scenario_is_transport_invariant(scenario):
    """Scenario records must agree across transports on every metric."""
    records = {
        t: run_scenario(scenario.with_transport(t)) for t in ALL_TRANSPORTS
    }
    reference = records["lockstep"]
    volatile = {"scenario", "transport", "wall_time_s"}
    for transport, record in records.items():
        assert record["valid"], (scenario.name, transport)
        stripped = {k: v for k, v in record.items() if k not in volatile}
        ref = {k: v for k, v in reference.items() if k not in volatile}
        assert stripped == ref, (scenario.name, transport)


def test_vertex_coloring_transport_parity():
    part = _partition()
    results = {
        t: run_vertex_coloring(part, seed=3, transport=t) for t in ALL_TRANSPORTS
    }
    reference = results["lockstep"]
    for transport, result in results.items():
        assert result.colors == reference.colors, transport
        assert result.transcript.summary() == reference.transcript.summary()
        assert _phase_view(result.transcript) == _phase_view(reference.transcript)
        assert result.leftover_size == reference.leftover_size
    # The count transport must skip the per-round log but nothing else.
    assert results["count"].transcript.round_log == []
    assert len(reference.transcript.round_log) == reference.rounds


def test_edge_coloring_transport_parity():
    rng = random.Random(5)
    part = partition_random(random_regular_graph(40, 9, rng), rng)
    results = {t: run_edge_coloring(part, transport=t) for t in ALL_TRANSPORTS}
    reference = results["lockstep"]
    for transport, result in results.items():
        assert result.colors == reference.colors, transport
        assert result.transcript.summary() == reference.transcript.summary()


def test_small_delta_edge_coloring_transport_parity():
    """The Lemma 5.1 bounded-degree path is also transport-invariant."""
    rng = random.Random(7)
    part = partition_random(random_regular_graph(24, 4, rng), rng)
    results = {t: run_edge_coloring(part, transport=t) for t in ALL_TRANSPORTS}
    reference = results["lockstep"]
    for result in results.values():
        assert result.colors == reference.colors
        assert result.transcript.summary() == reference.transcript.summary()


def test_zero_comm_transport_parity():
    part = _partition()
    for transport in ALL_TRANSPORTS:
        result = run_zero_comm_edge_coloring(part, transport=transport)
        assert result.total_bits == 0
        assert result.transcript.rounds == 0


@pytest.mark.parametrize(
    "runner",
    [
        run_naive_exchange,
        run_greedy_binary_search,
        run_vizing_gather,
        lambda part, transport: run_one_round_sparsify(
            part, seed=9, transport=transport
        ),
        lambda part, transport: run_flin_mittal(part, seed=9, transport=transport),
    ],
    ids=["naive", "greedy_binary_search", "vizing_gather", "one_round", "flin_mittal"],
)
def test_baseline_transport_parity(runner):
    part = _partition(n=32, d=5, seed=23)
    results = {t: runner(part, transport=t) for t in ALL_TRANSPORTS}
    reference = results["lockstep"]
    for transport, result in results.items():
        assert result.colors == reference.colors, transport
        assert result.transcript.summary() == reference.transcript.summary()


@pytest.mark.parametrize(
    "factory",
    [
        lambda part: lambda: GreedyWStreamColorer(part.n, part.max_degree),
        lambda part: lambda: BufferedWStreamColorer(part.n, 16),
    ],
    ids=["greedy", "buffered"],
)
def test_wstreaming_reduction_transport_parity(factory):
    rng = random.Random(31)
    part = partition_random(gnp_random_graph(30, 0.2, rng), rng)
    results = {
        t: weaker_from_streaming(part, factory(part), transport=t)
        for t in ALL_TRANSPORTS
    }
    reference = results["lockstep"]
    for transport, result in results.items():
        assert result.colors == reference.colors, transport
        assert result.transcript.summary() == reference.transcript.summary()
        # Communication still equals the streamed state size.
        assert result.transcript.bits_bob_to_alice == 0
