"""Tests for the ``repro.rand`` stream core.

The golden digests pin the exact PRF output so a refactor (or a platform
difference) that silently changes every seeded experiment in the repo
fails loudly here first.  Derivation-order independence is the contract
that makes parallel and sharded sweeps reproducible.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.rand import Stream, derived_random, mix64, stable_label_hash


def _digest(words) -> str:
    return hashlib.sha256(b"".join(w.to_bytes(8, "big") for w in words)).hexdigest()


class TestGoldenDigests:
    """Cross-process determinism: pinned hex digests of stream prefixes."""

    def test_seed_zero_prefix(self):
        s = Stream.from_seed(0)
        assert (
            _digest(s.next64() for _ in range(64))
            == "829b9ee04c80bff6a06eafb1f4350ab9091dda35eefb98bb5edb74879a25f102"
        )

    def test_seed_one_prefix(self):
        s = Stream.from_seed(1)
        assert (
            _digest(s.next64() for _ in range(64))
            == "e57bc42828833eee7b23012214b3f3244af4aacef7f5ca6dfc4ada371959a3ee"
        )

    def test_derived_prefix(self):
        d = Stream.from_seed(0).derive("golden", 7)
        assert d.key == 0x7758FEA7A1558A51
        assert (
            _digest(d.next64() for _ in range(64))
            == "453441fe7400124167519f5557970e96051569bbbeec84c761aa9c9957ecc4e3"
        )

    def test_fair_coin_prefix(self):
        bits = "".join("1" if b else "0" for b in Stream.from_seed(3).coins(40, 0.5))
        assert bits == "1011111101010111001110110111101001000010"

    def test_ints_prefix(self):
        assert Stream.from_seed(3).ints(10, 0, 99) == [
            71, 1, 63, 69, 94, 63, 14, 93, 30, 16,
        ]


class TestSharedStreamContract:
    """Equal keys => identical draws: the public-tape property."""

    def test_same_seed_agrees(self):
        a, b = Stream.from_seed(7), Stream.from_seed(7)
        assert [a.next64() for _ in range(100)] == [b.next64() for _ in range(100)]

    def test_different_seeds_diverge(self):
        a, b = Stream.from_seed(1), Stream.from_seed(2)
        assert [a.coin() for _ in range(64)] != [b.coin() for _ in range(64)]

    def test_negative_and_huge_seeds_are_masked_consistently(self):
        assert Stream.from_seed(-1).key == Stream.from_seed((1 << 64) - 1).key
        assert Stream.from_seed(5).key == Stream.from_seed(5 + (1 << 64)).key

    def test_none_seed_draws_fresh_entropy(self):
        # stdlib convention, and what the old random.Random tape did.
        assert Stream.from_seed(None).key != Stream.from_seed(None).key


class TestDeriveIndependence:
    """The order-independence contract (the old spawn bug, fixed)."""

    def test_derive_does_not_consume_parent_state(self):
        a, b = Stream.from_seed(9), Stream.from_seed(9)
        a.derive("x")
        a.derive("y", 3)
        assert a.counter == b.counter == 0
        assert [a.next64() for _ in range(10)] == [b.next64() for _ in range(10)]

    def test_sibling_order_does_not_matter(self):
        p1, p2 = Stream.from_seed(4), Stream.from_seed(4)
        x1, y1 = p1.derive("x"), p1.derive("y")
        y2, x2 = p2.derive("y"), p2.derive("x")
        assert (x1.key, y1.key) == (x2.key, y2.key)

    def test_derive_interleaved_with_draws(self):
        p = Stream.from_seed(4)
        before = p.derive("child").key
        p.next64()
        p.coins(100)
        assert p.derive("child").key == before

    def test_distinct_labels_distinct_streams(self):
        p = Stream.from_seed(0)
        keys = {
            p.derive(lab).key
            for lab in ["a", "b", "", 0, 1, -1, ("a", 0), ("a", 1), ("b",), "a-0"]
        }
        assert len(keys) == 10

    def test_label_path_matters(self):
        p = Stream.from_seed(0)
        assert p.derive("a", "b").key != p.derive("b", "a").key
        assert p.derive("a").derive("b").key != p.derive("a", "b").key

    def test_derive_matches_stable_label_hash_fold(self):
        # derive() inlines the int/str hashing for speed; it must agree
        # with the public stable_label_hash on every label type.
        p = Stream(0x123456789ABCDEF)
        for labels in [("rct", 3, 17), ("s",), (42,), (("t", 1), "u", -5)]:
            key = p.key ^ 0x1ABE1D05C0FFEE5
            for lab in labels:
                key = mix64(key ^ stable_label_hash(lab))
            assert p.derive(*labels).key == key, labels

    def test_bad_label_type_rejected(self):
        with pytest.raises(TypeError):
            Stream.from_seed(0).derive(3.14)


class TestDrawSemantics:
    def test_uniform_int_range_and_coverage(self):
        s = Stream.from_seed(0)
        values = {s.uniform_int(3, 6) for _ in range(200)}
        assert values == {3, 4, 5, 6}

    def test_uniform_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Stream.from_seed(0).uniform_int(5, 4)

    def test_coin_bias(self):
        s = Stream.from_seed(0)
        heads = sum(s.coins(2000, 0.9))
        assert heads > 1700

    def test_coin_extremes(self):
        s = Stream.from_seed(0)
        assert all(s.coins(100, 1.0))
        assert not any(s.coins(100, 0.0))

    def test_batch_matches_scalar_for_biased_coins(self):
        a, b = Stream.from_seed(11), Stream.from_seed(11)
        assert a.coins(200, 0.3) == [b.coin(0.3) for _ in range(200)]

    def test_fair_coins_pack_words(self):
        s = Stream.from_seed(11)
        out = s.coins(130, 0.5)
        assert len(out) == 130
        assert s.counter == 3  # ceil(130/64) words consumed
        assert 35 < sum(out) < 95

    def test_coins_empty(self):
        s = Stream.from_seed(0)
        assert s.coins(0) == [] and s.counter == 0

    def test_ints_empty_or_negative_k_consumes_nothing(self):
        s = Stream.from_seed(0)
        s.next64()
        assert s.ints(0, 0, 9) == []
        assert s.ints(-3, 0, 9) == []
        assert s.counter == 1  # no rewind, no replayed words

    def test_batch_ints_match_scalar(self):
        a, b = Stream.from_seed(13), Stream.from_seed(13)
        assert a.ints(100, -5, 5) == [b.uniform_int(-5, 5) for _ in range(100)]

    def test_choice_and_shuffled(self):
        s = Stream.from_seed(2)
        items = [10, 20, 30, 40, 50]
        assert s.choice(items) in items
        out = s.shuffled(items)
        assert sorted(out) == items and items == [10, 20, 30, 40, 50]
        with pytest.raises(IndexError):
            s.choice([])

    def test_random_unit_interval(self):
        s = Stream.from_seed(2)
        values = [s.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6


class TestDerivedRandom:
    def test_deterministic_and_label_separated(self):
        a = derived_random(5, "workload")
        b = derived_random(5, "workload")
        c = derived_random(5, "partition")
        first = a.random()
        assert first == b.random()
        assert first != c.random()

    def test_matches_stream_derive_random(self):
        assert (
            derived_random(5, "x").random()
            == Stream.from_seed(5).derive_random("x").random()
        )
