"""Tests for the weaker-(2Δ−1)-edge coloring problem (Theorem 5 object)."""

from __future__ import annotations

from repro.core import run_edge_coloring
from repro.core.weaker import (
    WeakerEdgeColoringResult,
    validate_weaker_result,
    weaker_from_streaming,
    weaker_from_strict,
)
from repro.graphs import gnp_random_graph, partition_random, random_regular_graph
from repro.lowerbound import GreedyWStreamColorer


class TestStrictToWeaker:
    def test_strict_results_are_valid_weaker_results(self, rng):
        for _ in range(10):
            g = gnp_random_graph(rng.randint(2, 30), rng.random() * 0.6, rng)
            part = partition_random(g, rng)
            weaker = weaker_from_strict(run_edge_coloring(part))
            assert validate_weaker_result(part, weaker) == []

    def test_transcript_carried_over(self, rng):
        g = random_regular_graph(40, 10, rng)
        part = partition_random(g, rng)
        strict = run_edge_coloring(part)
        weaker = weaker_from_strict(strict)
        assert weaker.total_bits == strict.total_bits


class TestStreamingToWeaker:
    def test_streaming_reduction_is_valid_weaker_result(self, rng):
        g = random_regular_graph(60, 8, rng)
        part = partition_random(g, rng)
        weaker = weaker_from_streaming(
            part, lambda: GreedyWStreamColorer(g.n, 8)
        )
        assert validate_weaker_result(part, weaker) == []
        # Communication = streaming state (the Corollary 1.2 bridge).
        assert weaker.total_bits == g.n * (2 * 8 - 1)

    def test_streaming_output_is_genuinely_weaker(self, rng):
        """The streamer colors edges in stream order, so whoever feeds an
        edge reports it — ownership may differ from the partition only in
        the strict sense, but coverage is exact and disjoint here."""
        g = random_regular_graph(40, 6, rng)
        part = partition_random(g, rng)
        weaker = weaker_from_streaming(
            part, lambda: GreedyWStreamColorer(g.n, 6)
        )
        reported = set(weaker.alice_reports) | set(weaker.bob_reports)
        assert reported == set(g.edges())


class TestValidator:
    def make_valid(self, rng):
        g = random_regular_graph(30, 6, rng)
        part = partition_random(g, rng)
        return part, weaker_from_strict(run_edge_coloring(part))

    def test_detects_unreported_edge(self, rng):
        part, weaker = self.make_valid(rng)
        victim = next(iter(weaker.alice_reports))
        del weaker.alice_reports[victim]
        assert any("unreported" in p for p in validate_weaker_result(part, weaker))

    def test_detects_phantom_edge(self, rng):
        part, weaker = self.make_valid(rng)
        non_edge = next(
            (u, v)
            for u in part.graph.vertices()
            for v in part.graph.vertices()
            if u < v and not part.graph.has_edge(u, v)
        )
        weaker.bob_reports[non_edge] = 1
        assert any("non-edges" in p for p in validate_weaker_result(part, weaker))

    def test_detects_disagreement(self, rng):
        part, weaker = self.make_valid(rng)
        edge, color = next(iter(weaker.alice_reports.items()))
        weaker.bob_reports[edge] = color + 1
        assert any("disagree" in p for p in validate_weaker_result(part, weaker))

    def test_detects_conflict(self, rng):
        part, weaker = self.make_valid(rng)
        v = 0
        neigh = sorted(part.graph.neighbors(v))
        e1 = (min(v, neigh[0]), max(v, neigh[0]))
        e2 = (min(v, neigh[1]), max(v, neigh[1]))
        merged = weaker.colors
        side = weaker.alice_reports if e1 in weaker.alice_reports else weaker.bob_reports
        side[e1] = merged[e2]
        assert any("share color" in p for p in validate_weaker_result(part, weaker))

    def test_detects_out_of_palette(self, rng):
        part, weaker = self.make_valid(rng)
        edge = next(iter(weaker.alice_reports))
        weaker.alice_reports[edge] = 999
        assert any("palette" in p for p in validate_weaker_result(part, weaker))

    def test_cross_party_report_is_legal(self, rng):
        """The defining relaxation: Alice may report Bob's edge."""
        part, weaker = self.make_valid(rng)
        bob_edge = next(iter(weaker.bob_reports))
        color = weaker.bob_reports.pop(bob_edge)
        weaker.alice_reports[bob_edge] = color
        assert validate_weaker_result(part, weaker) == []

    def test_duplicate_agreeing_reports_are_legal(self, rng):
        part, weaker = self.make_valid(rng)
        bob_edge, color = next(iter(weaker.bob_reports.items()))
        weaker.alice_reports[bob_edge] = color
        assert validate_weaker_result(part, weaker) == []

    def test_result_type_merges(self, rng):
        part, weaker = self.make_valid(rng)
        assert isinstance(weaker, WeakerEdgeColoringResult)
        assert set(weaker.colors) == set(part.graph.edges())
