"""End-to-end tests for the Theorem 1 (Δ+1)-vertex coloring protocol."""

from __future__ import annotations

import math

from repro.core import run_vertex_coloring
from repro.graphs import (
    assert_proper_vertex_coloring,
    c4_gadget_union,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    partition_all_alice,
    partition_random,
    path_graph,
    random_regular_graph,
    star_graph,
)

from .conftest import all_partitions


class TestCorrectness:
    def test_random_graphs_random_partitions(self, rng):
        for trial in range(25):
            g = gnp_random_graph(rng.randint(2, 45), rng.random() * 0.6, rng)
            part = partition_random(g, rng)
            res = run_vertex_coloring(part, seed=trial)
            assert_proper_vertex_coloring(g, res.colors, g.max_degree() + 1)

    def test_partition_adversaries(self, rng):
        g = gnp_random_graph(30, 0.35, rng)
        for idx, part in enumerate(all_partitions(g, rng)):
            res = run_vertex_coloring(part, seed=idx)
            assert_proper_vertex_coloring(g, res.colors, g.max_degree() + 1)

    def test_structured_families(self, rng):
        for g in (
            path_graph(17),
            cycle_graph(11),
            star_graph(12),
            complete_graph(9),
            grid_graph(5, 6),
            c4_gadget_union([0, 1, 1, 0, 1]),
        ):
            part = partition_random(g, rng)
            res = run_vertex_coloring(part, seed=1)
            assert_proper_vertex_coloring(g, res.colors, g.max_degree() + 1)

    def test_edgeless_graph(self, rng):
        g = gnp_random_graph(10, 0.0, rng)
        res = run_vertex_coloring(partition_random(g, rng), seed=0)
        assert res.colors == {v: 1 for v in range(10)}
        assert res.total_bits == 0 and res.rounds == 0

    def test_single_vertex(self, rng):
        g = gnp_random_graph(1, 0.0, rng)
        res = run_vertex_coloring(partition_random(g, rng), seed=0)
        assert res.colors == {0: 1}

    def test_one_sided_partition(self, rng):
        g = complete_graph(8)
        res = run_vertex_coloring(partition_all_alice(g), seed=2)
        assert_proper_vertex_coloring(g, res.colors, 8)

    def test_seed_determinism(self, rng):
        g = gnp_random_graph(25, 0.3, rng)
        part = partition_random(g, rng)
        a = run_vertex_coloring(part, seed=9)
        b = run_vertex_coloring(part, seed=9)
        assert a.colors == b.colors
        assert a.total_bits == b.total_bits
        assert a.rounds == b.rounds


class TestLeftoverPath:
    def test_forced_leftover_goes_through_d1lc(self, rng):
        """Capping the trial iterations forces the D1LC phase to run."""
        g = random_regular_graph(200, 8, rng)
        part = partition_random(g, rng)
        res = run_vertex_coloring(part, seed=4, max_trial_iterations=2)
        assert res.leftover_size > 0
        assert_proper_vertex_coloring(g, res.colors, 9)
        assert res.transcript.phase_stats("d1lc_leftover").rounds > 0

    def test_zero_iterations_is_pure_d1lc(self, rng):
        g = gnp_random_graph(25, 0.3, rng)
        part = partition_random(g, rng)
        res = run_vertex_coloring(part, seed=4, max_trial_iterations=0)
        assert res.leftover_size == g.n
        assert_proper_vertex_coloring(g, res.colors, g.max_degree() + 1)


class TestCostShape:
    def test_bits_linear_in_n(self, rng):
        """Theorem 1: O(n) expected bits — per-vertex cost roughly flat."""
        per_vertex = []
        for n in (128, 256, 512, 1024):
            g = random_regular_graph(n, 8, rng)
            res = run_vertex_coloring(partition_random(g, rng), seed=11)
            per_vertex.append(res.total_bits / n)
        assert max(per_vertex) <= 2.5 * min(per_vertex)

    def test_rounds_polyloglog(self, rng):
        """Theorem 1: O(log log n · log Δ) rounds worst case."""
        for n in (256, 1024):
            g = random_regular_graph(n, 8, rng)
            res = run_vertex_coloring(partition_random(g, rng), seed=11)
            bound = 40 * math.log2(math.log2(n)) * math.log2(9)
            assert res.rounds <= bound

    def test_rounds_grow_sublinearly(self, rng):
        rounds = []
        for n in (128, 1024):
            g = random_regular_graph(n, 8, rng)
            res = run_vertex_coloring(partition_random(g, rng), seed=11)
            rounds.append(res.rounds)
        # An 8x increase in n must not translate into anything close to an
        # 8x increase in rounds (that would be FM25 behavior).
        assert rounds[1] <= 2 * rounds[0] + 10
