"""Backend parity: protocols produce identical results on every backend.

An alternative graph backend (bitset, csr) is only admissible if it is
*observationally equivalent* to the reference dict-of-sets graph: same
colorings, same transcripts (bits and rounds), on the same instances,
under the same seeds.  These tests run the full protocol stack on
converted copies of one instance and compare everything.
"""

from __future__ import annotations

import random

import pytest

from repro.coloring import (
    fournier_edge_coloring,
    greedy_edge_coloring,
    greedy_vertex_coloring,
    vizing_edge_coloring,
)
from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.graphs import (
    PARTITIONERS,
    as_backend,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    partition_random,
    random_regular_graph,
)


#: Every non-reference backend must match the reference "set" graph.
ALT_BACKENDS = ("bitset", "csr")


def _pair(graph, rng, backend):
    part = partition_random(graph, rng)
    return part, part.astype(backend)


WORKLOADS = [
    ("regular-64-8", lambda rng: random_regular_graph(64, 8, rng)),
    ("gnp-48", lambda rng: gnp_random_graph(48, 0.15, rng)),
    ("grid-8x8", lambda rng: grid_graph(8, 8)),
    ("hypercube-5", lambda rng: hypercube_graph(5)),
]


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_vertex_coloring_parity(name, builder, backend):
    rng = random.Random(11)
    part, bpart = _pair(builder(rng), rng, backend)
    a = run_vertex_coloring(part, seed=3)
    b = run_vertex_coloring(bpart, seed=3)
    assert a.colors == b.colors
    assert a.total_bits == b.total_bits
    assert a.rounds == b.rounds
    assert a.leftover_size == b.leftover_size


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_edge_coloring_parity(name, builder, backend):
    rng = random.Random(22)
    part, bpart = _pair(builder(rng), rng, backend)
    a = run_edge_coloring(part)
    b = run_edge_coloring(bpart)
    assert a.colors == b.colors
    assert a.total_bits == b.total_bits
    assert a.rounds == b.rounds


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_zero_comm_parity(name, builder, backend):
    rng = random.Random(33)
    part, bpart = _pair(builder(rng), rng, backend)
    a = run_zero_comm_edge_coloring(part)
    b = run_zero_comm_edge_coloring(bpart)
    assert a.colors == b.colors
    assert a.total_bits == 0 and b.total_bits == 0


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("scheme", sorted(PARTITIONERS))
def test_partitioner_parity(scheme, backend):
    """Partitioners must produce the same edge split on every backend.

    This pins the sorted-``edges()`` contract: partition_random draws one
    public coin per edge in iteration order.
    """
    graph = random_regular_graph(40, 6, random.Random(7))
    alt_graph = as_backend(graph, backend)
    a = PARTITIONERS[scheme](graph, random.Random(99))
    b = PARTITIONERS[scheme](alt_graph, random.Random(99))
    assert set(a.alice_edges) == set(b.alice_edges)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_local_coloring_algorithms_parity(backend):
    rng = random.Random(44)
    graph = gnp_random_graph(40, 0.2, rng)
    alt_graph = as_backend(graph, backend)

    assert greedy_vertex_coloring(graph) == greedy_vertex_coloring(alt_graph)
    assert greedy_edge_coloring(graph) == greedy_edge_coloring(alt_graph)
    assert vizing_edge_coloring(graph) == vizing_edge_coloring(alt_graph)

    # Fournier needs independent max-degree vertices.
    from .conftest import make_fournier_instance

    instance = make_fournier_instance(30, 0.25, random.Random(55))
    assert fournier_edge_coloring(instance) == fournier_edge_coloring(
        as_backend(instance, backend)
    )
