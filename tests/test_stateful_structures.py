"""Stateful (rule-based) hypothesis tests for the mutable core structures.

These machines hammer :class:`Graph` and :class:`EdgeColoringState` with
arbitrary interleavings of operations, checking representation invariants
after every step — the strongest guard against subtle state corruption in
the structures every protocol mutates constantly.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.coloring import EdgeColoringState
from repro.graphs import Graph

N = 8
PALETTE = 5


class GraphMachine(RuleBasedStateMachine):
    """Graph vs a trivial reference model (a set of canonical edges)."""

    def __init__(self):
        super().__init__()
        self.graph = Graph(N)
        self.model: set[tuple[int, int]] = set()

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def add_edge(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        added = self.graph.add_edge(u, v)
        assert added == (edge not in self.model)
        self.model.add(edge)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def remove_edge_if_present(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        if edge in self.model:
            self.graph.remove_edge(u, v)
            self.model.discard(edge)

    @invariant()
    def edges_match_model(self):
        assert set(self.graph.edges()) == self.model
        assert self.graph.m == len(self.model)

    @invariant()
    def degrees_match_model(self):
        for v in range(N):
            expected = sum(1 for e in self.model if v in e)
            assert self.graph.degree(v) == expected

    @invariant()
    def handshake(self):
        assert sum(self.graph.degrees()) == 2 * self.graph.m


class EdgeColoringMachine(RuleBasedStateMachine):
    """EdgeColoringState under assign/unassign/recolor/Kempe inversions."""

    def __init__(self):
        super().__init__()
        self.state = EdgeColoringState(N, PALETTE)
        self.model: dict[tuple[int, int], int] = {}

    def _free_pairs(self):
        pairs = []
        for u in range(N):
            for v in range(u + 1, N):
                if (u, v) in self.model:
                    continue
                shared = [
                    c
                    for c in range(1, PALETTE + 1)
                    if self.state.is_free(u, c) and self.state.is_free(v, c)
                ]
                if shared:
                    pairs.append((u, v, shared))
        return pairs

    @rule(data=st.data())
    def assign_some_edge(self, data):
        pairs = self._free_pairs()
        if not pairs:
            return
        u, v, shared = data.draw(st.sampled_from(pairs))
        color = data.draw(st.sampled_from(shared))
        self.state.assign(u, v, color)
        self.model[(u, v)] = color

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def unassign_some_edge(self, data):
        edge = data.draw(st.sampled_from(sorted(self.model)))
        color = self.state.unassign(*edge)
        assert color == self.model.pop(edge)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def kempe_invert(self, data):
        start = data.draw(st.integers(0, N - 1))
        alpha = data.draw(st.integers(1, PALETTE))
        beta = data.draw(st.integers(1, PALETTE))
        if alpha == beta:
            return
        if not self.state.is_free(start, alpha) and not self.state.is_free(
            start, beta
        ):
            return
        self.state.invert_kempe_path(start, alpha, beta)
        self.model = dict(self.state.colors())

    @invariant()
    def colors_match_model(self):
        assert self.state.colors() == self.model

    @invariant()
    def properness(self):
        at_vertex: dict[int, set[int]] = {v: set() for v in range(N)}
        for (u, v), color in self.model.items():
            assert color not in at_vertex[u]
            assert color not in at_vertex[v]
            at_vertex[u].add(color)
            at_vertex[v].add(color)

    @invariant()
    def lookup_consistency(self):
        for (u, v), color in self.model.items():
            assert self.state.color_of(u, v) == color
            assert self.state.neighbor_via(u, color) == v
            assert self.state.neighbor_via(v, color) == u


TestGraphMachine = GraphMachine.TestCase
TestGraphMachine.settings = settings(max_examples=30, stateful_step_count=40, deadline=None)

TestEdgeColoringMachine = EdgeColoringMachine.TestCase
TestEdgeColoringMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
