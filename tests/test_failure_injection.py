"""Failure-injection tests: corrupted outputs and broken schedules are caught.

The library's safety story rests on two layers: independent validators
(``repro.graphs.validation``) that re-check definitions from scratch, and
the lockstep runner's desync detection.  These tests corrupt real protocol
outputs and real schedules and assert the layers fire.
"""

from __future__ import annotations


import pytest

from repro.comm import Msg, ProtocolDesyncError, run_protocol
from repro.core import (
    build_cover_message,
    decode_cover_message,
    run_edge_coloring,
    run_vertex_coloring,
)
from repro.graphs import (
    gnp_random_graph,
    is_proper_edge_coloring,
    is_proper_vertex_coloring,
    partition_random,
    random_regular_graph,
)
from repro.lowerbound import decode_bit, gadget_partition


def corrupt_one(mapping, rng):
    """Flip one entry's color to a colliding neighbor color if possible."""
    key = rng.choice(sorted(mapping))
    corrupted = dict(mapping)
    corrupted[key] = corrupted[key] + 1
    return corrupted


class TestValidatorsCatchCorruption:
    def test_vertex_coloring_corruption_detected(self, rng):
        g = random_regular_graph(40, 6, rng)
        part = partition_random(g, rng)
        res = run_vertex_coloring(part, seed=1)
        assert is_proper_vertex_coloring(g, res.colors, 7)
        # Set a vertex to a neighbor's color: must be detected.
        v = next(iter(g.vertices()))
        u = next(iter(g.neighbors(v)))
        bad = dict(res.colors)
        bad[v] = bad[u]
        assert not is_proper_vertex_coloring(g, bad, 7)

    def test_edge_coloring_corruption_detected(self, rng):
        g = random_regular_graph(40, 9, rng)
        part = partition_random(g, rng)
        res = run_edge_coloring(part)
        colors = res.colors
        assert is_proper_edge_coloring(g, colors, 17)
        # Copy a color across two incident edges.
        v = max(g.vertices(), key=g.degree)
        neigh = sorted(g.neighbors(v))
        e1 = tuple(sorted((v, neigh[0])))
        e2 = tuple(sorted((v, neigh[1])))
        bad = dict(colors)
        bad[e1] = bad[e2]
        assert not is_proper_edge_coloring(g, bad, 17)

    def test_out_of_palette_detected(self, rng):
        g = gnp_random_graph(10, 0.5, rng)
        part = partition_random(g, rng)
        res = run_vertex_coloring(part, seed=2)
        bad = dict(res.colors)
        bad[0] = g.max_degree() + 99
        assert not is_proper_vertex_coloring(g, bad, g.max_degree() + 1)

    def test_gadget_decoder_rejects_corruption(self, rng):
        part = gadget_partition([1, 0, 1])
        res = run_vertex_coloring(part, seed=3)
        bad = dict(res.colors)
        bad[0] = bad[1]  # collapse an always-present edge {a, b}
        with pytest.raises(ValueError):
            decode_bit(bad, 0)


class TestCoverMessageTampering:
    def test_truncated_message_detected(self, rng):
        palette = [1, 2, 3, 4, 5]
        vertices = list(range(12))
        available = {v: set(palette) for v in vertices}
        msg = build_cover_message(vertices, available, palette)
        from repro.core import CoverMessage

        truncated = CoverMessage(msg.colors[:-1], msg.bitmaps[:-1], msg.nbits)
        if len(msg.colors) == 1:
            # Single-round cover: truncation empties it; decoding must
            # report uncovered vertices.
            with pytest.raises(ValueError):
                decode_cover_message(vertices, truncated)
        else:
            with pytest.raises(ValueError):
                decode_cover_message(vertices, truncated)

    def test_wrong_audience_detected(self, rng):
        palette = [1, 2, 3]
        vertices = [0, 1, 2]
        available = {v: {1, 2, 3} for v in vertices}
        msg = build_cover_message(vertices, available, palette)
        with pytest.raises(ValueError):
            decode_cover_message([0, 1], msg)


class TestScheduleBreakage:
    def test_party_stopping_early_is_detected(self):
        def chatty():
            yield Msg(1, "a")
            yield Msg(1, "b")
            return "done"

        def quiet():
            yield Msg(1, "x")
            return "done"

        with pytest.raises(ProtocolDesyncError):
            run_protocol(chatty(), quiet())

    def test_exception_in_party_propagates(self):
        def fine():
            yield Msg(1, None)
            return 0

        def broken():
            yield Msg(1, None)
            raise RuntimeError("injected fault")

        with pytest.raises(RuntimeError, match="injected fault"):
            run_protocol(fine(), broken())

    def test_mismatched_public_seeds_detected_by_driver(self, rng):
        """The Theorem 1 driver cross-checks the parties' outputs; feeding
        parties different public tapes must be caught, not silently
        accepted."""
        from repro.rand import Stream
        from repro.core import random_color_trial_party

        g = random_regular_graph(30, 4, rng)
        part = partition_random(g, rng)
        with pytest.raises(Exception):
            # Different seeds → different awake sets → either a desync,
            # a protocol error, or (caught downstream) disagreeing colors.
            (a_colors, a_active), (b_colors, b_active), _ = run_protocol(
                random_color_trial_party(part.alice_graph, 5, Stream.from_seed(1)),
                random_color_trial_party(part.bob_graph, 5, Stream.from_seed(2)),
            )
            if a_colors != b_colors or a_active != b_active:
                raise AssertionError("parties disagree")
