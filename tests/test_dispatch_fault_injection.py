"""Fault-injection tests for ``repro dispatch``.

Each test here wounds the dispatcher in a specific way — a worker
SIGKILLed mid-shard, a torn journal tail, a hung straggler, the
coordinator itself dying between merges — and then asserts the headline
invariant: the final ``sweep.json`` is **bit-for-bit** identical to a
serial ``repro sweep`` over the same grid.  Not "equivalent", not
"same records": identical bytes.

The injection vehicle is :class:`ScriptedExecutor`, a
:class:`~repro.dispatch.LocalExecutor` that can replace chosen
``(shard, attempt)`` launches with a wrapper process running the real
sweep CLI in a daemon thread and then, once at least one scenario is
journaled, either SIGKILLing itself (a deterministic mid-shard crash)
or hanging forever (a deterministic straggler).  Determinism matters:
the faults land at a journal-visible instant every run, so these tests
cannot pass by the fault silently failing to fire.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dispatch import (
    Coordinator,
    DispatchConfig,
    DispatchError,
    LocalExecutor,
    Manifest,
    WorkerHandle,
)
from repro.engine import iter_scenarios, smoke_scenarios, sweep, write_results

SELECTION = ["--smoke", "--filter", "edge_zero_comm", "--transport", "lockstep"]


@pytest.fixture(autouse=True)
def _src_on_worker_path(monkeypatch):
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        merged = f"{src}{os.pathsep}{existing}" if existing else src
        monkeypatch.setenv("PYTHONPATH", merged)


def _grid():
    return list(
        iter_scenarios(
            smoke_scenarios(), pattern="edge_zero_comm", transport="lockstep"
        )
    )


def _serial_bytes(tmp_path: Path) -> bytes:
    json_path, _ = write_results(sweep(_grid(), jobs=1), tmp_path / "serial")
    return json_path.read_bytes()


# The wrapper run in place of a real worker for wrapped (shard, attempt)
# pairs.  It drives the genuine ``repro sweep`` CLI in a daemon thread,
# waits until the shard journal holds at least one complete line (so the
# fault provably lands *mid-shard*, with journaled work to resume), then
# either SIGKILLs itself or hangs.
_WRAPPER = """
import os, signal, sys, threading, time

mode = sys.argv[1]
args = sys.argv[2:]
journal = os.path.join(args[args.index("--out") + 1], "journal.jsonl")

def journal_lines():
    try:
        with open(journal, "rb") as handle:
            return handle.read().count(b"\\n")
    except OSError:
        return 0

import repro.__main__ as cli
threading.Thread(target=cli.main, args=(["sweep", *args],), daemon=True).start()
while journal_lines() < 1:
    time.sleep(0.005)
if mode == "selfkill":
    os.kill(os.getpid(), signal.SIGKILL)
time.sleep(600)
"""


class ScriptedExecutor(LocalExecutor):
    """A local executor that can sabotage chosen (shard, attempt) launches."""

    def __init__(self) -> None:
        super().__init__()
        self.wrap: dict[tuple[int, int], str] = {}  # (shard, attempt) -> mode
        self.launched: list[tuple[int, int, list[str]]] = []
        self.handles: list[WorkerHandle] = []

    def launch(self, shard_id, attempt, sweep_args, log_path):
        self.launched.append((shard_id, attempt, list(sweep_args)))
        mode = self.wrap.get((shard_id, attempt))
        if mode is None:
            handle = super().launch(shard_id, attempt, sweep_args, log_path)
        else:
            log_path.parent.mkdir(parents=True, exist_ok=True)
            with log_path.open("ab") as log:
                process = subprocess.Popen(
                    [sys.executable, "-c", _WRAPPER, mode, *sweep_args],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    stdin=subprocess.DEVNULL,
                )
            handle = WorkerHandle(
                shard_id=shard_id, attempt=attempt, process=process
            )
        self.handles.append(handle)
        return handle


def _coordinator(
    tmp_path: Path,
    executor,
    config: DispatchConfig,
    resume: bool = False,
    progress: list[str] | None = None,
) -> Coordinator:
    return Coordinator(
        _grid(),
        SELECTION,
        work_dir=tmp_path / "work",
        out_dir=tmp_path / "out",
        executor=executor,
        config=config,
        progress=progress.append if progress is not None else None,
        resume=resume,
    )


def _biggest_shard(coordinator: Coordinator):
    return max(coordinator.manifest.shards, key=lambda s: len(s.scenarios))


def test_worker_sigkill_mid_shard_resumes_and_matches_serial(tmp_path):
    executor = ScriptedExecutor()
    progress: list[str] = []
    coordinator = _coordinator(
        tmp_path,
        executor,
        DispatchConfig(workers=2, shards=2, backoff=0.05),
        progress=progress,
    )
    victim = _biggest_shard(coordinator)
    assert len(victim.scenarios) >= 2  # the kill must leave work undone
    executor.wrap[(victim.shard_id, 1)] = "selfkill"

    _, json_path, _ = coordinator.run()

    assert json_path.read_bytes() == _serial_bytes(tmp_path)
    assert victim.attempts == 2
    assert any("journal-resumed" in m for m in progress)
    # Attempt 1 of a fresh dispatch starts clean; the post-kill retry
    # must replay the journal instead of redoing the whole shard.
    args_by_attempt = {
        (sid, attempt): args for sid, attempt, args in executor.launched
    }
    assert "--resume" not in args_by_attempt[(victim.shard_id, 1)]
    assert "--resume" in args_by_attempt[(victim.shard_id, 2)]
    # The wounded attempt journaled at least one scenario before dying.
    journal = coordinator.shard_dir(victim.shard_id) / "journal.jsonl"
    assert journal.exists()


def test_inject_kill_hook_fires_and_output_matches_serial(tmp_path):
    # The --inject-kill CI hook: hang the victim's first attempt after it
    # journals one scenario so the coordinator deterministically observes
    # a mid-flight worker to SIGKILL.
    executor = ScriptedExecutor()
    progress: list[str] = []
    config = DispatchConfig(workers=2, shards=2, backoff=0.05)
    coordinator = _coordinator(tmp_path, executor, config, progress=progress)
    victim = _biggest_shard(coordinator)
    executor.wrap[(victim.shard_id, 1)] = "hang"
    # --inject-kill K names the Kth live shard, not a raw shard id.
    config.inject_kill = coordinator.manifest.shards.index(victim) + 1

    _, json_path, _ = coordinator.run()

    assert json_path.read_bytes() == _serial_bytes(tmp_path)
    assert any("injected SIGKILL" in m for m in progress)
    assert victim.attempts == 2


def test_straggler_timeout_triggers_journal_resumed_redispatch(tmp_path):
    executor = ScriptedExecutor()
    progress: list[str] = []
    coordinator = _coordinator(
        tmp_path,
        executor,
        DispatchConfig(workers=2, shards=2, backoff=0.05, timeout=2.0),
        progress=progress,
    )
    victim = _biggest_shard(coordinator)
    executor.wrap[(victim.shard_id, 1)] = "hang"

    _, json_path, _ = coordinator.run()

    assert json_path.read_bytes() == _serial_bytes(tmp_path)
    assert any("straggler timeout" in m for m in progress)
    assert victim.attempts == 2
    # The straggler was killed, not left running.
    hung = next(h for h in executor.handles if h.attempt == 1
                and h.shard_id == victim.shard_id)
    assert hung.process.poll() is not None


def test_torn_journal_tail_is_dropped_on_resume(tmp_path):
    # Complete a dispatch, then rewind one shard to the state a crash
    # leaves behind: status "running", document gone, journal ending in a
    # torn (newline-less, half-written) line.  Resume must replay the
    # intact prefix, drop the torn tail, and still match serial bytes.
    coordinator = _coordinator(
        tmp_path, LocalExecutor(), DispatchConfig(workers=2, shards=2)
    )
    _, json_path, _ = coordinator.run()
    serial = _serial_bytes(tmp_path)
    assert json_path.read_bytes() == serial

    manifest = Manifest.load(tmp_path / "work" / "dispatch.json")
    victim = max(manifest.shards, key=lambda s: len(s.scenarios))
    shard_dir = tmp_path / "work" / f"shard-{victim.shard_id:03d}"
    journal = shard_dir / "journal.jsonl"
    lines = journal.read_bytes().splitlines(keepends=True)
    assert len(lines) >= 2
    journal.write_bytes(lines[0] + lines[1][: len(lines[1]) // 2])
    (shard_dir / "sweep.json").unlink()
    victim.status = "running"
    manifest.complete = False
    manifest.save()
    json_path.unlink()

    progress: list[str] = []
    resumed = _coordinator(
        tmp_path,
        LocalExecutor(),
        DispatchConfig(workers=2, shards=2),
        resume=True,
        progress=progress,
    )
    _, json_path2, _ = resumed.run()

    assert json_path2.read_bytes() == serial
    assert resumed.launches == 1  # only the wounded shard reran
    assert any("already complete" in m for m in progress)
    # The rerun worker rewrote the journal with complete lines only.
    assert journal.read_bytes().endswith(b"\n")


def test_coordinator_crash_between_merges_then_resume(tmp_path):
    # Kill the coordinator (via the abort_after_merges hook) right after
    # the first shard document folds into the merge tree, while other
    # workers are still running.
    executor = ScriptedExecutor()
    config = DispatchConfig(workers=2, shards=3, abort_after_merges=1)
    coordinator = _coordinator(tmp_path, executor, config)
    total = len(coordinator.manifest.shards)

    with pytest.raises(DispatchError, match="abort_after_merges"):
        coordinator.run()

    # Clean shutdown: every launched worker was reaped on the way out.
    assert executor.handles
    assert all(h.process.poll() is not None for h in executor.handles)
    manifest = Manifest.load(tmp_path / "work" / "dispatch.json")
    done = [s for s in manifest.shards if s.status == "done"]
    assert len(done) == 1
    assert not manifest.complete
    assert not (tmp_path / "out" / "sweep.json").exists()

    progress: list[str] = []
    resumed = _coordinator(
        tmp_path,
        ScriptedExecutor(),
        DispatchConfig(workers=2, shards=3),
        resume=True,
        progress=progress,
    )
    _, json_path, _ = resumed.run()

    assert json_path.read_bytes() == _serial_bytes(tmp_path)
    # The merged shard was never relaunched: its document reloaded from
    # disk, and only the interrupted shards ran again.
    assert resumed.launches == total - 1
    assert any("already complete" in m for m in progress)
    assert Manifest.load(tmp_path / "work" / "dispatch.json").complete


def test_resume_with_changed_selection_is_refused(tmp_path):
    coordinator = _coordinator(
        tmp_path, LocalExecutor(), DispatchConfig(workers=1, shards=2)
    )
    coordinator.run()
    with pytest.raises(DispatchError, match="does not match"):
        Coordinator(
            _grid(),
            SELECTION,
            work_dir=tmp_path / "work",
            out_dir=tmp_path / "out",
            executor=LocalExecutor(),
            config=DispatchConfig(workers=1, shards=2, reps=3),  # reps changed
            resume=True,
        )
