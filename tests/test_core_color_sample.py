"""Tests for Color-Sample (Lemma 3.1): correctness, uniformity, cost shape."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import color_sample_party


def sample_once(m, used_a, used_b, seed):
    a, b, t = run_protocol(
        color_sample_party(m, used_a, Stream.from_seed(seed)),
        color_sample_party(m, used_b, Stream.from_seed(seed)),
    )
    assert a == b, "the sampled color must be common knowledge"
    return a, t


class TestCorrectness:
    def test_avoids_both_sides(self):
        for seed in range(50):
            color, _ = sample_once(8, {1, 2}, {2, 3, 4}, seed)
            assert color in {5, 6, 7, 8}

    def test_single_available_color_found(self):
        for seed in range(20):
            color, _ = sample_once(5, {1, 2}, {3, 4}, seed)
            assert color == 5

    def test_full_palette_available(self):
        for seed in range(20):
            color, _ = sample_once(6, set(), set(), seed)
            assert 1 <= color <= 6

    def test_overlapping_used_sets(self):
        for seed in range(20):
            color, _ = sample_once(4, {1, 2}, {1}, seed)
            assert color in {3, 4}

    def test_palette_of_one(self):
        color, t = sample_once(1, set(), set(), 0)
        assert color == 1

    def test_rejects_empty_palette(self):
        with pytest.raises(ValueError):
            next(color_sample_party(0, set(), Stream.from_seed(0)))

    def test_rejects_out_of_palette_used_colors(self):
        with pytest.raises(ValueError):
            next(color_sample_party(3, {4}, Stream.from_seed(0)))


class TestUniformity:
    def test_uniform_over_available(self):
        """Lemma 3.1: the sampled color is uniform over the available set."""
        m = 6
        used_a, used_b = {1}, {2}
        available = [3, 4, 5, 6]
        trials = 1200
        counts = Counter(
            sample_once(m, used_a, used_b, seed)[0] for seed in range(trials)
        )
        assert set(counts) == set(available)
        expected = trials / len(available)
        # chi-squared statistic against uniform; df=3, 0.999-quantile ~ 16.3
        chi2 = sum((counts[c] - expected) ** 2 / expected for c in available)
        assert chi2 < 16.3, f"non-uniform sample: {dict(counts)}"


class TestCostShape:
    def mean_cost(self, m, k, trials=40):
        """Average bits when exactly k of m colors are available."""
        blocked = m - k
        used_a = set(range(1, blocked // 2 + 1))
        used_b = set(range(blocked // 2 + 1, blocked + 1))
        bits = []
        rounds = []
        for seed in range(trials):
            _, t = sample_once(m, used_a, used_b, seed)
            bits.append(t.total_bits)
            rounds.append(t.rounds)
        return sum(bits) / trials, sum(rounds) / trials

    def test_cost_grows_as_slack_shrinks(self):
        m = 256
        cost_full, rounds_full = self.mean_cost(m, m)
        cost_half, _ = self.mean_cost(m, m // 2)
        cost_tiny, rounds_tiny = self.mean_cost(m, 2)
        assert cost_full <= cost_half <= cost_tiny
        assert rounds_full <= rounds_tiny

    def test_worst_case_rounds_logarithmic(self):
        m = 256
        for seed in range(30):
            _, t = sample_once(m, set(range(1, m // 2)), set(range(m // 2, m)), seed)
            assert t.rounds <= 3 * (math.log2(m) + 2)
