"""Tests for the lockstep runner, ledger, messages, and parallel composer."""

from __future__ import annotations

import pytest

from repro.comm import (
    BatchMsg,
    Msg,
    ProtocolDesyncError,
    Transcript,
    compose_parallel,
    run_protocol,
)


def echo_party(value, rounds):
    """Send ``value`` for ``rounds`` rounds; return everything received."""

    def gen():
        received = []
        for _ in range(rounds):
            reply = yield Msg(8, value)
            received.append(reply.payload)
        return received

    return gen()


class TestMsg:
    def test_empty(self):
        assert Msg.empty().nbits == 0
        assert Msg.empty().is_empty

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Msg(-1)

    def test_batch_size_is_sum(self):
        batch = BatchMsg({"a": Msg(3), "b": Msg(5)})
        assert batch.nbits == 8
        assert batch.get("a").nbits == 3
        assert batch.get("missing").is_empty


class TestTranscript:
    def test_round_accounting(self):
        t = Transcript()
        t.record_round(10, 0)
        t.record_round(0, 7)
        assert t.total_bits == 17
        assert t.rounds == 2
        assert t.messages == 2
        assert t.bits_alice_to_bob == 10
        assert t.bits_bob_to_alice == 7

    def test_phase_attribution(self):
        t = Transcript()
        with t.phase("one"):
            t.record_round(4, 4)
        with t.phase("two"):
            t.record_round(1, 0)
        assert t.phase_stats("one").total_bits == 8
        assert t.phase_stats("two").total_bits == 1
        assert t.phase_stats("two").rounds == 1
        assert t.phase_stats("missing").total_bits == 0

    def test_nested_phases_accumulate(self):
        t = Transcript()
        with t.phase("outer"):
            with t.phase("inner"):
                t.record_round(2, 2)
            t.record_round(1, 1)
        assert t.phase_stats("outer").total_bits == 6
        assert t.phase_stats("inner").total_bits == 4

    def test_negative_bits_rejected(self):
        t = Transcript()
        with pytest.raises(ValueError):
            t.record_round(-1, 0)


class TestRunner:
    def test_two_round_exchange(self):
        a, b, t = run_protocol(echo_party("A", 2), echo_party("B", 2))
        assert a == ["B", "B"]
        assert b == ["A", "A"]
        assert t.rounds == 2
        assert t.total_bits == 32

    def test_zero_round_protocol(self):
        def silent():
            return "done"
            yield  # pragma: no cover - makes this a generator

        a, b, t = run_protocol(silent(), silent())
        assert a == b == "done"
        assert t.rounds == 0
        assert t.total_bits == 0

    def test_desync_raises(self):
        with pytest.raises(ProtocolDesyncError):
            run_protocol(echo_party("A", 2), echo_party("B", 3))

    def test_transcript_reuse_accumulates(self):
        t = Transcript()
        run_protocol(echo_party("A", 1), echo_party("B", 1), t)
        run_protocol(echo_party("A", 1), echo_party("B", 1), t)
        assert t.rounds == 2


class TestParallelComposer:
    def test_round_sharing(self):
        def party(lengths):
            gens = {k: echo_party(k, r) for k, r in lengths.items()}
            composed = compose_parallel(gens)
            result = yield from composed
            return result

        lengths = {"x": 1, "y": 3}
        a, b, t = run_protocol(party(lengths), party(lengths))
        # Round cost is the max of the sub-protocol lengths...
        assert t.rounds == 3
        # ...and each sub-protocol heard its counterpart the right number
        # of times.
        assert a["x"] == ["x"]
        assert a["y"] == ["y", "y", "y"]
        # Bit cost is the sum: x contributes 1 round of 8 bits per side,
        # y contributes 3.
        assert t.total_bits == 2 * 8 * (1 + 3)

    def test_empty_composition_finishes_instantly(self):
        def party():
            result = yield from compose_parallel({})
            return result

        a, b, t = run_protocol(party(), party())
        assert a == {} and b == {}
        assert t.rounds == 0

    def test_subprotocol_returning_without_yield(self):
        def instant():
            return 42
            yield  # pragma: no cover

        def party():
            result = yield from compose_parallel({"i": instant(), "e": echo_party("e", 1)})
            return result

        a, _, t = run_protocol(party(), party())
        assert a == {"i": 42, "e": ["e"]}
        assert t.rounds == 1

    def test_rejects_non_batch_peer_message(self):
        def bad_peer():
            yield Msg(1, "not a batch")

        def party():
            result = yield from compose_parallel({"k": echo_party("k", 1)})
            return result

        with pytest.raises(TypeError):
            run_protocol(party(), bad_peer())
