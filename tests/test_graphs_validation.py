"""Tests for the coloring validators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    cycle_graph,
    is_proper_edge_coloring,
    is_proper_list_coloring,
    is_proper_vertex_coloring,
    vertex_coloring_conflicts,
)


class TestVertexValidation:
    def test_accepts_proper(self):
        g = cycle_graph(4)
        assert is_proper_vertex_coloring(g, {0: 1, 1: 2, 2: 1, 3: 2}, 3)

    def test_rejects_monochromatic_edge(self):
        g = cycle_graph(4)
        colors = {0: 1, 1: 1, 2: 2, 3: 2}
        assert not is_proper_vertex_coloring(g, colors)
        assert (0, 1) in vertex_coloring_conflicts(g, colors)

    def test_rejects_uncolored_vertex(self):
        g = cycle_graph(4)
        assert not is_proper_vertex_coloring(g, {0: 1, 1: 2, 2: 1})

    def test_rejects_out_of_palette(self):
        g = cycle_graph(4)
        colors = {0: 1, 1: 2, 2: 1, 3: 99}
        assert not is_proper_vertex_coloring(g, colors, num_colors=3)
        assert is_proper_vertex_coloring(g, colors)  # no palette constraint

    def test_sequence_colors_supported(self):
        g = cycle_graph(4)
        assert is_proper_vertex_coloring(g, [1, 2, 1, 2], 2)

    def test_assert_gives_diagnostics(self):
        g = cycle_graph(4)
        with pytest.raises(AssertionError, match="uncolored"):
            assert_proper_vertex_coloring(g, {0: 1})
        with pytest.raises(AssertionError, match="monochromatic"):
            assert_proper_vertex_coloring(g, {0: 1, 1: 1, 2: 2, 3: 2})
        with pytest.raises(AssertionError, match="palette"):
            assert_proper_vertex_coloring(g, {0: 1, 1: 2, 2: 1, 3: 4}, 3)

    def test_partial_coloring_conflicts_ignores_uncolored(self):
        g = cycle_graph(4)
        assert vertex_coloring_conflicts(g, {0: 1, 2: 1}) == []


class TestEdgeValidation:
    def test_accepts_proper(self):
        g = cycle_graph(4)
        colors = {(0, 1): 1, (1, 2): 2, (2, 3): 1, (0, 3): 2}
        assert is_proper_edge_coloring(g, colors, 3)

    def test_accepts_non_canonical_keys(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert is_proper_edge_coloring(g, {(1, 0): 1, (2, 1): 2})

    def test_rejects_shared_color_at_vertex(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(AssertionError, match="share color"):
            assert_proper_edge_coloring(g, {(0, 1): 1, (1, 2): 1})

    def test_rejects_uncolored_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(AssertionError, match="uncolored"):
            assert_proper_edge_coloring(g, {(0, 1): 1})

    def test_rejects_out_of_palette(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(AssertionError, match="palette"):
            assert_proper_edge_coloring(g, {(0, 1): 5}, num_colors=3)


class TestListValidation:
    def test_accepts_list_respecting_coloring(self):
        g = Graph(2, [(0, 1)])
        assert is_proper_list_coloring(g, {0: 1, 1: 2}, {0: {1}, 1: {2}})

    def test_rejects_color_outside_list(self):
        g = Graph(2, [(0, 1)])
        assert not is_proper_list_coloring(g, {0: 1, 1: 2}, {0: {3}, 1: {2}})

    def test_rejects_conflict(self):
        g = Graph(2, [(0, 1)])
        assert not is_proper_list_coloring(g, {0: 1, 1: 1}, {0: {1}, 1: {1}})

    def test_rejects_missing_vertex(self):
        g = Graph(2, [(0, 1)])
        assert not is_proper_list_coloring(g, {0: 1}, {0: {1}, 1: {2}})
