"""Tests for edge partitions and the partitioner zoo."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    PARTITIONERS,
    EdgePartition,
    complete_graph,
    gnp_random_graph,
    partition_all_alice,
    partition_all_bob,
    partition_alternating,
    partition_crossing,
    partition_degree_split,
    partition_random,
)


class TestEdgePartitionInvariants:
    def test_edges_partitioned_exactly(self, rng):
        g = gnp_random_graph(25, 0.3, rng)
        part = partition_random(g, rng)
        assert part.alice_edges | part.bob_edges == set(g.edges())
        assert not (part.alice_edges & part.bob_edges)

    def test_side_graphs_match_edge_sets(self, rng):
        g = gnp_random_graph(25, 0.3, rng)
        part = partition_random(g, rng)
        assert set(part.alice_graph.edges()) == part.alice_edges
        assert set(part.bob_graph.edges()) == part.bob_edges

    def test_local_degrees_sum_to_global(self, rng):
        g = gnp_random_graph(25, 0.4, rng)
        part = partition_random(g, rng)
        for v in g.vertices():
            assert (
                part.alice_graph.degree(v) + part.bob_graph.degree(v)
                == g.degree(v)
            )

    def test_owner_lookup(self, rng):
        g = gnp_random_graph(8, 0.5, rng)
        part = partition_random(g, rng)
        for u, v in g.edges():
            owner = part.owner(u, v)
            assert ((u, v) in part.alice_edges) == (owner == "alice")

    def test_owner_rejects_non_edge(self, rng):
        g = gnp_random_graph(8, 0.0, rng)
        g.add_edge(0, 1)
        part = partition_all_alice(g)
        with pytest.raises(KeyError):
            part.owner(2, 3)

    def test_rejects_foreign_edges(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            EdgePartition(gnp_random_graph(4, 0.0, random.Random(0)), [(0, 1)])

    def test_side_graph_accessor(self, rng):
        g = complete_graph(5)
        part = partition_random(g, rng)
        assert part.side_graph("alice") is part.alice_graph
        assert part.side_graph("bob") is part.bob_graph
        with pytest.raises(ValueError):
            part.side_graph("carol")

    def test_public_parameters(self, rng):
        g = complete_graph(6)
        part = partition_random(g, rng)
        assert part.n == 6
        assert part.max_degree == 5


class TestPartitioners:
    def test_all_alice_and_all_bob(self, rng):
        g = complete_graph(5)
        assert len(partition_all_alice(g).bob_edges) == 0
        assert len(partition_all_bob(g).alice_edges) == 0

    def test_alternating_is_balanced(self):
        g = complete_graph(6)
        part = partition_alternating(g)
        assert abs(len(part.alice_edges) - len(part.bob_edges)) <= 1

    def test_degree_split_balances_every_vertex(self, rng):
        g = complete_graph(9)
        part = partition_degree_split(g)
        for v in g.vertices():
            assert abs(part.alice_graph.degree(v) - part.bob_graph.degree(v)) <= 2

    def test_crossing_gives_alice_bipartite_view(self, rng):
        g = gnp_random_graph(30, 0.3, rng)
        part = partition_crossing(g, rng)
        # Alice's subgraph is bipartite by construction: 2-colorable check
        # via BFS.
        color = {}
        for start in range(30):
            if start in color or part.alice_graph.degree(start) == 0:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                u = stack.pop()
                for w in part.alice_graph.neighbors(u):
                    if w not in color:
                        color[w] = 1 - color[u]
                        stack.append(w)
                    else:
                        assert color[w] != color[u]

    def test_registry_covers_all_partitioners(self, rng):
        g = gnp_random_graph(15, 0.4, rng)
        for name, factory in PARTITIONERS.items():
            part = factory(g, rng)
            assert part.alice_edges | part.bob_edges == set(g.edges()), name
