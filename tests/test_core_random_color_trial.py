"""Tests for Random-Color-Trial (Algorithm 1 / Lemma 4.1)."""

from __future__ import annotations


from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import paper_iteration_count, random_color_trial_party
from repro.graphs import (
    gnp_random_graph,
    partition_random,
    random_regular_graph,
    vertex_coloring_conflicts,
)

from .conftest import all_partitions


def run_trial(partition, num_colors, seed=0, max_iterations=None):
    (a_colors, a_active), (b_colors, b_active), t = run_protocol(
        random_color_trial_party(
            partition.alice_graph, num_colors, Stream.from_seed(seed), max_iterations
        ),
        random_color_trial_party(
            partition.bob_graph, num_colors, Stream.from_seed(seed), max_iterations
        ),
    )
    assert a_colors == b_colors and a_active == b_active
    return a_colors, a_active, t


class TestPaperIterationCount:
    def test_monotone(self):
        assert paper_iteration_count(4) <= paper_iteration_count(1 << 20)

    def test_small_values(self):
        assert paper_iteration_count(1) == 1
        assert paper_iteration_count(2) == 1

    def test_loglog_growth(self):
        # Doubling n barely changes the count (it is log log n).
        big = paper_iteration_count(1 << 16)
        bigger = paper_iteration_count(1 << 17)
        assert bigger - big <= 8


class TestPartialColoringValidity:
    def test_no_conflicts_and_consistency(self, rng):
        for _ in range(20):
            g = gnp_random_graph(rng.randint(2, 40), rng.random() * 0.5, rng)
            if g.max_degree() == 0:
                continue
            part = partition_random(g, rng)
            colors, active, _ = run_trial(part, g.max_degree() + 1, seed=rng.randint(0, 999))
            assert vertex_coloring_conflicts(g, colors) == []
            assert set(colors) | set(active) == set(range(g.n))
            assert not set(colors) & set(active)
            assert all(1 <= c <= g.max_degree() + 1 for c in colors.values())

    def test_partition_adversaries(self, rng):
        g = gnp_random_graph(30, 0.3, rng)
        if g.max_degree() == 0:
            g.add_edge(0, 1)
        for part in all_partitions(g, rng):
            colors, active, _ = run_trial(part, g.max_degree() + 1)
            assert vertex_coloring_conflicts(g, colors) == []


class TestProgress:
    def test_paper_iterations_color_almost_everything(self, rng):
        g = random_regular_graph(300, 8, rng)
        colors, active, _ = run_trial(partition_random(g, rng), 9, seed=3)
        # Lemma 4.1(i): expected leftover O(n / log^4 n); with the paper's
        # generous cap the run should finish almost everything.
        assert len(active) <= 300 // 10

    def test_single_iteration_leaves_work(self, rng):
        g = random_regular_graph(300, 8, rng)
        colors, active, _ = run_trial(
            partition_random(g, rng), 9, seed=3, max_iterations=1
        )
        assert active  # one iteration cannot color everything whp
        assert colors  # but it colors a constant fraction

    def test_active_decays_geometrically(self, rng):
        g = random_regular_graph(400, 10, rng)
        part = partition_random(g, rng)
        sizes = []
        for iterations in (1, 2, 4, 8):
            _, active, _ = run_trial(part, 11, seed=5, max_iterations=iterations)
            sizes.append(len(active))
        assert sizes[0] >= sizes[1] >= sizes[2] >= sizes[3]
        assert sizes[3] < sizes[0] / 3


class TestCost:
    def test_linear_bits(self, rng):
        """Lemma 4.1(ii): O(n) expected bits — per-vertex cost roughly flat."""
        per_vertex = []
        for n in (128, 256, 512):
            g = random_regular_graph(n, 8, rng)
            _, _, t = run_trial(partition_random(g, rng), 9, seed=7)
            per_vertex.append(t.total_bits / n)
        assert max(per_vertex) <= 3 * min(per_vertex) + 8

    def test_round_cap(self, rng):
        """Lemma 4.1(iii): worst case O(log log n · log Δ) rounds."""
        g = random_regular_graph(512, 8, rng)
        _, _, t = run_trial(partition_random(g, rng), 9, seed=7)
        import math

        loglog = math.log2(math.log2(512))
        logdelta = math.log2(9)
        assert t.rounds <= 40 * loglog * logdelta

    def test_edgeless_graph_is_cheap(self, rng):
        g = gnp_random_graph(20, 0.0, rng)
        colors, active, t = run_trial(partition_random(g, rng), 1)
        # Isolated vertices succeed on their first awake try: a handful of
        # bits each (one count exchange + one confirmation bit per side).
        assert t.total_bits <= 20 * 12
        assert not active
        assert all(c == 1 for c in colors.values())
