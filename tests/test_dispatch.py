"""Dispatcher unit + integration tests: packing, tailing, manifest, merge tree.

The fault-injection end-to-end suite lives in
``test_dispatch_fault_injection.py``; this file covers the pieces in
isolation plus one happy-path ``repro dispatch`` CLI run, pinned — like
everything in the distributed stack — to bit-for-bit equality with the
serial sweep.
"""

from __future__ import annotations

import json
import os
import shlex
from pathlib import Path

import pytest

from repro import __version__
from repro.__main__ import main
from repro.dispatch import (
    Coordinator,
    DispatchConfig,
    DispatchError,
    JournalTail,
    LocalExecutor,
    Manifest,
    MergeTree,
    ShardProgress,
    ShardState,
    SSHExecutor,
    grid_fingerprint,
    make_executor,
)
from repro.engine import (
    Scenario,
    build_document,
    default_scenarios,
    iter_scenarios,
    merge_documents,
    pack_shards,
    smoke_scenarios,
    sweep,
    write_results,
)


@pytest.fixture(autouse=True)
def _src_on_worker_path(monkeypatch):
    """Ensure dispatch worker subprocesses can import repro.

    The tier-1 invocation exports ``PYTHONPATH=src`` already; this keeps
    the suite working from any invocation (e.g. an installed package
    with a different cwd).
    """
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        merged = f"{src}{os.pathsep}{existing}" if existing else src
        monkeypatch.setenv("PYTHONPATH", merged)


def _tiny(protocol: str, backend: str = "set", partition: str = "random") -> Scenario:
    return Scenario(
        family="regular",
        params=(("d", 4), ("n", 24)),
        partition=partition,
        protocol=protocol,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# cost hints + weighted packing
# ---------------------------------------------------------------------------


def test_cost_hint_covers_every_registered_family():
    # Every coordinate in both curated grids gets a positive finite hint
    # from its family formula (no silent unit-cost fallbacks).
    for scenario in [*smoke_scenarios(), *default_scenarios()]:
        hint = scenario.cost_hint()
        assert hint > 1.0, scenario.name


def test_cost_hint_tracks_n_times_d():
    assert _tiny("vertex").cost_hint() == 24 * 4
    big = Scenario(
        family="regular",
        params=(("d", 8), ("n", 512)),
        partition="random",
        protocol="vertex",
    )
    assert big.cost_hint() == 512 * 8


def test_pack_shards_partitions_in_grid_order():
    grid = smoke_scenarios()
    shards = pack_shards(grid, 3)
    names = [s.name for shard in shards for s in shard]
    assert sorted(names) == sorted(s.name for s in grid)
    assert len(names) == len(set(names))
    order = {s.name: i for i, s in enumerate(grid)}
    for shard in shards:
        positions = [order[s.name] for s in shard]
        assert positions == sorted(positions)
    # Deterministic: same grid, same packing.
    assert [[s.name for s in shard] for shard in shards] == [
        [s.name for s in shard] for shard in pack_shards(grid, 3)
    ]


def test_pack_shards_isolates_a_dominant_scenario():
    # One coordinate dwarfing the rest must get a shard to itself while
    # the tiny ones spread over the other shards — the balance the hash
    # assignment cannot promise.
    huge = Scenario(
        family="regular",
        params=(("d", 8), ("n", 512)),
        partition="random",
        protocol="vertex",
    )
    tiny = [
        _tiny(protocol, backend=backend, partition=partition)
        for protocol in ("vertex", "edge")
        for backend in ("set", "bitset")
        for partition in ("random", "all_alice")
    ]
    shards = pack_shards([huge, *tiny], 3)
    huge_shard = next(s for s in shards if any(x.name == huge.name for x in s))
    assert [x.name for x in huge_shard] == [huge.name]
    other_sizes = sorted(len(s) for s in shards if s is not huge_shard)
    assert other_sizes == [4, 4]


def test_pack_shards_with_more_shards_than_scenarios():
    grid = [_tiny("vertex"), _tiny("edge")]
    shards = pack_shards(grid, 5)
    assert sum(len(s) for s in shards) == 2
    assert sum(1 for s in shards if not s) == 3
    with pytest.raises(ValueError):
        pack_shards(grid, 0)


# ---------------------------------------------------------------------------
# sweep --scenario-file (explicit shard membership)
# ---------------------------------------------------------------------------


def test_cli_scenario_file_selects_exactly_the_listed_names(tmp_path):
    grid = [s for s in smoke_scenarios() if "edge_zero_comm" in s.name]
    chosen = [grid[0].name, grid[2].name]
    listing = tmp_path / "scenarios.txt"
    listing.write_text("# membership file\n" + "".join(f"{n}\n" for n in chosen))
    out = tmp_path / "out"
    assert main(
        ["sweep", "--smoke", "--scenario-file", str(listing),
         "--jobs", "1", "--out", str(out)]
    ) == 0
    document = json.loads((out / "sweep.json").read_text())
    assert [r["scenario"] for r in document["results"]] == [
        s.name for s in smoke_scenarios() if s.name in set(chosen)
    ]


def test_cli_scenario_file_rejects_unknown_names(tmp_path, capsys):
    listing = tmp_path / "scenarios.txt"
    listing.write_text("no/such/coordinate\n")
    code = main(
        ["sweep", "--smoke", "--scenario-file", str(listing),
         "--out", str(tmp_path / "out")]
    )
    assert code == 2
    assert "not in the" in capsys.readouterr().err


def test_cli_scenario_file_conflicts_with_shard(tmp_path, capsys):
    listing = tmp_path / "scenarios.txt"
    listing.write_text("")
    code = main(
        ["sweep", "--smoke", "--shard", "1/2",
         "--scenario-file", str(listing), "--out", str(tmp_path / "out")]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# journal tailing
# ---------------------------------------------------------------------------


def _entry(name: str, rep: int | None = None) -> str:
    entry = {"record": {"scenario": name}, "reps": 1, "scenario": name,
             "version": __version__}
    if rep is not None:
        entry["rep"] = rep
    return json.dumps(entry, sort_keys=True)


def test_journal_tail_is_incremental(tmp_path):
    path = tmp_path / "journal.jsonl"
    tail = JournalTail(path)
    assert tail.poll() == []  # file does not exist yet
    path.write_text(_entry("a") + "\n")
    assert [e["scenario"] for e in tail.poll()] == ["a"]
    assert tail.poll() == []  # nothing new
    with path.open("a") as handle:
        handle.write(_entry("b") + "\n" + _entry("c") + "\n")
    assert [e["scenario"] for e in tail.poll()] == ["b", "c"]


def test_journal_tail_withholds_torn_line_until_complete(tmp_path):
    path = tmp_path / "journal.jsonl"
    tail = JournalTail(path)
    line = _entry("a")
    path.write_text(line[: len(line) // 2])  # torn: no newline
    assert tail.poll() == []
    path.write_text(line + "\n")  # the append completed after all
    assert [e["scenario"] for e in tail.poll()] == ["a"]


def test_journal_tail_rewinds_on_truncation(tmp_path):
    # A fresh (non-resume) worker attempt truncates the journal; the
    # tail must restart from offset 0 instead of silently skipping.
    path = tmp_path / "journal.jsonl"
    tail = JournalTail(path)
    path.write_text(_entry("a") + "\n" + _entry("b") + "\n")
    assert len(tail.poll()) == 2
    path.write_text(_entry("c") + "\n")
    assert [e["scenario"] for e in tail.poll()] == ["c"]


def test_shard_progress_dedups_journal_rewrites(tmp_path):
    path = tmp_path / "journal.jsonl"
    progress = ShardProgress(7, path, total=2)
    path.write_text(_entry("a") + "\n")
    first = list(progress.poll())
    assert first == ["[shard 7] done a (1/2)"]
    # A resumed worker rewrites the journal: 'a' streams past again.
    path.write_text(_entry("a") + "\n" + _entry("b") + "\n")
    again = list(progress.poll())
    assert again == ["[shard 7] done b (2/2)"]
    # Rep-level entries surface as rep progress, not completions.
    with path.open("a") as handle:
        handle.write(_entry("c", rep=0) + "\n")
    assert list(progress.poll()) == ["[shard 7] c rep 1/1"]
    assert progress.done == {"a", "b"}


# ---------------------------------------------------------------------------
# manifest
# ---------------------------------------------------------------------------


def _manifest(tmp_path) -> Manifest:
    return Manifest(
        path=tmp_path / "dispatch.json",
        fingerprint=grid_fingerprint(["a", "b", "c"], 1, "sweep"),
        reps=1,
        label="sweep",
        assignment="hash",
        shards=[
            ShardState(shard_id=1, scenarios=["a", "b"], spec="1/2"),
            ShardState(shard_id=2, scenarios=["c"], spec="2/2", status="running",
                       attempts=1),
        ],
    )


def test_manifest_round_trips(tmp_path):
    manifest = _manifest(tmp_path)
    manifest.save()
    loaded = Manifest.load(manifest.path)
    assert loaded.fingerprint == manifest.fingerprint
    assert [s.to_json() for s in loaded.shards] == [
        s.to_json() for s in manifest.shards
    ]
    assert not loaded.complete
    # No temp file left behind by the atomic write.
    assert list(tmp_path.glob("*.tmp")) == []


def test_manifest_rejects_other_versions_and_torn_files(tmp_path):
    manifest = _manifest(tmp_path)
    manifest.save()
    document = json.loads(manifest.path.read_text())
    document["version"] = "0.0.0"
    manifest.path.write_text(json.dumps(document))
    with pytest.raises(DispatchError, match="version"):
        Manifest.load(manifest.path)
    manifest.path.write_text('{"torn": ')
    with pytest.raises(DispatchError, match="cannot read"):
        Manifest.load(manifest.path)


def test_manifest_resume_guards_fingerprint(tmp_path):
    manifest = _manifest(tmp_path)
    manifest.check_resumable(manifest.fingerprint)
    with pytest.raises(DispatchError, match="does not match"):
        manifest.check_resumable(grid_fingerprint(["a", "b"], 1, "sweep"))
    # Fingerprint is order-sensitive: grid order is part of the contract.
    assert grid_fingerprint(["a", "b"], 1, "x") != grid_fingerprint(["b", "a"], 1, "x")


def test_manifest_reset_interrupted_demotes_running_and_failed(tmp_path):
    manifest = _manifest(tmp_path)
    manifest.shards[0].status = "failed"
    manifest.reset_interrupted()
    assert [s.status for s in manifest.shards] == ["pending", "pending"]


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


def test_local_executor_command_shape():
    command = LocalExecutor(python="py").command(["--smoke", "--out", "x"])
    assert command == ["py", "-m", "repro", "sweep", "--smoke", "--out", "x"]


def test_ssh_executor_wraps_and_quotes():
    executor = SSHExecutor("worker1.example")
    command = executor.command(["--filter", "a b"])  # space must survive
    assert command[:3] == ["ssh", "-o", "BatchMode=yes"]
    assert command[3] == "worker1.example"
    assert shlex.split(command[4]) == [
        "python3", "-m", "repro", "sweep", "--filter", "a b",
    ]


def test_make_executor():
    assert isinstance(make_executor("local"), LocalExecutor)
    ssh = make_executor("ssh://host9")
    assert isinstance(ssh, SSHExecutor) and ssh.host == "host9"
    with pytest.raises(ValueError):
        make_executor("slurm://nope")
    with pytest.raises(ValueError):
        make_executor("ssh://")


# ---------------------------------------------------------------------------
# merge tree
# ---------------------------------------------------------------------------


def _shard_docs(grid, count):
    from repro.engine import shard_scenarios

    documents = []
    for k in range(1, count + 1):
        shard = shard_scenarios(grid, k, count)
        documents.append(build_document(sweep(shard, jobs=1)))
    return [d for d in documents if d["results"]]


def test_merge_tree_matches_flat_merge_any_arrival_order():
    grid = [
        _tiny("vertex"),
        _tiny("vertex", backend="bitset"),
        _tiny("edge"),
        _tiny("edge_zero_comm"),
        _tiny("edge_zero_comm", partition="all_alice"),
    ]
    documents = _shard_docs(grid, 5)
    flat = merge_documents(documents, grid, check_complete=True)
    for order in (documents, documents[::-1], documents[2:] + documents[:2]):
        tree = MergeTree(grid)
        for document in order:
            tree.add(document)
        assert tree.finish(check_complete=True) == flat
    # Binary-counter fold count: n adds perform n - popcount(n) merges.
    tree = MergeTree(grid)
    for document in documents:
        tree.add(document)
    n = len(documents)
    assert tree.merges == n - bin(n).count("1")


def test_merge_tree_folds_idempotent_overlaps():
    grid = [_tiny("edge_zero_comm")]
    document = build_document(sweep(grid, jobs=1))
    tree = MergeTree(grid)
    tree.add(document)
    tree.add(json.loads(json.dumps(document)))  # overlapping re-dispatch
    assert [r["scenario"] for r in tree.finish()] == [grid[0].name]


# ---------------------------------------------------------------------------
# coordinator + CLI happy paths
# ---------------------------------------------------------------------------

_SELECTION = ["--smoke", "--filter", "edge_zero_comm", "--transport", "lockstep"]


def _selected_grid():
    return list(
        iter_scenarios(
            smoke_scenarios(), pattern="edge_zero_comm", transport="lockstep"
        )
    )


def _serial_bytes(tmp_path) -> bytes:
    json_path, _ = write_results(
        sweep(_selected_grid(), jobs=1), tmp_path / "serial"
    )
    return json_path.read_bytes()


def test_cli_dispatch_matches_serial_sweep(tmp_path):
    out = tmp_path / "out"
    code = main(
        ["dispatch", *_SELECTION, "--workers", "2", "--shards", "3",
         "--out", str(out), "--backoff", "0.1"]
    )
    assert code == 0
    assert (out / "sweep.json").read_bytes() == _serial_bytes(tmp_path)
    manifest = Manifest.load(out / "dispatch" / "dispatch.json")
    assert manifest.complete
    assert all(s.status == "done" for s in manifest.shards)
    # Shard workers left replayable journals + canonical partials behind.
    for shard in manifest.shards:
        shard_dir = out / "dispatch" / f"shard-{shard.shard_id:03d}"
        assert (shard_dir / "journal.jsonl").exists()
        assert (shard_dir / "sweep.json").exists()


def test_cli_dispatch_weighted_matches_serial_sweep(tmp_path):
    out = tmp_path / "out"
    code = main(
        ["dispatch", *_SELECTION, "--weighted", "--workers", "2",
         "--shards", "3", "--out", str(out)]
    )
    assert code == 0
    assert (out / "sweep.json").read_bytes() == _serial_bytes(tmp_path)
    manifest = Manifest.load(out / "dispatch" / "dispatch.json")
    assert manifest.assignment == "weighted"
    # Weighted shards ship explicit membership files to their workers.
    listings = list((out / "dispatch").glob("shard-*/scenarios.txt"))
    assert listings
    listed = {
        name
        for listing in listings
        for name in listing.read_text().split()
    }
    assert listed == {s.name for s in _selected_grid()}


def test_cli_dispatch_usage_errors(tmp_path, capsys):
    assert main(
        ["dispatch", "--smoke", "--executor", "slurm://x", "--out", str(tmp_path)]
    ) == 2
    assert main(
        ["dispatch", "--smoke", "--reps", "0", "--out", str(tmp_path)]
    ) == 2
    assert main(
        ["dispatch", "--smoke", "--filter", "no-such-scenario",
         "--out", str(tmp_path)]
    ) == 2
    # --resume without a manifest is a usage error, not a crash.
    assert main(
        ["dispatch", *_SELECTION, "--resume", "--out", str(tmp_path / "fresh")]
    ) == 2
    err = capsys.readouterr().err
    assert "unknown executor" in err and "manifest" in err


def test_coordinator_rejects_degenerate_configs(tmp_path):
    grid = _selected_grid()
    with pytest.raises(DispatchError, match="empty"):
        Coordinator(
            [], _SELECTION, tmp_path / "w", tmp_path / "o",
            LocalExecutor(), DispatchConfig(),
        )
    with pytest.raises(DispatchError, match="worker"):
        Coordinator(
            grid, _SELECTION, tmp_path / "w", tmp_path / "o",
            LocalExecutor(), DispatchConfig(workers=0),
        )
    with pytest.raises(DispatchError, match="shard"):
        Coordinator(
            grid, _SELECTION, tmp_path / "w", tmp_path / "o",
            LocalExecutor(), DispatchConfig(shards=0),
        )


def test_coordinator_default_shard_count_overshards(tmp_path):
    grid = _selected_grid()  # 9 scenarios (3 partitions x 3 backends)
    coordinator = Coordinator(
        grid, _SELECTION, tmp_path / "w", tmp_path / "o",
        LocalExecutor(), DispatchConfig(workers=2),
    )
    # M = min(4 x workers, grid size): M >> workers up to the grid size.
    assert coordinator.shard_count == 8
