"""Tests for the numpy kernel backend of ``repro.rand``.

The contract under test is bit-for-bit parity: every draw the vectorized
kernels produce — values *and* counter consumption — must equal the pure
Python reference path, which stays the golden definition of the streams.
Pinned sha256 digests catch cross-platform drift; the randomized
cross-backend sweep catches dispatch/threshold bugs; the protocol-level
checks prove that flipping the backend cannot change a single experiment
record.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.core.vertex_coloring import run_vertex_coloring
from repro.engine import build_partition
from repro.engine.scenarios import Scenario
from repro.rand import Stream, kernels

requires_numpy = pytest.mark.skipif(
    not kernels.available(), reason="numpy unavailable (or REPRO_NO_NUMPY set)"
)


def _hd(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# pinned golden digests (valid for BOTH backends — that is the point)
# ---------------------------------------------------------------------------


GOLDENS = [
    (
        "biased coins k=5000 p=0.3",
        lambda: "".join(
            "1" if b else "0" for b in Stream.from_seed(7, "kern-coins").coins(5000, 0.3)
        ),
        "d7ed25c5f52d3efeef792b4ac7a3ebde4975b7a66b2eb4d39a00adae5a30cc77",
    ),
    (
        "fair coins k=5000",
        lambda: "".join(
            "1" if b else "0" for b in Stream.from_seed(7, "kern-fair").coins(5000, 0.5)
        ),
        "b855604cc09f395e9bab3b45464e705d9ecbf643c346faf8a30b9f40a638be43",
    ),
    (
        "ints k=3000 wide range",
        lambda: ",".join(
            map(str, Stream.from_seed(7, "kern-ints").ints(3000, -500, 10**9))
        ),
        "7c00fbca95a37a9bbb77004527f082a3ec2d6ba87a4c877aae1f4aa59ea14705",
    ),
    (
        "sample_indices m=65536 p=0.03",
        lambda: ",".join(
            map(str, Stream.from_seed(7, "kern-idx").sample_indices(65536, 0.03))
        ),
        "4b3e44a583a91b6743cac1d603cb04a3abc0ceae92df1d088babfde53b5f5310",
    ),
    (
        "sample_mask m=8192 p=0.4",
        lambda: "".join(
            "1" if b else "0" for b in Stream.from_seed(7, "kern-mask").sample_mask(8192, 0.4)
        ),
        "7df3f6000c7830bda8ab6462c50cdb06a050f43fac1f769d851636cae7d25fae",
    ),
    (
        "feistel materialize m=4097",
        lambda: ",".join(
            map(str, Stream.from_seed(7, "kern-perm").permutation(4097).materialize())
        ),
        "eaef06d5265aad671ac3c56e68a2f9cf44f8150fef71b43354df34f72e3c037f",
    ),
]


class TestGoldenDigests:
    """The same pinned digest must hold with kernels on and off."""

    @pytest.mark.parametrize("name,draw,expected", GOLDENS, ids=[g[0] for g in GOLDENS])
    def test_pure_path(self, name, draw, expected):
        with kernels.disabled():
            assert _hd(draw()) == expected

    @requires_numpy
    @pytest.mark.parametrize("name,draw,expected", GOLDENS, ids=[g[0] for g in GOLDENS])
    def test_kernel_path(self, name, draw, expected):
        assert _hd(draw()) == expected


# ---------------------------------------------------------------------------
# randomized cross-backend equivalence
# ---------------------------------------------------------------------------


def _coin_cases():
    rng = random.Random(0xC01)
    cases = []
    for i in range(20):
        k = rng.choice([1, 63, 64, 65, 127, 128, 129, 2047, 2048, 2049, 5000])
        p = rng.choice([0.5, 0.0, 1.0, -0.2, 1.5, 1e-9, 0.3, 0.77])
        cases.append((rng.randrange(2**31), k, p))
    return cases


def _int_cases():
    rng = random.Random(0x1E7)
    cases = []
    for i in range(15):
        k = rng.choice([1, 127, 128, 129, 1000, 4096])
        low = rng.choice([0, -1, 10**18, -(10**18), 2**63 - 5, -(2**63)])
        width = rng.choice([1, 2, 97, 2**32, 2**63 - 1, 2**63 + 1, 2**64 - 1])
        cases.append((rng.randrange(2**31), k, low, low + width - 1))
    return cases


def _sample_cases():
    rng = random.Random(0x5A3)
    cases = []
    for i in range(15):
        m = rng.choice([1, 127, 128, 129, 4096, 65536])
        p = rng.choice([0.0, 1.0, 2.0, -1.0, 0.01, 0.05, 0.3, 0.9])
        cases.append((rng.randrange(2**31), m, p))
    return cases


@requires_numpy
class TestCrossBackendEquivalence:
    """Kernels must match the pure path in values AND counter consumption."""

    @pytest.mark.parametrize("seed,k,p", _coin_cases())
    def test_coins(self, seed, k, p):
        a = Stream.from_seed(seed, "x")
        b = Stream.from_seed(seed, "x")
        with kernels.disabled():
            want = a.coins(k, p)
        got = b.coins(k, p)
        assert got == want
        assert a.counter == b.counter

    @pytest.mark.parametrize("seed,k,low,high", _int_cases())
    def test_ints(self, seed, k, low, high):
        a = Stream.from_seed(seed, "x")
        b = Stream.from_seed(seed, "x")
        with kernels.disabled():
            want = a.ints(k, low, high)
        got = b.ints(k, low, high)
        assert got == want
        assert a.counter == b.counter

    @pytest.mark.parametrize("seed,m,p", _sample_cases())
    def test_sample_indices_and_mask(self, seed, m, p):
        a = Stream.from_seed(seed, "x")
        b = Stream.from_seed(seed, "x")
        with kernels.disabled():
            want_idx = list(a.sample_indices(m, p))
            want_mask = a.sample_mask(m, p)
        got_idx = list(b.sample_indices(m, p))
        got_mask = b.sample_mask(m, p)
        assert got_idx == want_idx
        assert got_mask == want_mask
        assert a.counter == b.counter

    @pytest.mark.parametrize("m", [97, 256, 257, 1000, 4097, 10007])
    def test_feistel_non_power_of_two(self, m):
        # Batch queries, inverse batches, and full materialization on
        # non-power-of-two domains (cycle walking exercised).
        with kernels.disabled():
            pure_perm = Stream.from_seed(11, "f").permutation(m)
            want_tab = list(pure_perm.materialize())
        perm = Stream.from_seed(11, "f").permutation(m)
        xs = list(range(0, m, 3))
        assert perm.batch(xs) == [want_tab[x] for x in xs]
        assert perm.index_of_batch([want_tab[x] for x in xs]) == xs
        assert list(perm.materialize()) == want_tab
        assert sorted(want_tab) == list(range(m))


# ---------------------------------------------------------------------------
# gating and the escape hatch
# ---------------------------------------------------------------------------


class TestGating:
    def test_disabled_context_restores(self):
        before = kernels.available()
        with kernels.disabled():
            assert not kernels.available()
        assert kernels.available() == before

    def test_disabled_context_is_reentrant(self):
        with kernels.disabled():
            with kernels.disabled():
                assert not kernels.available()
            assert not kernels.available()

    @requires_numpy
    def test_thresholds_are_sane(self):
        assert kernels.MIN_BATCH >= 1
        assert kernels.FAIR_MIN_BATCH >= kernels.MIN_BATCH
        assert kernels.FEISTEL_MIN_BATCH >= 1


# ---------------------------------------------------------------------------
# protocol-level invariance
# ---------------------------------------------------------------------------


@requires_numpy
class TestProtocolInvariance:
    """Flipping the kernel backend must not change any experiment record."""

    def test_vertex_coloring_identical(self):
        scenario = Scenario(
            family="regular",
            params=(("d", 8), ("n", 128)),
            partition="random",
            protocol="vertex",
            seed=3,
        )
        part = build_partition(scenario)
        live = run_vertex_coloring(part, seed=3)
        with kernels.disabled():
            pure = run_vertex_coloring(part, seed=3)
        assert live.colors == pure.colors
        assert live.transcript.summary() == pure.transcript.summary()
        assert live.leftover_size == pure.leftover_size

    def test_scenario_record_identical(self):
        from repro.engine.scenarios import PROTOCOLS

        scenario = Scenario(
            family="gnp",
            params=(("n", 48), ("p", 0.2)),
            partition="random",
            protocol="vertex",
            backend="bitset",
        )
        part = build_partition(scenario)
        run = PROTOCOLS["vertex"].run
        live = run(part, scenario.effective_seed)
        with kernels.disabled():
            pure = run(part, scenario.effective_seed)
        assert live == pure
