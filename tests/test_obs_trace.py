"""Tracer unit tests: span nesting, torn tails, validation, export.

The trace file format is the observability contract the ``repro trace``
CLI and the Chrome export build on, so these tests pin it down at the
reader/writer level: spans nest LIFO and carry their parent ids, torn
tails (a killed run's half-written last line) never break the reader,
and the validator catches every structural violation it promises to.
"""

from __future__ import annotations

import json
import os

from repro.obs import (
    Tracer,
    read_trace,
    summarize_phases,
    summarize_spans,
    to_chrome,
    trace_spans,
    validate_trace,
)


def _fake_clock(step=0.25):
    """A deterministic monotonic clock advancing ``step`` per call."""
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def _nested_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, clock=_fake_clock()) as tracer:
        with tracer.span("sweep", scenarios=2):
            with tracer.span("scenario", scenario="a"):
                with tracer.span("protocol", protocol="vertex"):
                    pass
                tracer.event("phase", protocol="vertex",
                             phase="trial", bits=10, rounds=3)
            with tracer.span("scenario", scenario="b"):
                tracer.event("phase", protocol="vertex",
                             phase="trial", bits=5, rounds=2)
    return path


def test_span_nesting_parents_and_validity(tmp_path):
    entries = read_trace(_nested_trace(tmp_path))
    assert validate_trace(entries) == []
    begins = {e["id"]: e for e in entries if e["ev"] == "B"}
    sweep = next(e for e in begins.values() if e["name"] == "sweep")
    assert "parent" not in sweep  # top level
    scenarios = [e for e in begins.values() if e["name"] == "scenario"]
    assert all(e["parent"] == sweep["id"] for e in scenarios)
    protocol = next(e for e in begins.values() if e["name"] == "protocol")
    assert begins[protocol["parent"]]["name"] == "scenario"
    # Attrs round-trip, and every line is already flushed/parseable JSON.
    assert sweep["attrs"] == {"scenarios": 2}
    for line in (tmp_path / "trace.jsonl").read_text().splitlines():
        json.loads(line)


def test_instant_events_attach_to_innermost_open_span(tmp_path):
    entries = read_trace(_nested_trace(tmp_path))
    instants = [e for e in entries if e["ev"] == "I"]
    begins = {e["id"]: e for e in entries if e["ev"] == "B"}
    assert len(instants) == 2
    assert all(begins[e["parent"]]["name"] == "scenario" for e in instants)


def test_read_trace_tolerates_torn_tail_and_garbage(tmp_path):
    path = _nested_trace(tmp_path)
    clean = read_trace(path)
    with path.open("ab") as handle:
        handle.write(b'not json at all\n{"ev": "I", "name": "ok", "ts": 9}\n')
        handle.write(b'{"ev": "B", "id": 99, "name": "torn')  # no newline
    entries = read_trace(path)
    # The garbage line is skipped, the complete instant is kept, and the
    # torn tail is invisible — exactly JournalTail's policy.
    assert len(entries) == len(clean) + 1
    assert entries[-1]["name"] == "ok"


def test_validate_trace_reports_structural_violations():
    assert validate_trace([{"ev": "Z", "ts": 0}]) == [
        "line 1: unknown event kind 'Z'"
    ]
    dup = [
        {"ev": "B", "id": 1, "name": "a", "ts": 0},
        {"ev": "E", "id": 1, "name": "a", "ts": 1},
        {"ev": "B", "id": 1, "name": "b", "ts": 2},
        {"ev": "E", "id": 1, "name": "b", "ts": 3},
    ]
    assert any("duplicate span id 1" in p for p in validate_trace(dup))
    wrong_parent = [
        {"ev": "B", "id": 1, "name": "a", "ts": 0},
        {"ev": "B", "id": 2, "name": "b", "ts": 1, "parent": 7},
        {"ev": "E", "id": 2, "name": "b", "ts": 2},
        {"ev": "E", "id": 1, "name": "a", "ts": 3},
    ]
    assert any("parent 7" in p for p in validate_trace(wrong_parent))
    out_of_order = [
        {"ev": "B", "id": 1, "name": "a", "ts": 0},
        {"ev": "B", "id": 2, "name": "b", "ts": 1, "parent": 1},
        {"ev": "E", "id": 1, "name": "a", "ts": 2},
    ]
    assert any("out of order" in p for p in validate_trace(out_of_order))
    stale_instant = [
        {"ev": "B", "id": 1, "name": "a", "ts": 0},
        {"ev": "E", "id": 1, "name": "a", "ts": 1},
        {"ev": "I", "name": "late", "ts": 2, "parent": 1},
    ]
    assert any("closed span 1" in p for p in validate_trace(stale_instant))
    torn = [{"ev": "B", "id": 1, "name": "a", "ts": 0}]
    assert any("never closed" in p for p in validate_trace(torn))


def test_trace_spans_pairs_and_drops_unclosed(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(path, clock=_fake_clock(0.5))
    with tracer.span("closed"):
        pass
    # Simulate a kill mid-span: open a span, never close it, just stop.
    with tracer.span("victim"):
        tracer.close()  # file gone before the E could be written
    spans = trace_spans(read_trace(path))
    assert [s["name"] for s in spans] == ["closed"]
    assert spans[0]["dur"] == 0.5


def test_summarize_spans_aggregates_by_name(tmp_path):
    entries = read_trace(_nested_trace(tmp_path))
    rows = summarize_spans(entries)
    by_name = {r["span"]: r for r in rows}
    assert by_name["scenario"]["count"] == 2
    assert by_name["sweep"]["count"] == 1
    # Sorted by total duration descending — the outermost span dominates.
    assert rows[0]["span"] == "sweep"
    for row in rows:
        assert row["total_s"] >= row["max_s"] >= row["mean_s"] > 0


def test_summarize_phases_sums_ledger_attrs(tmp_path):
    entries = read_trace(_nested_trace(tmp_path))
    rows = summarize_phases(entries)
    assert rows == [
        {"protocol": "vertex", "phase": "trial",
         "bits": 15, "rounds": 5, "runs": 2}
    ]


def test_to_chrome_export_shape(tmp_path):
    entries = read_trace(_nested_trace(tmp_path))
    document = to_chrome(entries)
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 4 and len(instants) == 2
    assert all(e["dur"] > 0 for e in complete)
    assert all(e["s"] == "t" for e in instants)
    # Microsecond timestamps, globally sorted (what the viewer expects).
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    json.dumps(document)  # must be serializable as-is


def test_tracer_is_silent_in_forked_children(tmp_path, monkeypatch):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(path)
    with tracer.span("parent"):
        pass
    before = path.read_bytes()
    # Pretend we are a forked worker: every write path must be a no-op so
    # children can never interleave bytes into the coordinator's file.
    monkeypatch.setattr(os, "getpid", lambda: tracer._pid + 1)
    with tracer.span("child-span", x=1):
        tracer.event("child-event")
    tracer.close()
    assert path.read_bytes() == before
    monkeypatch.undo()
    tracer.close()
