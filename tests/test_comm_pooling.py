"""Pool-safety tests for the allocation-free comm hot path.

The count wire recycles keyed batch dicts across ``parallel`` rounds, and
the ``Msg`` wire serves small messages from shared intern tables.  Both are
only sound under specific lifetime rules (see the ``repro.comm.transport``
module docstring):

* an interned ``Msg`` may be aliased between concurrent sends because it is
  frozen — it can never be mutated at all;
* a pooled batch buffer may be recycled only once it is provably out of
  flight: the *last*-yielded buffer of a ``parallel`` invocation is dropped
  to the GC, never returned to the freelist;
* payloads are never pooled — whatever a sub-protocol receives it may
  retain forever.

These tests drive the pooled generator by hand to pin the buffer lifecycle
(including a mutate-after-recycle regression test), and run multi-iteration
protocols on the count wire against the fresh-allocation lockstep reference
to show slot reuse changes nothing observable.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.comm import TRANSPORTS
from repro.comm.messages import EMPTY_MSG, Msg, intern_msg
from repro.comm.transport import CountChannel, _CountBatch

# ---------------------------------------------------------------------------
# Msg interning: aliasing is safe because mutation is impossible
# ---------------------------------------------------------------------------


def test_interned_messages_are_shared_and_equal_to_fresh():
    assert intern_msg(5, 3) is intern_msg(5, 3)
    assert intern_msg(5, 3) == Msg(5, 3)
    assert intern_msg(7) is intern_msg(7)
    assert intern_msg(7) == Msg(7)
    assert intern_msg(0) is EMPTY_MSG is Msg.empty()


def test_interned_messages_cannot_be_mutated():
    """The aliasing contract: a shared Msg can never change under a peer."""
    msg = intern_msg(4, 2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.payload = 99  # type: ignore[misc]
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.nbits = 0  # type: ignore[misc]
    # Fresh (non-interned) messages are just as frozen.
    big = Msg(4096, 2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        big.payload = 99  # type: ignore[misc]


def test_out_of_range_shapes_fall_back_to_fresh_but_equal_msgs():
    assert intern_msg(4096, None) == Msg(4096)
    assert intern_msg(8, 1_000_000) == Msg(8, 1_000_000)
    assert intern_msg(8, "payload") == Msg(8, "payload")
    with pytest.raises(ValueError):
        intern_msg(-1)


# ---------------------------------------------------------------------------
# pooled parallel buffers: lifecycle, driven by hand
# ---------------------------------------------------------------------------


def _echo(ch, vals):
    got = []
    for v in vals:
        reply = yield from ch.send(4, v)
        got.append(reply)
    return got


def _drive(ch, subprotocols, incoming_per_round):
    """Run ``ch.parallel`` by hand; returns (yielded batches, results)."""
    gen = ch.parallel(subprotocols)
    batches = [next(gen)]
    for incoming in incoming_per_round:
        try:
            batches.append(gen.send(_CountBatch(incoming)))
        except StopIteration as stop:
            return batches, stop.value
    raise AssertionError("parallel did not finish on schedule")


def test_last_yielded_buffer_is_never_recycled():
    """Mutate-after-recycle regression: the in-flight batch stays intact.

    The transport advances the sender before the receiver consumes its
    item, so the batch yielded in the final round may still be in flight
    when ``parallel`` returns.  If it were returned to the freelist, the
    next invocation would clear and refill an object the peer is still
    reading — exactly the aliasing bug this test pins.
    """
    ch = CountChannel()
    batches, results = _drive(
        ch,
        {"x": (_echo, [1, 2]), "y": (_echo, [5])},
        [{"x": 10, "y": 20}, {"x": 30}],
    )
    assert results == {"x": [10, 30], "y": [20]}
    final = batches[-1]
    assert dict(final) == {"x": 2}

    # One buffer went back to the freelist; the final (in-flight) one must
    # not be it.
    assert len(ch._pool) == 1
    assert ch._pool[0] is not final

    # A second invocation churns the pool; the retained in-flight batch is
    # still bit-for-bit what was sent.
    _drive(ch, {"x": (_echo, [7, 8, 9])}, [{"x": 1}, {"x": 2}, {"x": 3}])
    assert dict(final) == {"x": 2}


def test_second_invocation_reuses_the_freed_buffer():
    ch = CountChannel()
    batches1, _ = _drive(
        ch,
        {"x": (_echo, [1, 2]), "y": (_echo, [5])},
        [{"x": 10, "y": 20}, {"x": 30}],
    )
    recycled = ch._pool[0]
    # The freed buffer is one this invocation actually yielded earlier
    # (delivered two rounds before the end, hence provably out of flight).
    assert any(b is recycled for b in batches1[:-1])

    batches2, _ = _drive(ch, {"z": (_echo, [4])}, [{"z": 6}])
    assert batches2[0] is recycled
    assert dict(batches2[0]) == {"z": 4}  # cleared + refilled for round 1


def test_zero_round_parallel_returns_both_buffers_to_the_pool():
    def instant(ch):
        return []
        yield  # pragma: no cover - makes this a generator

    ch = CountChannel()
    gen = ch.parallel({"a": instant, "b": instant})
    with pytest.raises(StopIteration) as stop:
        next(gen)
    assert stop.value.value == {"a": [], "b": []}
    # Nothing hit the wire, so both checked-out buffers are reusable.
    assert len(ch._pool) == 2


# ---------------------------------------------------------------------------
# slot reuse vs the fresh-allocation reference (full transports)
# ---------------------------------------------------------------------------


def _iterated_parallel(ch, role, iterations, keys):
    """Many sequential ``parallel`` invocations on one channel.

    Each iteration reuses the channel's pooled buffers; any leakage of
    state across iterations (stale keys, uncleared payloads, bad
    compaction) would change the results or the transcript.
    """
    seen = []
    for it in range(iterations):
        with ch.phase(f"iter{it % 3}"):
            results = yield from ch.parallel(
                {
                    key: (_echo, [(it * 31 + key * 7 + j) % 13 for j in range(1 + (key + it) % 3)])
                    for key in keys
                }
            )
        seen.append(sorted(results.items()))
    return seen


def test_buffer_reuse_matches_fresh_allocation_reference():
    spec_a = (_iterated_parallel, "alice", 12, list(range(5)))
    spec_b = (_iterated_parallel, "bob", 12, list(range(5)))

    outcomes = {}
    for name in sorted(TRANSPORTS):
        core = TRANSPORTS[name]
        a, b, transcript = core.run(spec_a, spec_b, core.new_transcript())
        outcomes[name] = (a, b, transcript.fingerprint())

    assert outcomes["count"] == outcomes["lockstep"] == outcomes["strict"]


def _retainer(ch, n):
    """Keeps every received payload; returns them all at the end."""
    kept = []
    for i in range(n):
        reply = yield from ch.send(8, i)
        kept.append(reply)
    return kept


def _sender_of_lists(ch, n, tag):
    for i in range(n):
        yield from ch.send(8, [tag, i])
    return None


def test_received_payloads_survive_pool_churn():
    """Payloads are never pooled: what a sub-protocol keeps, it keeps.

    Alice's sub-protocols send fresh list payloads each round; Bob's
    retain every one.  After the run — with the pooled batch dicts having
    been cleared and recycled many times — each retained list must still
    hold exactly what was sent in its round.
    """
    keys = list(range(4))
    rounds = 9

    def alice(ch):
        result = yield from ch.parallel(
            {k: (_sender_of_lists, rounds, k) for k in keys}
        )
        return result

    def bob(ch):
        result = yield from ch.parallel({k: (_retainer, rounds) for k in keys})
        return result

    core = TRANSPORTS["count"]
    _, kept, _ = core.run(alice, bob, core.new_transcript())
    for k in keys:
        assert kept[k] == [[k, i] for i in range(rounds)]
