"""Tests for the Lemma 5.4 cover-colors message."""

from __future__ import annotations

import math

import pytest

from repro.core import build_cover_message, decode_cover_message


def random_available(rng, vertices, palette, min_fraction=1 / 3):
    """Random availability sets each containing ≥ min_fraction of the palette."""
    need = math.ceil(len(palette) * min_fraction)
    return {
        v: set(rng.sample(palette, rng.randint(need, len(palette))))
        for v in vertices
    }


class TestBuildAndDecode:
    def test_round_trip_assigns_available_color(self, rng):
        palette = list(range(10, 25))  # 15 colors, like Bob's palette at Δ=16
        for _ in range(30):
            vertices = rng.sample(range(100), rng.randint(1, 40))
            available = random_available(rng, vertices, palette)
            msg = build_cover_message(vertices, available, palette)
            assignment = decode_cover_message(vertices, msg)
            assert set(assignment) == set(vertices)
            for v, color in assignment.items():
                assert color in available[v]
                assert color in palette

    def test_empty_vertex_set(self):
        msg = build_cover_message([], {}, [1, 2, 3])
        assert msg.colors == ()
        assert decode_cover_message([], msg) == {}

    def test_message_size_linear(self, rng):
        """Lemma 5.4: O(n) bits total despite O(log n) cover rounds."""
        palette = list(range(1, 16))
        sizes = []
        for n in (50, 100, 200, 400):
            vertices = list(range(n))
            available = random_available(rng, vertices, palette)
            msg = build_cover_message(vertices, available, palette)
            sizes.append(msg.nbits / n)
        # Per-vertex cost roughly flat (geometric series ≤ 3n + color ids).
        assert max(sizes) <= 2 * min(sizes) + 8

    def test_cover_iterations_logarithmic(self, rng):
        palette = list(range(1, 16))
        vertices = list(range(500))
        available = random_available(rng, vertices, palette)
        msg = build_cover_message(vertices, available, palette)
        assert len(msg.colors) <= 3 * math.log2(500) + 5

    def test_rejects_empty_availability(self):
        with pytest.raises(ValueError):
            build_cover_message([0], {0: set()}, [1, 2])

    def test_decode_rejects_wrong_vertex_set(self, rng):
        palette = [1, 2, 3]
        available = {0: {1}, 1: {2}}
        msg = build_cover_message([0, 1], available, palette)
        with pytest.raises(ValueError):
            decode_cover_message([0, 1, 2], msg)

    def test_singleton_availability_worst_case(self):
        # Each vertex accepts exactly one distinct color: the cover needs
        # one round per color but must still terminate and assign.
        palette = [1, 2, 3, 4]
        vertices = [10, 11, 12, 13]
        available = {10 + i: {palette[i]} for i in range(4)}
        msg = build_cover_message(vertices, available, palette)
        assignment = decode_cover_message(vertices, msg)
        assert assignment == {10: 1, 11: 2, 12: 3, 13: 4}
