"""Cross-validation against networkx (when available) and internal
differential checks between independent implementations."""

from __future__ import annotations


import pytest

from repro.coloring import (
    fournier_edge_coloring,
    greedy_vertex_coloring,
    vizing_edge_coloring,
)
from repro.core import run_edge_coloring, run_vertex_coloring, run_zero_comm_edge_coloring
from repro.graphs import (
    gnp_random_graph,
    partition_random,
    random_regular_graph,
)

from .conftest import make_fournier_instance

networkx = pytest.importorskip("networkx")


def to_networkx(graph):
    g = networkx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestAgainstNetworkx:
    def test_greedy_color_counts_comparable(self, rng):
        """Our Δ+1 greedy never uses more colors than nx's largest-first
        greedy plus the Δ+1 guarantee."""
        for _ in range(20):
            g = gnp_random_graph(rng.randint(2, 30), rng.random() * 0.6, rng)
            ours = greedy_vertex_coloring(g)
            nx_colors = networkx.greedy_color(to_networkx(g), strategy="largest_first")
            assert max(ours.values()) <= g.max_degree() + 1
            # Both are greedy heuristics; they must land in the same band.
            assert max(ours.values()) <= g.max_degree() + 1
            assert (max(nx_colors.values()) + 1) <= g.max_degree() + 1

    def test_vertex_protocol_color_count_within_delta_plus_one(self, rng):
        g = random_regular_graph(60, 8, rng)
        part = partition_random(g, rng)
        res = run_vertex_coloring(part, seed=5)
        assert len(set(res.colors.values())) <= 9

    def test_max_degree_agrees_with_networkx(self, rng):
        for _ in range(20):
            g = gnp_random_graph(rng.randint(1, 30), rng.random(), rng)
            nxg = to_networkx(g)
            nx_delta = max((d for _, d in nxg.degree()), default=0)
            assert g.max_degree() == nx_delta

    def test_connectedness_independent_check(self, rng):
        # Sanity: our generators produce the edge multiset we think.
        g = gnp_random_graph(25, 0.3, rng)
        assert set(g.edges()) == set(map(tuple, map(sorted, to_networkx(g).edges())))


class TestDifferentialInternal:
    """Independent implementations must agree on invariant quantities."""

    def test_vizing_and_fournier_agree_on_class_one_instances(self, rng):
        for _ in range(20):
            g = make_fournier_instance(rng.randint(2, 24), rng.random(), rng)
            delta = g.max_degree()
            if delta == 0:
                continue
            fournier = fournier_edge_coloring(g)
            vizing = vizing_edge_coloring(g)
            # Same edges colored; Fournier uses at most Δ, Vizing at most Δ+1.
            assert set(fournier) == set(vizing) == set(g.edges())
            assert max(fournier.values()) <= delta
            assert max(vizing.values()) <= delta + 1

    def test_theorem2_and_theorem3_color_same_edge_sets(self, rng):
        g = random_regular_graph(40, 9, rng)
        part = partition_random(g, rng)
        thm2 = run_edge_coloring(part)
        thm3 = run_zero_comm_edge_coloring(part)
        assert set(thm2.colors) == set(thm3.colors) == set(g.edges())

    def test_protocol_matches_local_color_budget(self, rng):
        """The two-party Theorem 2 coloring never uses more colors than the
        zero-communication Theorem 3 coloring's budget minus one."""
        g = random_regular_graph(40, 10, rng)
        part = partition_random(g, rng)
        thm2 = run_edge_coloring(part)
        thm3 = run_zero_comm_edge_coloring(part)
        assert max(thm2.colors.values()) <= 2 * 10 - 1
        assert max(thm3.colors.values()) <= 2 * 10
