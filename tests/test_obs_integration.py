"""Observability end-to-end: canonical artifacts are byte-identical.

The headline invariant of the ``repro.obs`` subsystem — observers write
only to their own files, and ``sweep.json`` is a pure function of the
grid with or without them — is pinned here at three levels: the engine
API (serial sweep), the dispatcher under an injected worker kill
(reusing the fault-injection harness), and the CLI flags end to end.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dispatch import DispatchConfig
from repro.dispatch.progress import ShardProgress
from repro.engine import (
    SweepEvent,
    iter_scenarios,
    smoke_scenarios,
    sweep,
    write_results,
)
from repro.engine.sharding import Journal
from repro.obs import NULL_OBSERVER, get_observer, observing, read_trace
from tests.test_dispatch_fault_injection import (
    ScriptedExecutor,
    _biggest_shard,
    _coordinator,
    _serial_bytes,
)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _src_on_worker_path(monkeypatch):
    existing = os.environ.get("PYTHONPATH", "")
    if _SRC not in existing.split(os.pathsep):
        merged = f"{_SRC}{os.pathsep}{existing}" if existing else _SRC
        monkeypatch.setenv("PYTHONPATH", merged)


def _grid():
    return list(
        iter_scenarios(smoke_scenarios(), pattern="vertex/regular")
    )


def test_null_observer_is_the_default_and_allocation_free():
    obs = get_observer()
    assert obs is NULL_OBSERVER
    assert obs.enabled is False
    # The disabled span path hands back one shared context object — no
    # per-call allocation on the hot path.
    assert obs.span("a") is obs.span("b", attrs="ignored")


def test_serial_sweep_bytes_identical_traced_vs_untraced(tmp_path):
    grid = _grid()
    plain_json, _ = write_results(sweep(grid, jobs=1), tmp_path / "plain")
    with observing(
        trace=tmp_path / "trace.jsonl", metrics=tmp_path / "metrics.json"
    ):
        traced_json, _ = write_results(
            sweep(grid, jobs=1), tmp_path / "traced"
        )
    # sweep.json is the canonical artifact: identical bytes, observed or
    # not.  (sweep.md renders live wall-clock timings by design, so it —
    # like any two runs' markdown — differs in the secs column only.)
    assert traced_json.read_bytes() == plain_json.read_bytes()
    # ... and the observer really observed: full span depth plus one
    # phase instant per protocol run.
    entries = read_trace(tmp_path / "trace.jsonl")
    names = {e["name"] for e in entries if e["ev"] == "B"}
    assert {"sweep", "scenario", "protocol"} <= names
    assert any(e["ev"] == "I" and e["name"] == "phase" for e in entries)
    document = json.loads((tmp_path / "metrics.json").read_text())
    assert document["counters"]["protocol.vertex.runs"] == len(grid)


def test_dispatch_with_injected_kill_bytes_identical_observed(tmp_path):
    # The dispatcher under observation, with a worker SIGKILLed mid-shard:
    # retries/kill counters are collected, the trace records shard events,
    # and the merged sweep.json still matches the serial bytes exactly.
    executor = ScriptedExecutor()
    coordinator = _coordinator(
        tmp_path,
        executor,
        DispatchConfig(workers=2, shards=2, backoff=0.05),
    )
    victim = _biggest_shard(coordinator)
    executor.wrap[(victim.shard_id, 1)] = "selfkill"

    with observing(
        trace=tmp_path / "trace.jsonl", metrics=tmp_path / "metrics.json"
    ):
        _, json_path, _ = coordinator.run()

    assert json_path.read_bytes() == _serial_bytes(tmp_path)
    document = json.loads((tmp_path / "metrics.json").read_text())
    counters, gauges = document["counters"], document["gauges"]
    assert counters["dispatch.retries"] == 1
    assert counters["dispatch.launches"] == victim.attempts + 1
    assert counters["dispatch.shards_merged"] == 2
    assert gauges["dispatch.shards"] == 2
    assert gauges["dispatch.merge_tree_depth"] >= 1
    events = {
        e["name"] for e in read_trace(tmp_path / "trace.jsonl")
        if e["ev"] == "I"
    }
    assert {"shard_launched", "shard_retry", "shard_merged"} <= events


def test_sweep_progress_is_structured_events():
    grid = _grid()[:2]
    events: list[SweepEvent] = []
    sweep(grid, jobs=1, reps=2, progress=events.append)
    kinds = [e.kind for e in events]
    assert kinds == ["rep", "rep", "scenario", "rep", "rep", "scenario"]
    reps = [e for e in events if e.kind == "rep"]
    assert all(e.elapsed is not None and e.elapsed >= 0 for e in reps)
    assert re.fullmatch(
        r".+ rep 1/2 \(\d+\.\d\ds\)", str(reps[0])
    ), str(reps[0])
    done = [e for e in events if e.kind == "scenario"]
    assert [(e.completed, e.total) for e in done] == [(1, 2), (2, 2)]
    assert all(e.ok for e in done)
    assert re.fullmatch(
        r"done .+ \(\d/2, \d+\.\d\ds\)", str(done[0])
    ), str(done[0])


def test_journal_elapsed_is_entry_level_not_in_record(tmp_path):
    grid = _grid()[:2]
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        sweep(grid, jobs=1, journal=journal)
    entries = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    assert entries
    for entry in entries:
        assert isinstance(entry["elapsed"], float)
        assert "elapsed" not in entry["record"]
        assert "wall_time_s" not in entry["record"]


def test_shard_progress_renders_rates_from_elapsed(tmp_path):
    journal = tmp_path / "journal.jsonl"
    lines = [
        {"scenario": "a", "record": {}, "elapsed": 2.0},
        {"scenario": "b", "rep": 0, "reps": 2, "record": {}, "elapsed": 4.0},
        {"scenario": "c", "record": {}},  # old worker: no elapsed field
    ]
    journal.write_text(
        "".join(json.dumps(line) + "\n" for line in lines)
    )
    progress = ShardProgress(3, journal, total=3)
    messages = list(progress.poll())
    assert messages[0] == "[shard 3] done a (1/3) (2.00s, 2.00s/unit)"
    assert messages[1] == "[shard 3] b rep 1/2 (4.00s, 3.00s/unit)"
    assert messages[2] == "[shard 3] done c (2/3)"  # timing-free, as before


def _run_cli(args, cwd):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if _SRC not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{_SRC}{os.pathsep}{existing}" if existing else _SRC
        )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


SELECTION = ["--smoke", "--filter", "edge_zero_comm", "--jobs", "1"]


def test_cli_traced_sweep_bytes_and_trace_subcommand(tmp_path):
    plain = _run_cli(["sweep", *SELECTION, "--out", "plain"], tmp_path)
    assert plain.returncode == 0, plain.stderr
    traced = _run_cli(
        ["sweep", *SELECTION, "--out", "traced",
         "--trace", "trace.jsonl", "--metrics", "metrics.json"],
        tmp_path,
    )
    assert traced.returncode == 0, traced.stderr
    assert (tmp_path / "traced" / "sweep.json").read_bytes() == (
        tmp_path / "plain" / "sweep.json"
    ).read_bytes()
    # Progress lines are the stringified structured events.
    assert re.search(r"done edge_zero_comm\S* \(\d+/\d+, \d+\.\d\ds\)",
                     traced.stdout)

    summary = _run_cli(
        ["trace", "trace.jsonl", "--check",
         "--chrome", "chrome.json", "--json", "summary.json"],
        tmp_path,
    )
    assert summary.returncode == 0, summary.stderr
    assert "span summary" in summary.stdout
    chrome = json.loads((tmp_path / "chrome.json").read_text())
    assert chrome["traceEvents"]
    digest = json.loads((tmp_path / "summary.json").read_text())
    assert digest["problems"] == []
    assert any(s["span"] == "sweep" for s in digest["spans"])
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert "comm" in metrics and "wall_time_s" in metrics


def test_cli_trace_check_fails_on_invalid_file(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev": "B", "id": 1, "name": "open", "ts": 0.0}\n')
    tolerant = _run_cli(["trace", str(bad)], tmp_path)
    assert tolerant.returncode == 0  # report-only without --check
    assert "never closed" in tolerant.stderr
    strict = _run_cli(["trace", str(bad), "--check"], tmp_path)
    assert strict.returncode == 1
