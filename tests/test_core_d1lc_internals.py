"""White-box tests for D1LC protocol internals and its fallback path."""

from __future__ import annotations

import random

import pytest

from repro.comm import run_protocol
from repro.rand import Stream
from repro.core import d1lc_party
from repro.core.d1lc import _induced_on, _pack_colors, _unpack_colors
from repro.graphs import Graph, gnp_random_graph, is_proper_list_coloring, partition_random


class TestPacking:
    def test_pack_unpack_round_trip(self):
        active = [3, 7, 9]
        colors = {7: 2, 3: 5, 9: 1}
        packed = _pack_colors(colors, active)
        assert packed == (5, 2, 1)
        assert _unpack_colors(packed, active) == colors

    def test_pack_none(self):
        assert _pack_colors(None, [1, 2]) is None


class TestInducedOn:
    def test_relabels_and_filters(self):
        g = Graph(6, [(0, 1), (1, 4), (4, 5), (2, 3)])
        induced = _induced_on(g, [1, 4, 5])
        assert induced.n == 3
        assert induced.edge_list() == [(0, 1), (1, 2)]

    def test_empty_active(self):
        g = Graph(3, [(0, 1)])
        induced = _induced_on(g, [])
        assert induced.n == 0 and induced.m == 0


class TestForcedFallback:
    def test_fallback_path_still_correct(self, rng, monkeypatch):
        """Force Step 4 by making the sparsity threshold reject everything."""
        import repro.core.d1lc as d1lc_module

        monkeypatch.setattr(d1lc_module, "sparsity_threshold", lambda n: -1)

        g = gnp_random_graph(18, 0.3, rng)
        m = g.max_degree() + 1
        part = partition_random(g, rng)
        palette = set(range(1, m + 1))
        lists = {v: set(palette) for v in g.vertices()}
        active = list(g.vertices())
        a, b, t = run_protocol(
            d1lc_party("alice", part.alice_graph, lists, active, m,
                       Stream.from_seed(3), random.Random(3)),
            d1lc_party("bob", part.bob_graph, lists, active, m,
                       Stream.from_seed(3), random.Random(3)),
        )
        assert a == b
        assert is_proper_list_coloring(g, a, lists)
        # The fallback ships Bob's full instance: strictly more Bob→Alice
        # traffic than the colors Alice returns for tiny instances is not
        # guaranteed, but both directions must be non-trivial.
        assert t.bits_bob_to_alice > 0
        assert t.bits_alice_to_bob > 0

    def test_fallback_costs_more_than_sparsified_path(self, rng, monkeypatch):
        import repro.core.d1lc as d1lc_module

        g = gnp_random_graph(24, 0.4, rng)
        m = g.max_degree() + 1
        part = partition_random(g, rng)
        palette = set(range(1, m + 1))
        lists = {v: set(palette) for v in g.vertices()}
        active = list(g.vertices())

        def run():
            _, _, t = run_protocol(
                d1lc_party("alice", part.alice_graph, lists, active, m,
                           Stream.from_seed(4), random.Random(4)),
                d1lc_party("bob", part.bob_graph, lists, active, m,
                           Stream.from_seed(4), random.Random(4)),
            )
            return t.total_bits

        normal = run()
        monkeypatch.setattr(d1lc_module, "sparsity_threshold", lambda n: -1)
        fallback = run()
        assert fallback > normal


class TestValidation:
    def test_rejects_unknown_role(self, rng):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            next(
                d1lc_party("eve", g, {0: {1}, 1: {1}}, [0, 1], 2,
                           Stream.from_seed(0), rng)
            )
