"""Tests for the edge-coloring state and Kempe-chain inversion."""

from __future__ import annotations

import random

import pytest

from repro.coloring import EdgeColoringState
from repro.graphs import gnp_random_graph
from repro.graphs.validation import assert_proper_edge_coloring


class TestAssignments:
    def test_assign_and_query(self):
        s = EdgeColoringState(4, 3)
        s.assign(0, 1, 2)
        assert s.color_of(1, 0) == 2
        assert s.neighbor_via(0, 2) == 1
        assert not s.is_free(0, 2)
        assert s.is_free(0, 1)
        assert list(s.free_colors(0)) == [1, 3]
        assert s.some_free_color(0) == 1

    def test_double_assign_rejected(self):
        s = EdgeColoringState(3, 3)
        s.assign(0, 1, 1)
        with pytest.raises(ValueError):
            s.assign(0, 1, 2)

    def test_conflicting_assign_rejected(self):
        s = EdgeColoringState(3, 3)
        s.assign(0, 1, 1)
        with pytest.raises(ValueError):
            s.assign(1, 2, 1)

    def test_out_of_palette_rejected(self):
        s = EdgeColoringState(3, 2)
        with pytest.raises(ValueError):
            s.assign(0, 1, 3)

    def test_unassign_restores_freedom(self):
        s = EdgeColoringState(3, 3)
        s.assign(0, 1, 1)
        assert s.unassign(0, 1) == 1
        assert s.is_free(0, 1) and s.is_free(1, 1)

    def test_recolor(self):
        s = EdgeColoringState(3, 3)
        s.assign(0, 1, 1)
        s.recolor(0, 1, 3)
        assert s.color_of(0, 1) == 3

    def test_saturated_vertex_has_no_free_color(self):
        s = EdgeColoringState(4, 2)
        s.assign(0, 1, 1)
        s.assign(0, 2, 2)
        assert s.some_free_color(0) is None


class TestKempeInversion:
    def test_flips_a_path(self):
        # path 0-1-2-3 alternately colored 1,2,1
        s = EdgeColoringState(4, 2)
        s.assign(0, 1, 1)
        s.assign(1, 2, 2)
        s.assign(2, 3, 1)
        path = s.invert_kempe_path(0, 2, 1)
        assert path == [0, 1, 2, 3]
        assert s.color_of(0, 1) == 2
        assert s.color_of(1, 2) == 1
        assert s.color_of(2, 3) == 2

    def test_no_edge_of_either_color_is_noop(self):
        s = EdgeColoringState(3, 3)
        s.assign(0, 1, 3)
        assert s.invert_kempe_path(0, 1, 2) == [0]
        assert s.color_of(0, 1) == 3

    def test_rejects_vertex_with_both_colors(self):
        s = EdgeColoringState(4, 2)
        s.assign(0, 1, 1)
        s.assign(0, 2, 2)
        with pytest.raises(ValueError):
            s.invert_kempe_path(0, 1, 2)

    def test_rejects_equal_colors(self):
        s = EdgeColoringState(2, 2)
        with pytest.raises(ValueError):
            s.invert_kempe_path(0, 1, 1)

    def test_inversion_preserves_properness(self):
        rng = random.Random(9)
        for _ in range(50):
            g = gnp_random_graph(rng.randint(2, 14), rng.random(), rng)
            k = g.max_degree() + 1
            if k < 2:
                continue
            s = EdgeColoringState(g.n, k)
            # Greedy-fill a partial coloring.
            for u, v in g.edge_list():
                free = next(
                    (c for c in s.free_colors(u) if s.is_free(v, c)), None
                )
                if free is not None:
                    s.assign(u, v, free)
            start = rng.randrange(g.n)
            alpha, beta = rng.sample(range(1, k + 1), 2)
            if not s.is_free(start, alpha) and not s.is_free(start, beta):
                continue
            s.invert_kempe_path(start, alpha, beta)
            colored = s.colors()
            sub = g.subgraph_edges(colored.keys())
            assert_proper_edge_coloring(sub, colored, k)
