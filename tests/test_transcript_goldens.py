"""Pinned transcript golden digests for every smoke scenario × transport.

The comm layer's one hard contract is that all three transports produce
bit-for-bit identical transcripts — and that refactors of the comm
machinery (pooling, interning, segment accounting) change *nothing* about
the recorded schedule.  The parity suite checks transports against each
other, which catches relative divergence but not a refactor that shifts
every transport the same way.  These goldens pin the absolute contents:
sha256 digests of each scenario's canonical transcript serialization
(:meth:`repro.comm.ledger.Transcript.fingerprint`), in the same
golden-digest style ``tests/test_rand_core.py`` uses for stream prefixes.

If a change legitimately alters schedules or accounting (e.g. a protocol
change, new draw order), re-pin by running this file's ``_regenerate``
helper and reviewing the diff — the point is that it fails *loudly*.
"""

from __future__ import annotations

import pytest

from repro.comm import TRANSPORTS
from repro.core import (
    run_edge_coloring,
    run_vertex_coloring,
    run_zero_comm_edge_coloring,
)
from repro.engine import smoke_scenarios
from repro.engine.runner import build_partition

ALL_TRANSPORTS = sorted(TRANSPORTS)

#: Drivers by protocol name, returning the result object with .transcript.
DRIVERS = {
    "vertex": lambda part, seed, t: run_vertex_coloring(
        part, seed=seed, transport=t
    ),
    "edge": lambda part, seed, t: run_edge_coloring(part, transport=t),
    "edge_zero_comm": lambda part, seed, t: run_zero_comm_edge_coloring(
        part, transport=t
    ),
}

#: Transport-invariant digests (summary + per-phase stats, no round log).
#: Every transport must reproduce these bit-for-bit.
AGGREGATE = {
    "vertex/regular(d=8,n=64)/random/set":
        "01d57b702a3c0a71fdf6172267377d8bc6b1043f6547e226ecc4c0c53378364f",
    "vertex/regular(d=8,n=64)/random/bitset":
        "01d57b702a3c0a71fdf6172267377d8bc6b1043f6547e226ecc4c0c53378364f",
    "vertex/regular(d=8,n=64)/random/csr":
        "01d57b702a3c0a71fdf6172267377d8bc6b1043f6547e226ecc4c0c53378364f",
    "vertex/regular(d=8,n=64)/all_alice/set":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "vertex/regular(d=8,n=64)/all_alice/bitset":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "vertex/regular(d=8,n=64)/all_alice/csr":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "vertex/regular(d=8,n=64)/degree_split/set":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "vertex/regular(d=8,n=64)/degree_split/bitset":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "vertex/regular(d=8,n=64)/degree_split/csr":
        "35a3443576df28a06d898eb134999b9a4b6babc493388720001b17cafa23b925",
    "edge/regular(d=8,n=64)/random/set":
        "51749bdab8f33ed2ba0dd81351b1625f9b894f0619b64ea9ad8eb6f1096036db",
    "edge/regular(d=8,n=64)/random/bitset":
        "51749bdab8f33ed2ba0dd81351b1625f9b894f0619b64ea9ad8eb6f1096036db",
    "edge/regular(d=8,n=64)/random/csr":
        "51749bdab8f33ed2ba0dd81351b1625f9b894f0619b64ea9ad8eb6f1096036db",
    "edge/regular(d=8,n=64)/all_alice/set":
        "935606a481ba4441116653e8590e680e7bb4549400b7ff5765fce1f74442d471",
    "edge/regular(d=8,n=64)/all_alice/bitset":
        "935606a481ba4441116653e8590e680e7bb4549400b7ff5765fce1f74442d471",
    "edge/regular(d=8,n=64)/all_alice/csr":
        "935606a481ba4441116653e8590e680e7bb4549400b7ff5765fce1f74442d471",
    "edge/regular(d=8,n=64)/degree_split/set":
        "a35d87898b7f4ebf2809438ce9b1a9b9a346abfe4391187f41b9c9a25e7e1c7c",
    "edge/regular(d=8,n=64)/degree_split/bitset":
        "a35d87898b7f4ebf2809438ce9b1a9b9a346abfe4391187f41b9c9a25e7e1c7c",
    "edge/regular(d=8,n=64)/degree_split/csr":
        "a35d87898b7f4ebf2809438ce9b1a9b9a346abfe4391187f41b9c9a25e7e1c7c",
    "edge_zero_comm/regular(d=8,n=64)/random/set":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/random/bitset":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/random/csr":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/set":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/bitset":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/csr":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/set":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/bitset":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/csr":
        "44d6d77daef12fa369f87164471c96b0d1a204a7c12d3e5d76770cfc60172fb5",
    "vertex/gnp(n=48,p=0.2)/random/bitset":
        "3ce69584db0d0d6d752ef977ab8c53639aa0e1fe74dfd9b06404c340c11b2155",
    "edge/hypercube(dimension=5)/crossing/bitset":
        "bacefeb31fb9b0247cc9dd080584e44eab7d7839505f34a3da391e5fdf91c1ae",
    "edge/conflict(d_base=8,d_overlay=4,half=64)/random/csr":
        "8d68ce1e5adc6dfc905e809ae911379a72abd3dec961acfd7c00075b604fc1d9",
}

#: Digests including the per-round log, pinning the round-by-round
#: schedule.  Only the log-keeping transports (lockstep, strict) can
#: reproduce these; the count transport deliberately keeps no log.
WITH_LOG = {
    "vertex/regular(d=8,n=64)/random/set":
        "8de1c7e5430f8744fc6fbc4e1a085cfc8674783606e4662369eb797664858cd1",
    "vertex/regular(d=8,n=64)/random/bitset":
        "8de1c7e5430f8744fc6fbc4e1a085cfc8674783606e4662369eb797664858cd1",
    "vertex/regular(d=8,n=64)/random/csr":
        "8de1c7e5430f8744fc6fbc4e1a085cfc8674783606e4662369eb797664858cd1",
    "vertex/regular(d=8,n=64)/all_alice/set":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "vertex/regular(d=8,n=64)/all_alice/bitset":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "vertex/regular(d=8,n=64)/all_alice/csr":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "vertex/regular(d=8,n=64)/degree_split/set":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "vertex/regular(d=8,n=64)/degree_split/bitset":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "vertex/regular(d=8,n=64)/degree_split/csr":
        "3dd416b1dbebe5d72eb128ae0baa1acb075ed5c20f03077dc6d34d39bfaed9d9",
    "edge/regular(d=8,n=64)/random/set":
        "1d0acaff53a28269298e6cea2d3e02994ab75b73c79280066768caa795747261",
    "edge/regular(d=8,n=64)/random/bitset":
        "1d0acaff53a28269298e6cea2d3e02994ab75b73c79280066768caa795747261",
    "edge/regular(d=8,n=64)/random/csr":
        "1d0acaff53a28269298e6cea2d3e02994ab75b73c79280066768caa795747261",
    "edge/regular(d=8,n=64)/all_alice/set":
        "e804bc0eb4bdeb38ea368323eb6762f9ec8d5e9ad16cd4d6aa19213a8f4f62f7",
    "edge/regular(d=8,n=64)/all_alice/bitset":
        "e804bc0eb4bdeb38ea368323eb6762f9ec8d5e9ad16cd4d6aa19213a8f4f62f7",
    "edge/regular(d=8,n=64)/all_alice/csr":
        "e804bc0eb4bdeb38ea368323eb6762f9ec8d5e9ad16cd4d6aa19213a8f4f62f7",
    "edge/regular(d=8,n=64)/degree_split/set":
        "12fd150863cd364a2fd22e5403151923c76612c16799a248ce8df7986e2f0538",
    "edge/regular(d=8,n=64)/degree_split/bitset":
        "12fd150863cd364a2fd22e5403151923c76612c16799a248ce8df7986e2f0538",
    "edge/regular(d=8,n=64)/degree_split/csr":
        "12fd150863cd364a2fd22e5403151923c76612c16799a248ce8df7986e2f0538",
    "edge_zero_comm/regular(d=8,n=64)/random/set":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/random/bitset":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/random/csr":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/set":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/bitset":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/all_alice/csr":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/set":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/bitset":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "edge_zero_comm/regular(d=8,n=64)/degree_split/csr":
        "20a0cd152987678ae6d244032ffe175e7a1ed42d77a50e77f1d75ce22a3a5cea",
    "vertex/gnp(n=48,p=0.2)/random/bitset":
        "0294724a28a8584bcf5cfd59df9a8399c410b2a0ca481cee8556fd4853d94ec2",
    "edge/hypercube(dimension=5)/crossing/bitset":
        "e82074764cfbd972c20e9c1258a069e34ce0d41ff136d854eef53f0166babd3a",
    "edge/conflict(d_base=8,d_overlay=4,half=64)/random/csr":
        "aa7cd0b24754b9296af1715d408d89323003c993bce8039961342512a0505d42",
}


def _regenerate():  # pragma: no cover - maintenance helper
    """Print fresh golden tables (run manually after an intended change)."""
    for table, with_log in (("AGGREGATE", False), ("WITH_LOG", True)):
        print(f"{table} = {{")
        for scenario in smoke_scenarios():
            part = build_partition(scenario)
            result = DRIVERS[scenario.protocol](
                part, scenario.effective_seed, "lockstep"
            )
            digest = result.transcript.fingerprint(with_log=with_log)
            print(f'    "{scenario.name}":\n        "{digest}",')
        print("}")


def test_golden_tables_cover_exactly_the_smoke_grid():
    """Stale or missing golden keys fail before any scenario runs."""
    names = {scenario.name for scenario in smoke_scenarios()}
    assert set(AGGREGATE) == names
    assert set(WITH_LOG) == names


@pytest.mark.parametrize("scenario", smoke_scenarios(), ids=lambda s: s.name)
def test_transcript_matches_golden_on_every_transport(scenario):
    part = build_partition(scenario)
    driver = DRIVERS[scenario.protocol]
    for transport in ALL_TRANSPORTS:
        result = driver(part, scenario.effective_seed, transport)
        transcript = result.transcript
        assert transcript.fingerprint() == AGGREGATE[scenario.name], transport
        if transport == "count":
            # The count transport keeps no log by contract; everything
            # else it records must still match the reference exactly.
            assert transcript.round_log == []
        else:
            assert (
                transcript.fingerprint(with_log=True) == WITH_LOG[scenario.name]
            ), transport
            assert len(transcript.round_log) == transcript.rounds


def test_fingerprint_is_accumulation_order_invariant():
    """Phases hash sorted by name, so attribution order cannot leak in."""
    from repro.comm.ledger import Transcript

    a = Transcript(record_log=False)
    a.record_segment(3, 4, 2, 3, ("p", "q"))
    a.record_segment(1, 0, 1, 1, ("r",))
    b = Transcript(record_log=False)
    b.record_segment(1, 0, 1, 1, ("r",))
    b.record_segment(3, 4, 2, 3, ("q", "p"))
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_with_log_pins_the_schedule():
    """Same aggregates, different round profile → same aggregate digest,
    different with-log digest."""
    from repro.comm.ledger import Transcript

    a = Transcript()
    a.record_round(2, 0)
    a.record_round(1, 3)
    b = Transcript()
    b.record_round(1, 3)
    b.record_round(2, 0)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint(with_log=True) != b.fingerprint(with_log=True)
