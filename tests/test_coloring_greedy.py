"""Tests for greedy colorings and the list-coloring solver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    greedy_d1lc_coloring,
    greedy_edge_coloring,
    greedy_vertex_coloring,
    solve_list_coloring,
)
from repro.graphs import (
    Graph,
    assert_proper_edge_coloring,
    assert_proper_vertex_coloring,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    is_proper_list_coloring,
)


class TestGreedyVertex:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_delta_plus_one_always_works(self, seed):
        rng = random.Random(seed)
        g = gnp_random_graph(rng.randint(1, 25), rng.random(), rng)
        colors = greedy_vertex_coloring(g)
        assert_proper_vertex_coloring(g, colors, g.max_degree() + 1)

    def test_respects_custom_order(self):
        g = cycle_graph(4)
        colors = greedy_vertex_coloring(g, order=[3, 2, 1, 0])
        assert_proper_vertex_coloring(g, colors, 3)

    def test_incomplete_order_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            greedy_vertex_coloring(g, order=[0, 1])

    def test_complete_graph_uses_n_colors(self):
        g = complete_graph(6)
        colors = greedy_vertex_coloring(g)
        assert len(set(colors.values())) == 6


class TestGreedyEdge:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_two_delta_minus_one_always_works(self, seed):
        rng = random.Random(seed)
        g = gnp_random_graph(rng.randint(1, 20), rng.random(), rng)
        colors = greedy_edge_coloring(g)
        assert_proper_edge_coloring(g, colors, max(2 * g.max_degree() - 1, 1))

    def test_forbidden_colors_respected(self):
        g = Graph(3, [(0, 1), (1, 2)])
        colors = greedy_edge_coloring(
            g, num_colors=4, forbidden={1: {1, 2}}
        )
        assert colors[(0, 1)] not in (1, 2)
        assert colors[(1, 2)] not in (1, 2)

    def test_raises_when_palette_exhausted(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            greedy_edge_coloring(g, num_colors=1)


class TestGreedyD1LC:
    def test_always_succeeds_with_degree_plus_one_lists(self, rng):
        for _ in range(30):
            g = gnp_random_graph(rng.randint(1, 20), rng.random(), rng)
            lists = {
                v: set(range(1, g.degree(v) + 2)) for v in g.vertices()
            }
            colors = greedy_d1lc_coloring(g, lists)
            assert is_proper_list_coloring(g, colors, lists)

    def test_disjoint_lists_ok(self):
        g = Graph(2, [(0, 1)])
        lists = {0: {1, 5}, 1: {2, 9}}
        colors = greedy_d1lc_coloring(g, lists)
        assert is_proper_list_coloring(g, colors, lists)

    def test_rejects_small_list(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            greedy_d1lc_coloring(g, {0: {1}, 1: {1}})


class TestListColoringSolver:
    def test_solves_degree_plus_one_instances(self, rng):
        for _ in range(20):
            g = gnp_random_graph(rng.randint(1, 18), rng.random(), rng)
            lists = {v: set(range(1, g.degree(v) + 2)) for v in g.vertices()}
            colors = solve_list_coloring(g, lists, rng)
            assert colors is not None
            assert is_proper_list_coloring(g, colors, lists)

    def test_solves_tight_instances_needing_repair(self, rng):
        # Odd cycle with identical 3-lists: greedy can fail locally, the
        # solver must still find one of the many proper colorings.
        g = cycle_graph(9)
        lists = {v: {1, 2, 3} for v in g.vertices()}
        colors = solve_list_coloring(g, lists, rng)
        assert colors is not None
        assert is_proper_list_coloring(g, colors, lists)

    def test_returns_none_on_unsatisfiable(self, rng):
        # Triangle with identical 2-lists is not list-colorable.
        g = complete_graph(3)
        lists = {v: {1, 2} for v in g.vertices()}
        assert solve_list_coloring(g, lists, rng, max_restarts=3) is None

    def test_returns_none_on_empty_list(self, rng):
        g = Graph(1)
        assert solve_list_coloring(g, {0: set()}, rng) is None

    def test_deterministic_given_seed(self):
        g = cycle_graph(7)
        lists = {v: {1, 2, 3} for v in g.vertices()}
        a = solve_list_coloring(g, lists, random.Random(42))
        b = solve_list_coloring(g, lists, random.Random(42))
        assert a == b
