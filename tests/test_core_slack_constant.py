"""Tests for the parameterized sampling constant of Algorithm 3 and the
transcript round log."""

from __future__ import annotations

import pytest

from repro.comm import Transcript, run_protocol
from repro.rand import Stream
from repro.core import color_sample_party
from repro.core.slack import randomized_slack_party, sampling_probability


def run_with_constant(m, X, Y, constant, seed=0):
    return run_protocol(
        randomized_slack_party(m, X, Stream.from_seed(seed), constant=constant),
        randomized_slack_party(m, Y, Stream.from_seed(seed), constant=constant),
    )


class TestSamplingConstantParameter:
    @pytest.mark.parametrize("constant", [1, 2, 8, 150, 1000])
    def test_correct_for_any_constant(self, constant):
        for seed in range(10):
            a, b, _ = run_with_constant(32, {0, 1, 2}, {3, 4}, constant, seed)
            assert a == b
            assert a not in {0, 1, 2, 3, 4}

    def test_small_constant_cheaper_at_full_slack(self):
        cheap = sum(
            run_with_constant(256, set(), set(), 2, s)[2].total_bits
            for s in range(20)
        )
        pricey = sum(
            run_with_constant(256, set(), set(), 150, s)[2].total_bits
            for s in range(20)
        )
        assert cheap < pricey

    def test_rejects_nonpositive_constant(self):
        with pytest.raises(ValueError):
            next(randomized_slack_party(4, set(), Stream.from_seed(0), constant=0))

    def test_probability_formula(self):
        assert sampling_probability(100, 10, constant=1) == 1.0
        assert sampling_probability(10_000, 10_000, constant=1) == 1e-4

    def test_color_sample_passthrough(self):
        for seed in range(10):
            a, b, _ = run_protocol(
                color_sample_party(16, {1, 2}, Stream.from_seed(seed), 4),
                color_sample_party(16, {3}, Stream.from_seed(seed), 4),
            )
            assert a == b and a not in {1, 2, 3}


class TestRoundLog:
    def test_log_matches_totals(self):
        t = Transcript()
        t.record_round(3, 5)
        t.record_round(0, 2)
        assert t.round_log == [(3, 5), (0, 2)]
        assert sum(a for a, _ in t.round_log) == t.bits_alice_to_bob
        assert sum(b for _, b in t.round_log) == t.bits_bob_to_alice
        assert len(t.round_log) == t.rounds

    def test_protocol_run_populates_log(self):
        a, b, t = run_with_constant(64, {1}, {2}, 150)
        assert len(t.round_log) == t.rounds
        assert sum(x + y for x, y in t.round_log) == t.total_bits
