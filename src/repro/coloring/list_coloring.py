"""Randomized list-coloring solver for sparsified instances (Lemma 3.3, Step 3).

After palette sparsification (Proposition 3.2) Alice holds a sparse graph
``H`` and per-vertex lists ``L(v)``; the instance is colorable with high
probability but is *not* a (degree+1)-list instance, so plain greedy can get
stuck.  We search with randomized greedy restarts followed by min-conflicts
repair; on exhaustion we return ``None`` and the caller falls back to the
paper's Step 4 (gather everything, solve sequential D1LC).
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from ..graphs.graph import Graph

__all__ = ["solve_list_coloring"]


def solve_list_coloring(
    graph: Graph,
    lists: Mapping[int, set[int]],
    rng: random.Random,
    max_restarts: int = 8,
    repair_steps_per_vertex: int = 40,
) -> dict[int, int] | None:
    """A proper coloring with ``colors[v] ∈ lists[v]``, or ``None``.

    Strategy per restart: greedy in a random order preferring scarce lists,
    assigning a random available list color; leftover conflicted vertices go
    through min-conflicts repair.  Deterministic given ``rng``.
    """
    if any(not lists[v] for v in graph.vertices()):
        return None
    for _ in range(max_restarts):
        colors = _random_greedy(graph, lists, rng)
        if colors is not None and _repair(graph, lists, colors, rng, repair_steps_per_vertex):
            return colors
    return None


def _random_greedy(
    graph: Graph,
    lists: Mapping[int, set[int]],
    rng: random.Random,
) -> dict[int, int] | None:
    """Random-order greedy; stuck vertices get a random (conflicting) color."""
    order = sorted(graph.vertices(), key=lambda v: (len(lists[v]), rng.random()))
    colors: dict[int, int] = {}
    for v in order:
        taken = graph.neighbor_colors(v, colors)
        available = [c for c in lists[v] if c not in taken]
        if available:
            colors[v] = rng.choice(available)
        else:
            colors[v] = rng.choice(sorted(lists[v]))
    return colors


def _conflicts_at(graph: Graph, colors: dict[int, int], v: int) -> int:
    """Number of neighbors of ``v`` sharing its color."""
    color = colors[v]
    return sum(1 for u in graph.iter_neighbors(v) if colors.get(u) == color)


def _repair(
    graph: Graph,
    lists: Mapping[int, set[int]],
    colors: dict[int, int],
    rng: random.Random,
    steps_per_vertex: int,
) -> bool:
    """Min-conflicts local search; True if a proper coloring was reached."""
    conflicted = {v for v in graph.vertices() if _conflicts_at(graph, colors, v) > 0}
    budget = steps_per_vertex * max(1, graph.n)
    for _ in range(budget):
        if not conflicted:
            return True
        v = rng.choice(sorted(conflicted))
        best_color = min(
            sorted(lists[v]),
            key=lambda c: (
                sum(1 for u in graph.iter_neighbors(v) if colors.get(u) == c),
                rng.random(),
            ),
        )
        colors[v] = best_color
        for w in [*graph.iter_neighbors(v), v]:
            if _conflicts_at(graph, colors, w) > 0:
                conflicted.add(w)
            else:
                conflicted.discard(w)
    return not conflicted
