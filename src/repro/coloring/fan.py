"""The Misra–Gries fan procedure: color one edge of a partial coloring.

This single primitive powers both classical edge-coloring results the
protocols rely on:

* **Vizing (Proposition 3.4)** — with ``k = Δ+1`` colors every vertex always
  has a free color, and the procedure extends any partial coloring one edge
  at a time.
* **Fournier (Proposition 3.5)** — with ``k = Δ`` colors and the max-degree
  vertices forming an independent set, the procedure still applies provided
  edges are processed so that the fan center and all its neighbors have free
  colors (see :mod:`repro.coloring.fournier` for the two-phase order that
  guarantees this).

The procedure follows Misra & Gries ("A constructive proof of Vizing's
theorem", 1992): build a maximal fan around the center, invert one Kempe
chain through the center, then rotate a prefix of the fan.
"""

from __future__ import annotations

from .state import EdgeColoringState

__all__ = ["FanProcedureError", "color_edge_with_fan"]


class FanProcedureError(RuntimeError):
    """The fan procedure could not color the edge (precondition violated)."""


def color_edge_with_fan(state: EdgeColoringState, center: int, leaf: int) -> None:
    """Color the uncolored edge ``{center, leaf}``.

    Preconditions (guaranteed by the callers' processing orders):

    * ``center`` has a free color;
    * every fan vertex (every relevant neighbor of ``center``) has a free
      color whenever consulted.

    Raises :class:`FanProcedureError` when a precondition fails.
    """
    if state.color_of(center, leaf) is not None:
        raise ValueError(f"edge ({center}, {leaf}) already colored")

    fan = _maximal_fan(state, center, leaf)

    c = state.some_free_color(center)
    if c is None:
        raise FanProcedureError(f"fan center {center} has no free color")
    d = state.some_free_color(fan[-1])
    if d is None:
        raise FanProcedureError(f"fan tail {fan[-1]} has no free color")

    if c != d:
        state.invert_kempe_path(center, c, d)

    w_index = _prefix_fan_with_free_color(state, center, fan, d)
    if w_index is None:
        raise FanProcedureError(
            f"no rotatable fan prefix at center {center} "
            "(Misra-Gries invariant violated; check caller preconditions)"
        )

    _rotate_and_color(state, center, fan[: w_index + 1], d)


def _maximal_fan(state: EdgeColoringState, center: int, leaf: int) -> list[int]:
    """Build a maximal fan ``[leaf, f2, ...]`` around ``center``.

    Fan invariant: the edge ``(center, fan[i+1])`` is colored with a color
    free at ``fan[i]``.  Maximality: no free color of the tail leads to a
    colored center-edge whose endpoint is outside the fan.
    """
    fan = [leaf]
    in_fan = {leaf}
    while True:
        tail = fan[-1]
        extended = False
        for color in state.free_colors(tail):
            nxt = state.neighbor_via(center, color)
            if nxt is not None and nxt not in in_fan:
                fan.append(nxt)
                in_fan.add(nxt)
                extended = True
                break
        if not extended:
            return fan


def _prefix_fan_with_free_color(
    state: EdgeColoringState,
    center: int,
    fan: list[int],
    d: int,
) -> int | None:
    """Largest index ``i`` with ``fan[:i+1]`` still a fan and ``d`` free at ``fan[i]``.

    Checked against the *current* coloring, i.e. after the Kempe-chain
    inversion, which may have invalidated a suffix of the original fan.
    """
    fan_ok_up_to = len(fan) - 1
    for t in range(len(fan) - 1):
        color = state.color_of(center, fan[t + 1])
        if color is None or not state.is_free(fan[t], color):
            fan_ok_up_to = t
            break
    for i in range(fan_ok_up_to, -1, -1):
        if state.is_free(fan[i], d):
            return i
    return None


def _rotate_and_color(
    state: EdgeColoringState,
    center: int,
    fan_prefix: list[int],
    d: int,
) -> None:
    """Shift fan colors down and color the final edge with ``d``.

    After rotation, edge ``(center, fan_prefix[t])`` takes the color that
    used to sit on ``(center, fan_prefix[t+1])`` — a color free at
    ``fan_prefix[t]`` by the fan invariant — and the last edge gets ``d``.
    """
    shifted: list[tuple[int, int]] = []
    for t in range(len(fan_prefix) - 1):
        color = state.unassign(center, fan_prefix[t + 1])
        shifted.append((fan_prefix[t], color))
    for vertex, color in shifted:
        state.assign(center, vertex, color)
    state.assign(center, fan_prefix[-1], d)
