"""Greedy colorings: vertex, edge, and (degree+1)-list coloring.

These are the zero-communication building blocks the protocols compose:

* greedy ``(Δ+1)``-vertex coloring (the classical bound the paper opens with);
* greedy ``(2Δ−1)``-edge coloring (each edge is adjacent to ``≤ 2Δ−2``
  others, used by Lemma 5.1's bounded-degree protocol);
* sequential D1LC: with ``|Ψ(v)| ≥ deg(v)+1`` a greedy pass in *any* order
  always succeeds — this is the always-correct fallback of Lemma 3.3 Step 4.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "greedy_d1lc_coloring",
    "greedy_edge_coloring",
    "greedy_vertex_coloring",
]


def greedy_vertex_coloring(
    graph: Graph,
    order: Sequence[int] | None = None,
    num_colors: int | None = None,
) -> dict[int, int]:
    """Greedy vertex coloring with palette ``{1..Δ+1}`` (or wider).

    Always succeeds with ``Δ+1`` colors: a vertex has at most ``Δ`` colored
    neighbors when processed.
    """
    k = graph.max_degree() + 1 if num_colors is None else num_colors
    colors: dict[int, int] = {}
    for v in order if order is not None else graph.vertices():
        taken = graph.neighbor_colors(v, colors)
        color = next(c for c in range(1, k + 1) if c not in taken)
        colors[v] = color
    if len(colors) != graph.n:
        raise ValueError("order must enumerate every vertex exactly once")
    return colors


def greedy_edge_coloring(
    graph: Graph,
    num_colors: int | None = None,
    order: Sequence[Edge] | None = None,
    forbidden: Mapping[int, set[int]] | None = None,
) -> dict[Edge, int]:
    """Greedy edge coloring with palette ``{1..2Δ−1}`` (or wider).

    ``forbidden[v]`` lists extra colors unusable at ``v`` (e.g. colors the
    other party's edges already occupy in Lemma 5.1's protocol).  Raises
    ``ValueError`` if some edge has no available color — the callers'
    palette arithmetic guarantees this never happens on valid inputs.
    """
    k = max(2 * graph.max_degree() - 1, 1) if num_colors is None else num_colors
    at_vertex: dict[int, set[int]] = {
        v: set(forbidden.get(v, ())) if forbidden else set() for v in graph.vertices()
    }
    colors: dict[Edge, int] = {}
    edges = list(order) if order is not None else graph.edge_list()
    for u, v in edges:
        edge = canonical_edge(u, v)
        taken = at_vertex[u] | at_vertex[v]
        color = next((c for c in range(1, k + 1) if c not in taken), None)
        if color is None:
            raise ValueError(f"no color available for edge {edge} within {k} colors")
        colors[edge] = color
        at_vertex[u].add(color)
        at_vertex[v].add(color)
    return colors


def greedy_d1lc_coloring(
    graph: Graph,
    lists: Mapping[int, set[int]],
    order: Sequence[int] | None = None,
) -> dict[int, int]:
    """Sequential (degree+1)-list coloring — always succeeds.

    Requires ``|lists[v]| ≥ deg(v)+1`` for every vertex; then, whatever the
    order, a vertex always has a list color unused by its colored neighbors.
    """
    for v in graph.vertices():
        if len(lists[v]) < graph.degree(v) + 1:
            raise ValueError(
                f"vertex {v} has list of size {len(lists[v])} < deg+1 = {graph.degree(v) + 1}"
            )
    colors: dict[int, int] = {}
    for v in order if order is not None else graph.vertices():
        taken = graph.neighbor_colors(v, colors)
        color = next(c for c in sorted(lists[v]) if c not in taken)
        colors[v] = color
    if len(colors) != graph.n:
        raise ValueError("order must enumerate every vertex exactly once")
    return colors
