"""Constructive Fournier coloring (Proposition 3.5).

Fournier's theorem: if the vertices of maximum degree ``Δ`` form an
independent set, the graph is class one — edge colorable with ``Δ`` colors.
Algorithm 2 of the paper leans on this twice (each party colors their
remaining subgraph with a palette of exactly ``Δ−1`` colors).

Constructively we run the Misra–Gries fan procedure with ``k = Δ`` colors in
**two phases** chosen so its preconditions (free colors at the center and at
every fan vertex) always hold:

* *Phase 1* colors every edge with **no** max-degree endpoint.  At this
  point no edge incident to a max-degree vertex is colored, so max-degree
  vertices have completely free palettes; all other vertices have degree
  ``≤ Δ−1 < k`` and therefore always retain a free color.
* *Phase 2* colors the edges incident to max-degree vertices, centering each
  fan at the (unique, by independence) max-degree endpoint.  The center's
  neighbors all have degree ``< Δ`` (independence), hence free colors; the
  center itself has a free color while one of its edges is still uncolored.

Kempe-chain inversions only permute colors along paths, so they never
invalidate these degree-based guarantees.
"""

from __future__ import annotations

from ..graphs.graph import Edge, Graph
from .fan import color_edge_with_fan
from .state import EdgeColoringState
from .vizing import common_free_color

__all__ = ["fournier_edge_coloring"]


def fournier_edge_coloring(graph: Graph, num_colors: int | None = None) -> dict[Edge, int]:
    """A proper edge coloring with ``Δ`` colors (Proposition 3.5).

    Requires the maximum-degree vertices to form an independent set; raises
    ``ValueError`` otherwise.  ``num_colors`` may widen the palette beyond
    ``Δ`` (used by Algorithm 2 to embed the coloring in a party palette).
    """
    delta = graph.max_degree()
    if delta == 0:
        return {}
    k = delta if num_colors is None else num_colors
    if k < delta:
        raise ValueError(f"Fournier needs at least Δ = {delta} colors, got {k}")
    if k == delta:
        heavy = {v for v in graph.vertices() if graph.degree(v) == delta}
        if not graph.is_independent_set(heavy):
            raise ValueError(
                "max-degree vertices are not an independent set; "
                "Fournier's theorem does not apply"
            )
    else:
        # With k ≥ Δ+1 the palette is Vizing-sized: no vertex can saturate
        # it, so no independence requirement and a single phase suffices.
        heavy = set()

    state = EdgeColoringState(graph.n, k)
    phase_one: list[Edge] = []
    phase_two: list[Edge] = []
    for u, v in graph.edge_list():
        if u in heavy or v in heavy:
            phase_two.append((u, v))
        else:
            phase_one.append((u, v))

    for u, v in phase_one:
        _extend(state, u, v)
    for u, v in phase_two:
        center, leaf = (u, v) if u in heavy else (v, u)
        _extend(state, center, leaf)
    return state.colors()


def _extend(state: EdgeColoringState, center: int, leaf: int) -> None:
    """Color one edge: common free color if available, else a fan."""
    color = common_free_color(state, center, leaf)
    if color is not None:
        state.assign(center, leaf, color)
    else:
        color_edge_with_fan(state, center, leaf)
