"""Mutable edge-coloring state with fast per-vertex color lookups.

Shared by the greedy, Vizing, and Fournier edge-coloring algorithms: at
every vertex we maintain the map ``color → neighbor`` so that "which edge at
``v`` has color ``c``?" and "which colors are free at ``v``?" are O(1) /
O(k) respectively — the two queries fan rotation and Kempe-chain inversion
perform constantly.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..graphs.graph import Edge, canonical_edge

__all__ = ["EdgeColoringState"]


class EdgeColoringState:
    """A partial proper edge coloring over palette ``{1..num_colors}``."""

    def __init__(self, n: int, num_colors: int) -> None:
        if num_colors < 0:
            raise ValueError(f"palette size must be non-negative, got {num_colors}")
        self.n = n
        self.num_colors = num_colors
        self._edge_color: dict[Edge, int] = {}
        self._at: list[dict[int, int]] = [{} for _ in range(n)]

    # -- queries ----------------------------------------------------------

    def color_of(self, u: int, v: int) -> int | None:
        """Color of edge ``{u, v}`` or None if uncolored."""
        return self._edge_color.get(canonical_edge(u, v))

    def neighbor_via(self, v: int, color: int) -> int | None:
        """The neighbor reached from ``v`` along its ``color`` edge, if any."""
        return self._at[v].get(color)

    def is_free(self, v: int, color: int) -> bool:
        """True if no colored edge at ``v`` uses ``color``."""
        return color not in self._at[v]

    def free_colors(self, v: int) -> Iterator[int]:
        """Palette colors unused at ``v``, in increasing order."""
        used = self._at[v]
        for color in range(1, self.num_colors + 1):
            if color not in used:
                yield color

    def some_free_color(self, v: int) -> int | None:
        """The smallest free color at ``v`` (None if the palette is saturated)."""
        return next(self.free_colors(v), None)

    def colors(self) -> dict[Edge, int]:
        """A copy of the full edge-color assignment."""
        return dict(self._edge_color)

    def colored_edge_count(self) -> int:
        """Number of edges currently colored."""
        return len(self._edge_color)

    # -- mutation ---------------------------------------------------------

    def assign(self, u: int, v: int, color: int) -> None:
        """Color ``{u, v}`` with ``color``; the edge must be uncolored and
        the color free at both endpoints."""
        if not 1 <= color <= self.num_colors:
            raise ValueError(f"color {color} outside palette [1..{self.num_colors}]")
        edge = canonical_edge(u, v)
        if edge in self._edge_color:
            raise ValueError(f"edge {edge} already colored")
        if color in self._at[u] or color in self._at[v]:
            raise ValueError(f"color {color} not free at an endpoint of {edge}")
        self._edge_color[edge] = color
        self._at[u][color] = v
        self._at[v][color] = u

    def unassign(self, u: int, v: int) -> int:
        """Remove the color of ``{u, v}`` and return it."""
        edge = canonical_edge(u, v)
        color = self._edge_color.pop(edge)
        del self._at[u][color]
        del self._at[v][color]
        return color

    def recolor(self, u: int, v: int, color: int) -> None:
        """Atomically change the color of a colored edge."""
        self.unassign(u, v)
        self.assign(u, v, color)

    def invert_kempe_path(self, start: int, alpha: int, beta: int) -> list[int]:
        """Flip colors along the maximal α/β path starting at ``start``.

        Returns the vertices of the path in order (starting at ``start``).
        ``start`` must be incident to at most one of the two colors, so the
        path is well defined; interior vertices see both colors before and
        after, so properness is preserved and only the two endpoints' free
        sets change.
        """
        if alpha == beta:
            raise ValueError("Kempe path needs two distinct colors")
        if alpha in self._at[start] and beta in self._at[start]:
            raise ValueError(f"vertex {start} has both colors {alpha}/{beta}")
        path_vertices = [start]
        path_edges: list[tuple[int, int, int]] = []
        current = start
        want = beta if beta in self._at[start] else alpha
        previous = None
        while True:
            nxt = self._at[current].get(want)
            if nxt is None or nxt == previous:
                break
            path_edges.append((current, nxt, want))
            path_vertices.append(nxt)
            previous, current = current, nxt
            want = alpha if want == beta else beta
        for u, v, color in path_edges:
            self.unassign(u, v)
        for u, v, color in path_edges:
            self.assign(u, v, alpha if color == beta else beta)
        return path_vertices
