"""Constructive Vizing edge coloring (Proposition 3.4).

Colors any simple graph with ``Δ+1`` colors by extending a partial coloring
one edge at a time with the Misra–Gries fan procedure.  With ``k = Δ+1``
every vertex always has a free color, so the procedure's preconditions hold
unconditionally.  Runs in ``O(m·n)`` worst case, plenty for the sizes the
protocols and benchmarks use.
"""

from __future__ import annotations

from ..graphs.graph import Edge, Graph
from .fan import color_edge_with_fan
from .state import EdgeColoringState

__all__ = ["common_free_color", "vizing_edge_coloring"]


def common_free_color(state: EdgeColoringState, u: int, v: int) -> int | None:
    """A palette color free at both endpoints, if any (fast path before fans)."""
    for color in range(1, state.num_colors + 1):
        if state.is_free(u, color) and state.is_free(v, color):
            return color
    return None


def vizing_edge_coloring(graph: Graph, num_colors: int | None = None) -> dict[Edge, int]:
    """A proper edge coloring of ``graph`` with ``Δ+1`` colors.

    ``num_colors`` may widen the palette (it must be ``≥ Δ+1``); the paper's
    protocols use this to color a low-degree subgraph inside a larger shared
    palette.
    """
    delta = graph.max_degree()
    k = delta + 1 if num_colors is None else num_colors
    if k < delta + 1:
        raise ValueError(f"Vizing needs at least Δ+1 = {delta + 1} colors, got {k}")
    state = EdgeColoringState(graph.n, k)
    for u, v in graph.edge_list():
        color = common_free_color(state, u, v)
        if color is not None:
            state.assign(u, v, color)
        else:
            color_edge_with_fan(state, u, v)
    return state.colors()
