"""Local (zero-communication) coloring algorithms used by the protocols."""

from .fan import FanProcedureError, color_edge_with_fan
from .fournier import fournier_edge_coloring
from .greedy import greedy_d1lc_coloring, greedy_edge_coloring, greedy_vertex_coloring
from .list_coloring import solve_list_coloring
from .state import EdgeColoringState
from .vizing import common_free_color, vizing_edge_coloring

__all__ = [
    "EdgeColoringState",
    "FanProcedureError",
    "color_edge_with_fan",
    "common_free_color",
    "fournier_edge_coloring",
    "greedy_d1lc_coloring",
    "greedy_edge_coloring",
    "greedy_vertex_coloring",
    "solve_list_coloring",
    "vizing_edge_coloring",
]
