"""Lower-bound machinery: ZEC games, reductions, repetition, W-streaming."""

from .guessing import BitProtocol, guessing_success_probability, simulate_with_guess
from .learning_gadget import (
    decode_bit,
    decode_bits,
    gadget_candidate_edges,
    gadget_partition,
)
from .repetition import (
    holenstein_bound,
    product_game_graph,
    product_success_exact,
    simulate_product_game,
)
from .wstreaming import (
    BufferedWStreamColorer,
    GreedyWStreamColorer,
    WStreamingAlgorithm,
    reduce_streaming_to_two_party,
    run_wstreaming,
)
from .zec import (
    ALL_INPUTS,
    COLOR_PAIRS,
    LEMMA_62_BOUND,
    best_response,
    exact_win_probability,
    label_sets,
    lemma_62_dichotomy,
    optimize_strategies,
    random_strategy,
)
from .zec_new import (
    PAPER_HUB_POOL,
    simulate_zec_new,
    zec_new_bound,
    zec_new_win_probability,
)

__all__ = [
    "ALL_INPUTS",
    "BitProtocol",
    "BufferedWStreamColorer",
    "COLOR_PAIRS",
    "GreedyWStreamColorer",
    "LEMMA_62_BOUND",
    "PAPER_HUB_POOL",
    "WStreamingAlgorithm",
    "best_response",
    "decode_bit",
    "decode_bits",
    "exact_win_probability",
    "gadget_candidate_edges",
    "gadget_partition",
    "guessing_success_probability",
    "holenstein_bound",
    "label_sets",
    "lemma_62_dichotomy",
    "optimize_strategies",
    "product_game_graph",
    "product_success_exact",
    "random_strategy",
    "reduce_streaming_to_two_party",
    "run_wstreaming",
    "simulate_product_game",
    "simulate_with_guess",
    "simulate_zec_new",
    "zec_new_bound",
    "zec_new_win_probability",
]
