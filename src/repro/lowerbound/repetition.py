"""Parallel repetition of the ZEC game (Proposition 6.3, Raz/Holenstein).

The hard instance behind Theorem 4 is ``n`` independent ZEC games glued
into one ``9n``-vertex graph.  The parallel repetition theorem bounds any
(possibly entangled across instances) zero-communication strategy's success
at ``2^{−Ω(n)}``; for *product* strategies the decay is exactly ``vⁿ``
where ``v < 1`` is the single-game value.  This module measures both the
exact product decay and Monte-Carlo play of the product game, and exposes
the proposition's quantitative bound for comparison.
"""

from __future__ import annotations

import math
import random

from ..graphs.generators import zec_instance_graph
from ..graphs.graph import Graph
from .zec import ALL_INPUTS, DeterministicStrategy, exact_win_probability

__all__ = [
    "holenstein_bound",
    "product_game_graph",
    "product_success_exact",
    "simulate_product_game",
]


def product_success_exact(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
    copies: int,
) -> float:
    """Exact success probability of a product strategy over ``copies`` games."""
    single = exact_win_probability(alice, bob)
    return single**copies


def holenstein_bound(single_game_value: float, copies: int, num_outputs: int = 36) -> float:
    """Proposition 6.3's bound ``(1 − (1−v)³/6000)^{n / log s}``.

    ``s`` is the number of possible output pairs of one game; a ZEC player
    outputs one of 6 locally proper color pairs, so ``s = 36``.
    """
    if not 0 <= single_game_value <= 1:
        raise ValueError("game value must be a probability")
    v = single_game_value
    base = 1.0 - (1.0 - v) ** 3 / 6000.0
    return base ** (copies / math.log2(num_outputs))


def simulate_product_game(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
    copies: int,
    trials: int,
    rng: random.Random,
) -> float:
    """Monte-Carlo win rate of the product strategy on ``copies`` games."""
    inputs = list(ALL_INPUTS)
    wins = 0
    for _ in range(trials):
        ok = True
        for _ in range(copies):
            sa = rng.choice(inputs)
            sb = rng.choice(inputs)
            ca = dict(zip(sa, alice[sa]))
            cb = dict(zip(sb, bob[sb]))
            if any(cb.get(s) == c for s, c in ca.items()):
                ok = False
                break
        wins += ok
    return wins / trials


def product_game_graph(
    instance_inputs: list[tuple[tuple[int, int], tuple[int, int]]],
) -> Graph:
    """The ``9n``-vertex union graph of ``n`` ZEC instances (Theorem 4).

    ``instance_inputs[t]`` is the ``(alice_spokes, bob_spokes)`` pair of
    instance ``t``; instance ``t`` occupies vertices ``9t .. 9t+8``.
    """
    copies = len(instance_inputs)
    graph = Graph(9 * copies)
    for t, (alice_spokes, bob_spokes) in enumerate(instance_inputs):
        local = zec_instance_graph(alice_spokes, bob_spokes)
        for u, v in local.edges():
            graph.add_edge(9 * t + u, 9 * t + v)
    return graph
