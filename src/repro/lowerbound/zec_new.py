"""The ZEC-NEW game (Section 6.4) — lower bound for *weaker* edge coloring.

In the weaker-(2Δ−1)-edge-coloring problem a party may output colors for the
*other* party's edges, as long as every edge is reported by someone; this is
the variant that reduces to the W-streaming model.  ZEC-NEW augments ZEC so
that "knowing the other party's edges" is itself hard: each player's hub is
drawn uniformly from a pool of ``33075`` anonymous hubs, and the players
additionally win by *guessing the opponent's hub*.  The paper bounds the win
probability by ``33074/33075``.

We keep the hub pool size a parameter (the paper's ``33075 = 3 · 11025``
makes the union bound line up with Lemma 6.2); the experiment sweeps it to
show the bound's behavior.
"""

from __future__ import annotations

import random

from .zec import (
    ALL_INPUTS,
    DeterministicStrategy,
    exact_win_probability,
)

__all__ = [
    "PAPER_HUB_POOL",
    "simulate_zec_new",
    "zec_new_bound",
    "zec_new_win_probability",
]

#: The paper's hub-pool size for each player.
PAPER_HUB_POOL = 33075


def zec_new_bound(coloring_bound: float, hub_pool: int = PAPER_HUB_POOL) -> float:
    """Section 6.4's union bound on the ZEC-NEW winning probability.

    ``P[win] ≤ P[proper coloring] + P[guess v_B*] + P[guess v_A*]``.
    With the paper's numbers: ``11024/11025 + 2/33075 = 33074/33075``.
    """
    return coloring_bound + 2.0 / hub_pool


def zec_new_win_probability(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
    hub_pool: int = PAPER_HUB_POOL,
) -> float:
    """Exact win probability in ZEC-NEW for a coloring-strategy pair.

    The opponent's hub is uniform and independent of everything a player
    sees, so *any* hub-guessing rule succeeds with probability exactly
    ``1/hub_pool``; the three win events (proper coloring, Alice's guess,
    Bob's guess) are independent, so the win probability is the
    complement of losing all three.
    """
    p_color = exact_win_probability(alice, bob)
    p_guess = 1.0 / hub_pool
    p_lose_all = (1.0 - p_color) * (1.0 - p_guess) * (1.0 - p_guess)
    return 1.0 - p_lose_all


def simulate_zec_new(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
    rng: random.Random,
    trials: int,
    hub_pool: int = PAPER_HUB_POOL,
) -> float:
    """Monte-Carlo estimate of the ZEC-NEW win rate (sanity cross-check)."""
    wins = 0
    inputs = list(ALL_INPUTS)
    for _ in range(trials):
        sa = rng.choice(inputs)
        sb = rng.choice(inputs)
        hub_a = rng.randrange(hub_pool)
        hub_b = rng.randrange(hub_pool)
        ca = dict(zip(sa, alice[sa]))
        cb = dict(zip(sb, bob[sb]))
        proper = all(cb.get(s) != c for s, c in ca.items())
        guess_a = rng.randrange(hub_pool) == hub_b
        guess_b = rng.randrange(hub_pool) == hub_a
        if proper or guess_a or guess_b:
            wins += 1
    return wins / trials
