"""The FM25 learning-problem reduction (Section 2.3) for vertex coloring.

Alice holds a string ``x ∈ {0,1}ⁿ`` encoded as ``n`` disjoint ``C4``
gadgets (she owns *all* edges, Bob none; ``Δ = 2``).  Any proper 3-vertex
coloring lets Bob recover every bit: the two candidate gadgets together
form a ``K4`` on the gadget's vertices, which is not 3-colorable, so a
3-coloring can be proper for exactly one of the two candidate edge sets.
Hence a ``(Δ+1)``-coloring protocol solves the learning problem, whose
communication complexity is ``Ω(n)`` — the paper's Theorem-1 optimality
argument, exercised here end-to-end against our own protocol.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..graphs.generators import c4_gadget_union
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition, partition_all_alice

__all__ = [
    "decode_bit",
    "decode_bits",
    "gadget_partition",
    "gadget_candidate_edges",
]


def gadget_partition(bits: Sequence[int]) -> EdgePartition:
    """The lower-bound instance: gadget graph, all edges to Alice."""
    return partition_all_alice(c4_gadget_union(bits))


def gadget_candidate_edges(index: int) -> dict[int, list[tuple[int, int]]]:
    """The two candidate edge sets of gadget ``index`` keyed by bit value."""
    a, b, c, d = 4 * index, 4 * index + 1, 4 * index + 2, 4 * index + 3
    common = [(a, b), (c, d)]
    return {
        0: common + [(a, c), (b, d)],
        1: common + [(a, d), (b, c)],
    }


def decode_bit(colors: Mapping[int, int], index: int) -> int:
    """Recover bit ``index`` from a proper 3-coloring of the gadget graph.

    Exactly one candidate gadget is properly colored (their union is a
    ``K4``); raises ``ValueError`` if zero or both fit, which would mean
    the coloring was improper or used more than 3 colors.
    """
    candidates = gadget_candidate_edges(index)
    fits = [
        bit
        for bit, edges in candidates.items()
        if all(colors[u] != colors[v] for u, v in edges)
    ]
    if len(fits) != 1:
        raise ValueError(
            f"gadget {index}: coloring consistent with {len(fits)} candidates; "
            "decoding requires a proper 3-coloring"
        )
    return fits[0]


def decode_bits(colors: Mapping[int, int], num_bits: int) -> list[int]:
    """Bob's full decoding of Alice's string from the coloring."""
    return [decode_bit(colors, i) for i in range(num_bits)]


def _gadget_graph(bits: Sequence[int]) -> Graph:
    """Convenience re-export for tests."""
    return c4_gadget_union(bits)
