"""The communication-guessing reduction of Lemma 6.1.

If a (private-coin) protocol solves a problem with ``t`` bits in the worst
case, then guessing the entire transcript yields a *zero-communication*
protocol succeeding with probability ``≥ 2^{−t}`` times the original
success probability: each party independently guesses the transcript,
simulates its own side against the guess, and aborts (fails) if its own
messages would deviate from the guess.  When both guesses equal the true
transcript — probability ``2^{−t}`` for a ``t``-bit transcript each party
guesses consistently — the simulation reproduces the protocol exactly.

We implement the reduction generically for deterministic bit-protocols and
verify the ``2^{−t}`` success rate by exhaustive enumeration — the
quantitative engine of Theorem 4's contradiction.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

__all__ = ["BitProtocol", "guessing_success_probability", "simulate_with_guess"]


class BitProtocol:
    """A deterministic alternating bit protocol.

    ``next_bit(role, own_input, transcript_so_far)`` returns the bit the
    speaking party sends; parties alternate starting with Alice.
    ``output(role, own_input, transcript)`` is the party's final output.
    ``length`` is the total number of transcript bits.
    """

    def __init__(
        self,
        length: int,
        next_bit: Callable[[str, object, tuple[int, ...]], int],
        output: Callable[[str, object, tuple[int, ...]], object],
    ) -> None:
        if length < 0:
            raise ValueError("transcript length must be non-negative")
        self.length = length
        self.next_bit = next_bit
        self.output = output

    def speaker(self, position: int) -> str:
        """Who sends transcript bit ``position`` (Alice starts)."""
        return "alice" if position % 2 == 0 else "bob"

    def run(self, alice_input: object, bob_input: object) -> tuple[tuple[int, ...], object, object]:
        """Execute honestly; return (transcript, alice output, bob output)."""
        transcript: list[int] = []
        inputs = {"alice": alice_input, "bob": bob_input}
        for pos in range(self.length):
            role = self.speaker(pos)
            transcript.append(self.next_bit(role, inputs[role], tuple(transcript)))
        final = tuple(transcript)
        return (
            final,
            self.output("alice", alice_input, final),
            self.output("bob", bob_input, final),
        )


def simulate_with_guess(
    protocol: BitProtocol,
    role: str,
    own_input: object,
    guess: Sequence[int],
) -> object | None:
    """One party's zero-communication simulation against a guessed transcript.

    Returns the party's output if its own messages are consistent with the
    guess, else ``None`` (the party knows its guess was wrong and aborts).
    """
    guess = tuple(guess)
    if len(guess) != protocol.length:
        raise ValueError("guess must have the protocol's transcript length")
    for pos in range(protocol.length):
        if protocol.speaker(pos) == role:
            expected = protocol.next_bit(role, own_input, guess[:pos])
            if expected != guess[pos]:
                return None
    return protocol.output(role, own_input, guess)


def guessing_success_probability(
    protocol: BitProtocol,
    alice_input: object,
    bob_input: object,
    win: Callable[[object, object], bool],
) -> float:
    """Exact success probability of the guessing simulation (Lemma 6.1).

    Enumerates all ``2^t × 2^t`` guess pairs (feasible for the toy
    protocols the experiment uses) and counts pairs on which both parties
    produce outputs satisfying ``win``.  For a correct deterministic
    protocol this equals ``2^{−2t}·|{(g,g)}| = 4^{−t}·…`` — lower-bounded
    by the ``(guess = true transcript)²`` event, i.e. ``≥ 4^{−t}``; with
    *shared* guesses it would be ``2^{−t}``, which is the form Lemma 6.1
    quotes (the constant in the exponent is immaterial for the Ω(n) bound).
    """
    t = protocol.length
    total = 0
    successes = 0
    for guess_a in itertools.product((0, 1), repeat=t):
        out_a = simulate_with_guess(protocol, "alice", alice_input, guess_a)
        for guess_b in itertools.product((0, 1), repeat=t):
            out_b = simulate_with_guess(protocol, "bob", bob_input, guess_b)
            total += 1
            if out_a is not None and out_b is not None and win(out_a, out_b):
                successes += 1
    return successes / total
