"""W-streaming model simulator and its two-party reduction (Section 6.4).

In the W-streaming model an algorithm reads the edge stream with bounded
internal memory and may *emit* output records (edge, color) at any time —
the output does not count toward space.  Corollary 1.2: any constant-pass
W-streaming algorithm for ``(2Δ−1)``-edge coloring needs ``Ω(n)`` bits of
space, via a reduction to the *weaker* two-party problem (Theorem 5).

This module provides:

* :class:`WStreamingAlgorithm` — the model interface with *measured* state
  size (``state_bits`` must account every bit of internal memory);
* :class:`GreedyWStreamColorer` — the classical one-pass greedy
  ``(2Δ−1)``-edge colorer with ``n·(2Δ−1)``-bit state (per-vertex palette
  bitmaps), our upper-bound reference point;
* :func:`reduce_streaming_to_two_party` — the generic simulation: Alice
  streams her edges, ships the memory state, Bob finishes; communication =
  ``passes × state_bits``, so the ``Ω(n)`` communication bound transfers to
  an ``Ω(n/passes)`` space bound.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from ..comm.bits import BitWriter, bitmap_cost
from ..comm.ledger import Transcript
from ..comm.transport import Channel, Transport, resolve_transport
from ..graphs.graph import Edge, canonical_edge
from ..graphs.partition import EdgePartition

__all__ = [
    "BufferedWStreamColorer",
    "GreedyWStreamColorer",
    "WStreamingAlgorithm",
    "reduce_streaming_to_two_party",
    "run_wstreaming",
    "streaming_alice_proto",
    "streaming_bob_proto",
]


class WStreamingAlgorithm(ABC):
    """A one-pass W-streaming edge-coloring algorithm."""

    @abstractmethod
    def process(self, edge: Edge) -> Iterable[tuple[Edge, int]]:
        """Consume one stream edge; yield any output records now emitted."""

    @abstractmethod
    def finish(self) -> Iterable[tuple[Edge, int]]:
        """Flush any buffered output at end of stream."""

    @abstractmethod
    def state_bits(self) -> int:
        """Exact size in bits of the current internal memory."""

    def encode_state(self) -> Sequence[int]:
        """The current memory as a real bit sequence of ``state_bits()`` bits.

        The strict transport uses this to verify the reduction's declared
        communication on every party hand-off; algorithms that cannot
        encode their state exactly should not run under ``strict``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement encode_state(); "
            "the strict transport cannot verify its state hand-off"
        )


class GreedyWStreamColorer(WStreamingAlgorithm):
    """One-pass greedy ``(2Δ−1)``-edge coloring with per-vertex bitmaps.

    Emits each edge's color immediately; the state is one
    ``(2Δ−1)``-bit palette bitmap per vertex, i.e. ``n·(2Δ−1)`` bits —
    ``O(nΔ)``, comfortably above the ``Ω(n)`` lower bound it illustrates.
    """

    def __init__(self, n: int, delta: int) -> None:
        self.n = n
        self.num_colors = max(2 * delta - 1, 1)
        self._used: list[set[int]] = [set() for _ in range(n)]

    def process(self, edge: Edge) -> Iterable[tuple[Edge, int]]:
        u, v = canonical_edge(*edge)
        taken = self._used[u] | self._used[v]
        color = next(
            (c for c in range(1, self.num_colors + 1) if c not in taken), None
        )
        if color is None:
            raise RuntimeError(
                f"greedy W-streaming ran out of colors at {edge}; "
                "the stream exceeded the declared maximum degree"
            )
        self._used[u].add(color)
        self._used[v].add(color)
        return [((u, v), color)]

    def finish(self) -> Iterable[tuple[Edge, int]]:
        return []

    def state_bits(self) -> int:
        return bitmap_cost(self.n * self.num_colors)

    def encode_state(self) -> list[int]:
        writer = BitWriter()
        for used in self._used:
            writer.write_bitmap(c in used for c in range(1, self.num_colors + 1))
        return writer.to_bits()


class BufferedWStreamColorer(WStreamingAlgorithm):
    """Buffer-and-flush W-streaming edge coloring: the space/colors dial.

    Buffers up to ``buffer_cap`` edges; on overflow it greedily colors the
    buffered subgraph with a *fresh* palette block (disjoint from all
    earlier flushes, so properness across flushes is automatic) and emits
    it.  This is the simple trade-off scheme in the W-streaming literature
    the paper surveys ([BDH+19; CL21; ASZ22] §1.1): space drops to
    ``O(buffer_cap · log n)`` bits while the color count rises to
    ``Σ_flushes (2Δ_flush − 1) = O(Δ²)`` in the worst case — everything
    sits strictly above the Ω(n)-bit floor of Corollary 1.2.
    """

    def __init__(self, n: int, buffer_cap: int) -> None:
        if buffer_cap < 1:
            raise ValueError(f"buffer capacity must be positive, got {buffer_cap}")
        self.n = n
        self.buffer_cap = buffer_cap
        self._buffer: list[Edge] = []
        self._next_color = 1
        self.colors_used = 0

    def process(self, edge: Edge) -> Iterable[tuple[Edge, int]]:
        self._buffer.append(canonical_edge(*edge))
        if len(self._buffer) >= self.buffer_cap:
            return self._flush()
        return []

    def finish(self) -> Iterable[tuple[Edge, int]]:
        return self._flush()

    def state_bits(self) -> int:
        # Buffered edges dominate; the palette offset is O(log) on top.
        edge_bits = 2 * max((self.n - 1).bit_length(), 1)
        return len(self._buffer) * edge_bits + 2 * max(self._next_color.bit_length(), 1)

    def encode_state(self) -> list[int]:
        writer = BitWriter()
        endpoint_bits = max((self.n - 1).bit_length(), 1)
        for u, v in self._buffer:
            writer.write_uint(u, endpoint_bits)
            writer.write_uint(v, endpoint_bits)
        writer.write_uint(self._next_color, 2 * max(self._next_color.bit_length(), 1))
        return writer.to_bits()

    def _flush(self) -> list[tuple[Edge, int]]:
        if not self._buffer:
            return []
        used_at: dict[int, set[int]] = {}
        out: list[tuple[Edge, int]] = []
        block_top = self._next_color
        for u, v in self._buffer:
            taken = used_at.setdefault(u, set()) | used_at.setdefault(v, set())
            color = self._next_color
            while color in taken:
                color += 1
            used_at[u].add(color)
            used_at[v].add(color)
            out.append(((u, v), color))
            block_top = max(block_top, color)
        self.colors_used = block_top
        self._next_color = block_top + 1
        self._buffer = []
        return out


def run_wstreaming(
    algorithm: WStreamingAlgorithm,
    stream: Iterable[Edge],
) -> tuple[dict[Edge, int], int]:
    """Run one pass; return (emitted coloring, peak state bits)."""
    colors: dict[Edge, int] = {}
    peak = algorithm.state_bits()
    for edge in stream:
        for out_edge, color in algorithm.process(edge):
            colors[canonical_edge(*out_edge)] = color
        peak = max(peak, algorithm.state_bits())
    for out_edge, color in algorithm.finish():
        colors[canonical_edge(*out_edge)] = color
    return colors, peak


def _encode_algorithm_state(algorithm: WStreamingAlgorithm) -> Sequence[int]:
    """Strict codec for the simulated memory hand-off."""
    return algorithm.encode_state()


def streaming_alice_proto(ch: Channel, edges, algorithm: WStreamingAlgorithm):
    """Alice's side of the reduction: stream, then ship the memory state.

    The payload is the live algorithm instance — the simulation's stand-in
    for a serialized memory snapshot; the declared cost is the *measured*
    ``state_bits()``, which the strict transport verifies against
    ``encode_state()``.
    """
    out: dict[Edge, int] = {}
    for edge in edges:
        for out_edge, color in algorithm.process(edge):
            out[canonical_edge(*out_edge)] = color
    yield from ch.send(
        algorithm.state_bits(), algorithm, codec=_encode_algorithm_state
    )
    return out


def streaming_bob_proto(ch: Channel, edges):
    """Bob's side of the reduction: receive the state, finish the stream."""
    algorithm = yield from ch.recv()
    out: dict[Edge, int] = {}
    for edge in edges:
        for out_edge, color in algorithm.process(edge):
            out[canonical_edge(*out_edge)] = color
    for out_edge, color in algorithm.finish():
        out[canonical_edge(*out_edge)] = color
    return out


def reduce_streaming_to_two_party(
    partition: EdgePartition,
    algorithm_factory,
    transport: str | Transport | None = None,
) -> tuple[dict[Edge, int], dict[Edge, int], Transcript]:
    """Simulate a W-streaming algorithm as a weaker-two-party protocol.

    Alice streams her edges through a fresh algorithm instance and keeps
    the records emitted so far (these are *her* outputs — possibly
    including colors for edges she does not own, which is exactly why the
    reduction targets the weaker problem).  She then sends the memory
    state; Bob streams his edges and emits the rest.  Communication =
    ``state_bits`` per party switch — so a space-``s`` one-pass algorithm
    yields an ``s``-bit protocol, and Theorem 5's ``Ω(n)`` bound on the
    protocol forces ``s = Ω(n)``.
    """
    core = resolve_transport(transport)
    alice_out, bob_out, transcript = core.run(
        lambda ch: streaming_alice_proto(
            ch, sorted(partition.alice_edges), algorithm_factory()
        ),
        lambda ch: streaming_bob_proto(ch, sorted(partition.bob_edges)),
    )
    return alice_out, bob_out, transcript

