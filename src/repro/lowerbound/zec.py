"""The Zero-communication Edge Coloring (ZEC) game — Section 6.2.

Nine vertices ``{v_A, v_B, v_1..v_7}``.  A referee hands Alice two uniform
spokes ``{v_A, v_i}, {v_A, v_j}`` and Bob two uniform spokes
``{v_B, v_k}, {v_B, v_l}`` (independently).  With no communication and no
shared randomness, each player 3-colors its own two edges; they win iff the
union is a proper 3-edge coloring.  Lemma 6.2: every strategy pair wins with
probability at most ``11024/11025``.

This module provides:

* exact win-probability evaluation of deterministic and behavioral
  strategy pairs (full 21 × 21 input enumeration);
* the label sets ``L_A(v_i), L_B(v_i)`` of Lemma 6.2 and the dichotomy its
  proof case-splits on;
* strategy optimization by alternating exact best responses, used by the
  E10 experiment to exhibit near-optimal strategies strictly below 1.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Mapping

__all__ = [
    "ALL_INPUTS",
    "COLOR_PAIRS",
    "LEMMA_62_BOUND",
    "DeterministicStrategy",
    "all_inputs",
    "best_response",
    "exact_win_probability",
    "label_sets",
    "lemma_62_dichotomy",
    "optimize_strategies",
    "random_strategy",
]

#: Number of spokes per side.
NUM_SPOKES = 7
#: The three edge colors.
COLORS = (1, 2, 3)
#: Ordered pairs of distinct colors — the 6 proper local assignments.
COLOR_PAIRS = tuple(
    (a, b) for a in COLORS for b in COLORS if a != b
)
#: All 21 possible inputs (unordered spoke pairs, 1-based).
ALL_INPUTS = tuple(itertools.combinations(range(1, NUM_SPOKES + 1), 2))
#: Lemma 6.2's upper bound on the winning probability.
LEMMA_62_BOUND = 11024.0 / 11025.0

#: A deterministic strategy: input pair -> (color of lower spoke edge,
#: color of higher spoke edge), colors distinct (proper at the hub).
DeterministicStrategy = Mapping[tuple[int, int], tuple[int, int]]


def all_inputs() -> tuple[tuple[int, int], ...]:
    """The 21 possible two-spoke inputs of one player."""
    return ALL_INPUTS


def random_strategy(rng: random.Random) -> dict[tuple[int, int], tuple[int, int]]:
    """A uniformly random deterministic (locally proper) strategy."""
    return {inp: rng.choice(COLOR_PAIRS) for inp in ALL_INPUTS}


def _spoke_colors(strategy: DeterministicStrategy, inp: tuple[int, int]) -> dict[int, int]:
    """Map each spoke of ``inp`` to the color the strategy assigns its edge."""
    i, j = inp
    ci, cj = strategy[inp]
    return {i: ci, j: cj}


def exact_win_probability(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
) -> float:
    """Exact probability the pair wins the ZEC game (21 × 21 enumeration).

    The union coloring is proper iff, for every spoke chosen by both
    players, the two incident edges got different colors (the hub edges are
    locally proper by construction).
    """
    wins = 0
    alice_colors = {inp: _spoke_colors(alice, inp) for inp in ALL_INPUTS}
    bob_colors = {inp: _spoke_colors(bob, inp) for inp in ALL_INPUTS}
    for sa in ALL_INPUTS:
        ca = alice_colors[sa]
        for sb in ALL_INPUTS:
            cb = bob_colors[sb]
            ok = True
            for spoke, color in ca.items():
                if cb.get(spoke) == color:
                    ok = False
                    break
            wins += ok
    return wins / (len(ALL_INPUTS) ** 2)


def label_sets(
    strategy: DeterministicStrategy,
    threshold: float = 1.0 / 5.0,
) -> dict[int, set[int]]:
    """The Lemma 6.2 labels ``L(v_i)`` of a (deterministic) strategy.

    ``c ∈ L(v_i)`` iff some input containing spoke ``i`` makes the strategy
    color the edge to ``v_i`` with ``c`` with probability ``≥ threshold``
    (for deterministic strategies: probability 1).
    """
    labels: dict[int, set[int]] = {i: set() for i in range(1, NUM_SPOKES + 1)}
    for inp in ALL_INPUTS:
        for spoke, color in _spoke_colors(strategy, inp).items():
            labels[spoke].add(color)
    del threshold  # deterministic strategies color with probability 1
    return labels


def lemma_62_dichotomy(
    alice: DeterministicStrategy,
    bob: DeterministicStrategy,
) -> str:
    """Which case of Lemma 6.2's proof applies to this strategy pair.

    Returns ``"case1"`` if either player has ≥ 4 singleton-labelled spokes
    (pigeonhole forces a same-colored hub pair), else ``"case2"`` (some
    spoke carries ≥ 2 labels on both sides, sharing a common color).  The
    lemma's argument guarantees one of the two always holds.
    """
    la = label_sets(alice)
    lb = label_sets(bob)
    singles_a = [i for i, lab in la.items() if len(lab) == 1]
    singles_b = [i for i, lab in lb.items() if len(lab) == 1]
    if len(singles_a) >= 4 or len(singles_b) >= 4:
        return "case1"
    shared = [
        i
        for i in range(1, NUM_SPOKES + 1)
        if len(la[i]) >= 2 and len(lb[i]) >= 2 and la[i] & lb[i]
    ]
    if shared:
        return "case2"
    raise AssertionError(
        "Lemma 6.2 dichotomy failed — this contradicts the pigeonhole argument"
    )


def best_response(
    opponent: DeterministicStrategy,
    responder: str,
) -> dict[tuple[int, int], tuple[int, int]]:
    """The exact best deterministic response to ``opponent``.

    Because a player's inputs are uniform and independent of the
    opponent's, the best response decomposes per input: for each of the 21
    inputs pick the locally proper color pair maximizing the win
    probability against the opponent's (uniform-input) play.
    """
    if responder not in ("alice", "bob"):
        raise ValueError(f"responder must be 'alice' or 'bob', got {responder!r}")
    opp_colors = [_spoke_colors(opponent, inp) for inp in ALL_INPUTS]
    response = {}
    for inp in ALL_INPUTS:
        i, j = inp
        best_pair, best_wins = None, -1
        for ci, cj in COLOR_PAIRS:
            wins = 0
            for oc in opp_colors:
                if oc.get(i) != ci and oc.get(j) != cj:
                    wins += 1
            if wins > best_wins:
                best_pair, best_wins = (ci, cj), wins
        response[inp] = best_pair
    return response


def optimize_strategies(
    rng: random.Random,
    restarts: int = 10,
    iterations: int = 20,
) -> tuple[dict, dict, float]:
    """Search for a near-optimal strategy pair by alternating best responses.

    Returns ``(alice, bob, win_probability)`` for the best pair found.  The
    win probability is always strictly below 1 — Lemma 6.2 in action.
    """
    best = (None, None, -1.0)
    for _ in range(restarts):
        alice = random_strategy(rng)
        bob = random_strategy(rng)
        value = exact_win_probability(alice, bob)
        for _ in range(iterations):
            bob = best_response(alice, "bob")
            alice = best_response(bob, "alice")
            new_value = exact_win_probability(alice, bob)
            if new_value <= value:
                value = new_value
                break
            value = new_value
        if value > best[2]:
            best = (alice, bob, value)
    return best
