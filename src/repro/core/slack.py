"""Protocols for ``k``-Slack-Int (Problem 6, Appendix A).

Given sets ``X`` (Alice) and ``Y`` (Bob) over a common ground list with
``|X| + |Y| ≤ m − k`` for some ``k ≥ 1``, find an element of the ground set
outside ``X ∪ Y``:

* :func:`slack_find_proto` — the deterministic binary-search protocol of
  Lemma A.1: ``O(log² m)`` bits, ``O(log m)`` rounds.
* :func:`randomized_slack_proto` — Algorithm 3 (Lemma A.2): exponentially
  decreasing guesses ``k̃`` with public sub-sampling; expected
  ``O(log²((m+1)/k))`` bits and ``O(log((m+1)/k))`` rounds.

Both are written as *single* channel protocols usable by either party:
each round both parties send the count of their own set inside the probed
interval, so Alice's and Bob's programs are literally identical.  The
element found is common knowledge by construction.  ``slack_find_party``
and ``randomized_slack_party`` are the legacy generator-API adapters.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence, Set

from ..comm.bits import uint_cost
from ..comm.transport import Channel, as_party
from ..rand import Stream

__all__ = [
    "randomized_slack_party",
    "randomized_slack_proto",
    "slack_find_party",
    "slack_find_proto",
]

#: Constant from Algorithm 3's sampling probability ``p = min(1, C·m/k̃²)``.
SAMPLING_CONSTANT = 150


def slack_find_proto(
    ch: Channel,
    ground: Sequence[int],
    own: Set[int],
    own_count: int | None = None,
    peer_count: int | None = None,
):
    """Deterministic binary search for an element outside both sets (Lemma A.1).

    ``ground`` is the publicly known candidate list (identical on both
    sides, same order).  If the parties already exchanged their counts over
    the full ground set (as Algorithm 3 does), pass them to skip the
    opening round.  The invariant ``|I| − a − b ≥ 1`` guarantees a "free"
    element in the current interval ``I``; we recurse into the half whose
    lower bound stays positive.
    """
    lo, hi = 0, len(ground)
    # The per-round interval counts are bisections over this party's
    # sorted positions inside the ground list — O(|own| + rounds·log)
    # total instead of rescanning O(|I|) elements every round.  When the
    # ground set is the canonical ``range(m)`` (Algorithm 3's saturated
    # sample), positions are the elements themselves.
    if isinstance(ground, range) and ground.start == 0 and ground.step == 1:
        own_pos = sorted(e for e in own if 0 <= e < hi)
    else:
        own_pos = sorted(i for i, e in enumerate(ground) if e in own)
    # The bisection loop is the hottest send site in the repo, so it speaks
    # the raw post/unwrap idiom: no delegate generator per probe.
    post = ch.post
    unwrap = ch.unwrap
    if own_count is None or peer_count is None:
        own_count = len(own_pos)
        peer_count = unwrap((yield post(uint_cost(len(ground)), own_count)))
    slack = (hi - lo) - own_count - peer_count
    if slack < 1:
        raise ValueError("no guaranteed free element: |I| - a - b < 1")

    while hi - lo > 1:
        mid = (lo + hi) // 2
        own_left = bisect_left(own_pos, mid) - bisect_left(own_pos, lo)
        # (mid - lo).bit_length() == uint_cost(mid - lo) for positive widths;
        # inlined because this is the hottest declared-cost site in the repo.
        peer_left = unwrap((yield post((mid - lo).bit_length(), own_left)))
        left_slack = (mid - lo) - own_left - peer_left
        if left_slack >= 1:
            hi = mid
            slack = left_slack
        else:
            lo = mid
            slack = slack - left_slack
    return ground[lo]


def slack_find_party(
    ground: Sequence[int],
    own: Set[int],
    own_count: int | None = None,
    peer_count: int | None = None,
):
    """Legacy generator-API adapter for :func:`slack_find_proto`."""
    return as_party(slack_find_proto, ground, own, own_count, peer_count)


def guess_schedule(m: int) -> list[int]:
    """Algorithm 3's exponentially decreasing guesses ``m, m/2, …, 1``."""
    guesses = []
    k_tilde = m
    while k_tilde >= 1:
        guesses.append(k_tilde)
        if k_tilde == 1:
            break
        k_tilde //= 2
    return guesses


def sampling_probability(m: int, k_tilde: int, constant: int = SAMPLING_CONSTANT) -> float:
    """Algorithm 3's inclusion probability ``p = min(1, C·m/k̃²)``."""
    return min(1.0, constant * m / (k_tilde * k_tilde))


def randomized_slack_proto(
    ch: Channel,
    m: int,
    own: Set[int],
    pub: Stream,
    constant: int = SAMPLING_CONSTANT,
):
    """Algorithm 3: randomized ``k``-Slack-Int over the ground set ``range(m)``.

    Requires the problem precondition ``|X| + |Y| ≤ m − 1`` (there is a free
    element); in the coloring application this holds because the two
    neighborhoods are disjoint.  Terminates at the latest once the sampling
    probability saturates at 1 (then ``S = [m]`` and the condition
    ``|S∩X| + |S∩Y| < |S|`` is exactly the precondition).

    ``constant`` is Algorithm 3's sampling constant ``C`` (paper: 150);
    the E14 ablation sweeps it to show the cost/failure trade-off.
    """
    if m < 1:
        raise ValueError(f"ground size must be positive, got {m}")
    if constant < 1:
        raise ValueError(f"sampling constant must be >= 1, got {constant}")
    own_in_range = -1  # computed once, on the first saturated guess
    post = ch.post
    unwrap = ch.unwrap
    # Walk guess_schedule(m) lazily: the common case (m <= C, immediately
    # saturated) resolves on the first guess, so materializing the whole
    # exponential schedule per invocation is pure allocation churn.
    k_tilde = m
    while True:
        # At saturation (p >= 1 — immediately, when m <= C) streams
        # answer with the plain ground ``range`` in O(1): no masks, no
        # draws — both parties skip identically, keeping lockstep — and
        # counting our own set needs no scan either.
        sample = pub.sample_indices(m, sampling_probability(m, k_tilde, constant))
        if sample.__class__ is range:
            if own_in_range < 0:
                own_in_range = sum(1 for i in own if 0 <= i < m)
            own_count = own_in_range
        else:
            own_count = sum(1 for i in sample if i in own)
        peer_count = unwrap((yield post(uint_cost(len(sample)), own_count)))
        if own_count + peer_count < len(sample):
            result = yield from slack_find_proto(
                ch, sample, own, own_count=own_count, peer_count=peer_count
            )
            return result
        if k_tilde == 1:
            break
        k_tilde //= 2
    raise RuntimeError(
        "Algorithm 3 exhausted its guesses; the k-Slack-Int precondition "
        "|X|+|Y| <= m-1 must have been violated"
    )


def randomized_slack_party(
    m: int,
    own: Set[int],
    pub: Stream,
    constant: int = SAMPLING_CONSTANT,
):
    """Legacy generator-API adapter for :func:`randomized_slack_proto`."""
    return as_party(randomized_slack_proto, m, own, pub, constant)
