"""``Color-Sample`` — sample an available color uniformly (Lemma 3.1).

Setting: a partial proper vertex coloring is common knowledge; for an
uncolored vertex ``v``, Alice knows the set ``A`` of colors used in her
neighborhood ``N_A(v)`` and Bob knows ``B`` for ``N_B(v)``.  An *available*
color is any element of ``[Δ+1] \\ (A ∪ B)``.

The protocol is Algorithm 3 run on a publicly permuted palette: both parties
apply a shared random permutation to ``[Δ+1]`` and execute the randomized
``k``-Slack-Int search on the permuted positions.  Since the search does not
favor any position pattern and the permutation is uniform, the returned
color is uniform over the available colors (Lemma 3.1), and it is common
knowledge (i).  Expected cost is ``O(log²((Δ+1)/k))`` bits over
``O(log((Δ+1)/k))`` rounds (ii–iii), worst case ``O(log² Δ)`` / ``O(log Δ)``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Set

from ..comm.bits import uint_cost
from ..comm.transport import Channel, as_party
from ..rand import Stream
from .slack import SAMPLING_CONSTANT, randomized_slack_proto

__all__ = ["color_sample_party", "color_sample_proto"]


def color_sample_proto(
    ch: Channel,
    num_colors: int,
    own_used: Set[int],
    pub: Stream,
    sampling_constant: int | None = None,
):
    """One party's side of Color-Sample.

    ``num_colors`` is the palette size ``m = Δ+1``; ``own_used`` is this
    party's set of colors (1-based, subset of ``[1..m]``) occupied in its
    side of the neighborhood.  Returns the sampled available color
    (1-based).  Both parties must pass the *same* ``pub`` stream state.
    ``sampling_constant`` overrides Algorithm 3's ``C`` (default 150) for
    ablation studies.
    """
    if num_colors < 1:
        raise ValueError(f"palette must be non-empty, got {num_colors}")
    for c in own_used:
        if not 1 <= c <= num_colors:
            bad = sorted(x for x in own_used if not 1 <= x <= num_colors)
            raise ValueError(
                f"used colors outside palette [1..{num_colors}]: {bad[:3]}"
            )

    # Public uniform relabeling of the palette: position -> color.  Only
    # the |own_used| inverse lookups and one final forward lookup are
    # requested; above repro.rand's small-m threshold those are O(1)
    # Feistel queries, below it the first access materializes a table
    # (cheaper than cycle-walking at small palette sizes).
    perm = pub.permutation(num_colors)
    own_positions = set(perm.index_of_batch([c - 1 for c in own_used]))

    constant = SAMPLING_CONSTANT if sampling_constant is None else sampling_constant
    if constant >= num_colors:
        # Saturated fast path: Algorithm 3's very first guess k̃ = m has
        # p = min(1, C·m/m²) = 1, so the sample is the whole ground range
        # (drawn without touching the tape) and every later guess only
        # saturates harder.  The entire run — the count exchange plus the
        # Lemma A.1 bisection — is inlined into this single generator
        # frame: the per-round resume otherwise traverses the
        # color-sample → Algorithm-3 → binary-search yield-from chain,
        # which is the dominant simulation cost of the coloring protocols
        # (every (Δ+1)-coloring instance has m = Δ+1 ≤ C).  The sends are
        # bit-for-bit those of :func:`randomized_slack_proto`.
        m = num_colors
        post = ch.post
        unwrap = ch.unwrap
        own_count = len(own_positions)  # positions always lie in [0, m)
        width = uint_cost(m)
        k_tilde = m
        while True:
            peer_count = unwrap((yield post(width, own_count)))
            if own_count + peer_count < m:
                break
            if k_tilde == 1:
                raise RuntimeError(
                    "Algorithm 3 exhausted its guesses; the k-Slack-Int "
                    "precondition |X|+|Y| <= m-1 must have been violated"
                )
            k_tilde //= 2
        own_pos = sorted(own_positions)
        lo, hi = 0, m
        while hi - lo > 1:
            mid = (lo + hi) // 2
            own_left = bisect_left(own_pos, mid) - bisect_left(own_pos, lo)
            peer_left = unwrap((yield post((mid - lo).bit_length(), own_left)))
            if (mid - lo) - own_left - peer_left >= 1:
                hi = mid
            else:
                lo = mid
        return perm[lo] + 1

    position = yield from randomized_slack_proto(
        ch, num_colors, own_positions, pub, constant=constant
    )
    return perm[position] + 1


def color_sample_party(
    num_colors: int,
    own_used: Set[int],
    pub: Stream,
    sampling_constant: int | None = None,
):
    """Legacy generator-API adapter for :func:`color_sample_proto`."""
    return as_party(color_sample_proto, num_colors, own_used, pub, sampling_constant)
