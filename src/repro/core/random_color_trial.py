"""``Random-Color-Trial`` — Algorithm 1 of the paper (Lemma 4.1).

Each iteration, every *active* (uncolored) vertex flips a public coin; awake
vertices sample an available color uniformly via parallel Color-Sample
instances (sharing rounds: the iteration's round cost is the max over the
instances, its bit cost the sum), then the parties exchange one confirmation
bit per awake vertex reporting whether any of *their* neighbors tried the
same color.  A vertex keeps its color iff both sides confirm.

Guarantees (Lemma 4.1): expected ``O(n/log⁴ n)`` vertices stay uncolored
after ``⌈1 + 4·log_{24/23} log n⌉`` iterations, expected ``O(n)`` bits, and
``O(log log n · log Δ)`` worst-case rounds.

The trial colors and confirmations are common knowledge, so both parties
always agree on the active set; in particular they can stop early once it
is empty (a free optimization the paper's fixed iteration count dominates).
"""

from __future__ import annotations

import math

from ..comm.bits import bitmap_cost
from ..comm.transport import Channel, as_party
from ..rand import Stream
from ..graphs.graph import Graph
from .color_sample import color_sample_proto
from .probes import confirmation_bits

__all__ = [
    "paper_iteration_count",
    "random_color_trial_party",
    "random_color_trial_proto",
]

#: Per-iteration success-probability bound of Lemma 4.2 is 1/24, giving the
#: decay base 24/23 used in the paper's iteration count.
DECAY_BASE = 24.0 / 23.0


def paper_iteration_count(n: int) -> int:
    """The paper's iteration budget ``⌈1 + 4·log_{24/23} log₂ n⌉``."""
    if n < 2:
        return 1
    loglog = math.log2(n)
    if loglog <= 1.0:
        return 1
    return math.ceil(1 + 4 * math.log(loglog, DECAY_BASE))


def random_color_trial_proto(
    ch: Channel,
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
    max_iterations: int | None = None,
    active_history: list[int] | None = None,
):
    """One party's side of Random-Color-Trial.

    ``own_graph`` is this party's local graph (all ``n`` vertices, its own
    edges); ``num_colors`` is the public palette size ``Δ+1``.  Returns the
    common-knowledge partial coloring and the sorted list of still-active
    vertices.  If ``active_history`` is given, the active-set size at the
    start of each iteration is appended to it (instrumentation for the
    Lemma 4.3 decay experiment; it does not affect the protocol).
    """
    n = own_graph.n
    iterations = paper_iteration_count(n) if max_iterations is None else max_iterations
    colors: dict[int, int] = {}
    active = list(range(n))

    for iteration in range(iterations):
        if active_history is not None:
            active_history.append(len(active))
        if not active:
            break
        # Public per-vertex participation coins (no communication).
        flips = pub.coins(len(active), 0.5)
        awake = [v for v, f in zip(active, flips) if f]
        if not awake:
            continue

        # Spec tuples, not one closure per vertex: ch.parallel invokes
        # (proto, args...) as proto(sub, *args) directly.
        iter_base = pub.derive("rct", iteration)
        samplers = {
            v: (
                color_sample_proto,
                num_colors,
                own_graph.neighbor_colors(v, colors),
                iter_base.derive(v),
            )
            for v in awake
        }
        chosen: dict[int, int] = yield from ch.parallel(samplers)

        # One confirmation bit per awake vertex: "no conflict on my side" —
        # a color-class mask sweep over the whole awake neighborhood.
        awake_set = set(awake)
        own_ok = confirmation_bits(own_graph, awake, chosen)
        peer_ok = yield from ch.send(bitmap_cost(len(awake)), own_ok)

        still_active = []
        for idx, v in enumerate(awake):
            if own_ok[idx] and peer_ok[idx]:
                colors[v] = chosen[v]
            else:
                still_active.append(v)
        awake_survivors = set(still_active)
        active = [v for v in active if v not in awake_set or v in awake_survivors]

    return colors, active


def random_color_trial_party(
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
    max_iterations: int | None = None,
    active_history: list[int] | None = None,
):
    """Legacy generator-API adapter for :func:`random_color_trial_proto`."""
    return as_party(
        random_color_trial_proto,
        own_graph,
        num_colors,
        pub,
        max_iterations,
        active_history,
    )
