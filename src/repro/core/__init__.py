"""The paper's contribution: round- and communication-efficient coloring protocols."""

from .color_sample import color_sample_party, color_sample_proto
from .cover_colors import CoverMessage, build_cover_message, decode_cover_message
from .d1lc import d1lc_party, d1lc_proto, sample_list_size, sparsity_threshold
from .edge_coloring import (
    SMALL_DELTA_THRESHOLD,
    EdgeColoringResult,
    edge_coloring_party,
    edge_coloring_proto,
    run_edge_coloring,
    run_zero_comm_edge_coloring,
    zero_comm_edge_coloring_party,
)
from .random_color_trial import (
    paper_iteration_count,
    random_color_trial_party,
    random_color_trial_proto,
)
from .slack import (
    randomized_slack_party,
    randomized_slack_proto,
    slack_find_party,
    slack_find_proto,
)
from .vertex_coloring import (
    VertexColoringResult,
    run_vertex_coloring,
    vertex_coloring_proto,
)
from .weaker import (
    WeakerEdgeColoringResult,
    validate_weaker_result,
    weaker_from_streaming,
    weaker_from_strict,
)

__all__ = [
    "CoverMessage",
    "EdgeColoringResult",
    "SMALL_DELTA_THRESHOLD",
    "VertexColoringResult",
    "WeakerEdgeColoringResult",
    "build_cover_message",
    "color_sample_party",
    "color_sample_proto",
    "d1lc_party",
    "d1lc_proto",
    "decode_cover_message",
    "edge_coloring_party",
    "edge_coloring_proto",
    "paper_iteration_count",
    "random_color_trial_party",
    "random_color_trial_proto",
    "randomized_slack_party",
    "randomized_slack_proto",
    "run_edge_coloring",
    "run_vertex_coloring",
    "run_zero_comm_edge_coloring",
    "sample_list_size",
    "slack_find_party",
    "slack_find_proto",
    "sparsity_threshold",
    "validate_weaker_result",
    "vertex_coloring_proto",
    "weaker_from_streaming",
    "weaker_from_strict",
    "zero_comm_edge_coloring_party",
]
