"""The full ``(Δ+1)``-vertex coloring protocol — Theorem 1.

Pipeline (Section 4.4):

1. **Random-Color-Trial** (Algorithm 1) colors all but an expected
   ``O(n/log⁴ n)`` vertices.
2. The leftover uncolored set ``Z`` induces a **D1LC instance**: each party
   derives its list ``Ψ_X(v) = [Δ+1] \\ (colors used in its side of the
   neighborhood)``; the intersection exceeds the leftover degree.
3. The **D1LC protocol** (Lemma 3.3) colors ``Z``.

Total: ``O(n)`` expected bits, ``O(log log n · log Δ)`` worst-case rounds.

The module exposes both the raw party generators (for protocol composition)
and :func:`run_vertex_coloring`, the measured driver every experiment uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..comm.ledger import Transcript
from ..comm.transport import Channel, Transport, resolve_transport
from ..rand import Stream
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .d1lc import d1lc_proto
from .random_color_trial import paper_iteration_count, random_color_trial_proto

__all__ = ["VertexColoringResult", "run_vertex_coloring", "vertex_coloring_proto"]

PHASE_TRIAL = "random_color_trial"
PHASE_LEFTOVER = "d1lc_leftover"


@dataclass
class VertexColoringResult:
    """Outcome of one Theorem 1 execution."""

    colors: dict[int, int]
    transcript: Transcript
    num_colors: int
    leftover_size: int
    trial_iterations_cap: int

    @property
    def total_bits(self) -> int:
        """Bits exchanged across both phases."""
        return self.transcript.total_bits

    @property
    def rounds(self) -> int:
        """Rounds used across both phases."""
        return self.transcript.rounds


def leftover_lists(
    own_graph: Graph,
    colors: dict[int, int],
    active: list[int],
    num_colors: int,
) -> dict[int, set[int]]:
    """This party's D1LC lists for the leftover instance (Section 4.4)."""
    palette = set(range(1, num_colors + 1))
    lists = {}
    for v in active:
        used = own_graph.neighbor_colors(v, colors)
        lists[v] = palette - used
    return lists


def leftover_graph(own_graph: Graph, active: list[int]) -> Graph:
    """This party's edges of the subgraph induced by the leftover set."""
    return own_graph.induced_subgraph(active)


def vertex_coloring_proto(
    ch: Channel,
    role: str,
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
    rng: random.Random,
    trial_cap: int,
):
    """One party's side of the full Theorem 1 pipeline.

    Phase ``random_color_trial`` runs Algorithm 1; if any vertices stay
    uncolored, phase ``d1lc_leftover`` colors the induced D1LC instance
    (Section 4.4).  Returns ``(colors, leftover_size)``, both common
    knowledge.
    """
    with ch.phase(PHASE_TRIAL):
        colors, active = yield from random_color_trial_proto(
            ch, own_graph, num_colors, pub, trial_cap
        )
    leftover_size = len(active)
    if active:
        pub_leftover = pub.derive("d1lc-phase")
        with ch.phase(PHASE_LEFTOVER):
            final = yield from d1lc_proto(
                ch,
                role,
                leftover_graph(own_graph, active),
                leftover_lists(own_graph, colors, active, num_colors),
                active,
                num_colors,
                pub_leftover,
                rng,
            )
        colors.update(final)
    return colors, leftover_size


def run_vertex_coloring(
    partition: EdgePartition,
    seed: int = 0,
    max_trial_iterations: int | None = None,
    transport: str | Transport | None = None,
    rand: Stream | None = None,
) -> VertexColoringResult:
    """Execute the Theorem 1 protocol on an edge-partitioned graph.

    The two parties read identical public tapes and disjoint private
    tapes, all derived from one root: pass ``rand`` (a :class:`Stream`)
    to compose this run under a caller-owned key hierarchy, or ``seed``
    (the back-compat alias) to root at ``Stream.from_seed(seed)`` — the
    two are interchangeable, ``run(part, seed=s)`` draws bit-for-bit the
    same tape as ``run(part, rand=Stream.from_seed(s))``.  Returns the
    common-knowledge coloring with the measured transcript (phases
    ``random_color_trial`` and ``d1lc_leftover``).  ``transport`` picks
    the comm simulation backend (name or instance; default lockstep).
    """
    n = partition.n
    delta = partition.max_degree
    num_colors = delta + 1
    core = resolve_transport(transport)
    transcript = core.new_transcript()

    if delta == 0:
        # Edgeless graph: both parties color everything 1, zero communication.
        colors = {v: 1 for v in range(n)}
        return VertexColoringResult(colors, transcript, num_colors, 0, 0)

    cap = (
        paper_iteration_count(n)
        if max_trial_iterations is None
        else max_trial_iterations
    )

    # Equal keys => identical public tapes; the private solver RNGs live
    # in label-separated stream space, so they never collide with any
    # public draw of the same root.  derive() ignores the root's counter,
    # so a partially-consumed rand stream still yields the same children.
    root = rand if rand is not None else Stream.from_seed(seed)
    pub_alice = root.derive("public")
    pub_bob = root.derive("public")
    rng_alice = root.derive_random("alice-private")
    rng_bob = root.derive_random("bob-private")

    # Spec tuples, matching ch.parallel's vocabulary: the transport calls
    # vertex_coloring_proto(ch, ...) directly, no per-run closures.
    (a_colors, a_leftover), (b_colors, b_leftover), _ = core.run(
        (
            vertex_coloring_proto,
            "alice",
            partition.alice_graph,
            num_colors,
            pub_alice,
            rng_alice,
            cap,
        ),
        (
            vertex_coloring_proto,
            "bob",
            partition.bob_graph,
            num_colors,
            pub_bob,
            rng_bob,
            cap,
        ),
        transcript,
    )
    if a_colors != b_colors or a_leftover != b_leftover:
        raise AssertionError("parties disagree on the coloring")

    return VertexColoringResult(a_colors, transcript, num_colors, a_leftover, cap)
