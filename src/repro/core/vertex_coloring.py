"""The full ``(Δ+1)``-vertex coloring protocol — Theorem 1.

Pipeline (Section 4.4):

1. **Random-Color-Trial** (Algorithm 1) colors all but an expected
   ``O(n/log⁴ n)`` vertices.
2. The leftover uncolored set ``Z`` induces a **D1LC instance**: each party
   derives its list ``Ψ_X(v) = [Δ+1] \\ (colors used in its side of the
   neighborhood)``; the intersection exceeds the leftover degree.
3. The **D1LC protocol** (Lemma 3.3) colors ``Z``.

Total: ``O(n)`` expected bits, ``O(log log n · log Δ)`` worst-case rounds.

The module exposes both the raw party generators (for protocol composition)
and :func:`run_vertex_coloring`, the measured driver every experiment uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..comm.ledger import Transcript
from ..comm.randomness import PublicRandomness, split_rng
from ..comm.runner import run_protocol
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .d1lc import d1lc_party
from .random_color_trial import paper_iteration_count, random_color_trial_party

__all__ = ["VertexColoringResult", "run_vertex_coloring"]

PHASE_TRIAL = "random_color_trial"
PHASE_LEFTOVER = "d1lc_leftover"


@dataclass
class VertexColoringResult:
    """Outcome of one Theorem 1 execution."""

    colors: dict[int, int]
    transcript: Transcript
    num_colors: int
    leftover_size: int
    trial_iterations_cap: int

    @property
    def total_bits(self) -> int:
        """Bits exchanged across both phases."""
        return self.transcript.total_bits

    @property
    def rounds(self) -> int:
        """Rounds used across both phases."""
        return self.transcript.rounds


def leftover_lists(
    own_graph: Graph,
    colors: dict[int, int],
    active: list[int],
    num_colors: int,
) -> dict[int, set[int]]:
    """This party's D1LC lists for the leftover instance (Section 4.4)."""
    palette = set(range(1, num_colors + 1))
    lists = {}
    for v in active:
        used = own_graph.neighbor_colors(v, colors)
        lists[v] = palette - used
    return lists


def leftover_graph(own_graph: Graph, active: list[int]) -> Graph:
    """This party's edges of the subgraph induced by the leftover set."""
    return own_graph.induced_subgraph(active)


def run_vertex_coloring(
    partition: EdgePartition,
    seed: int = 0,
    max_trial_iterations: int | None = None,
) -> VertexColoringResult:
    """Execute the Theorem 1 protocol on an edge-partitioned graph.

    The two parties read identical public tapes (same ``seed``) and disjoint
    private tapes.  Returns the common-knowledge coloring with the measured
    transcript (phases ``random_color_trial`` and ``d1lc_leftover``).
    """
    n = partition.n
    delta = partition.max_degree
    num_colors = delta + 1
    transcript = Transcript()

    if delta == 0:
        # Edgeless graph: both parties color everything 1, zero communication.
        colors = {v: 1 for v in range(n)}
        return VertexColoringResult(colors, transcript, num_colors, 0, 0)

    cap = (
        paper_iteration_count(n)
        if max_trial_iterations is None
        else max_trial_iterations
    )

    pub_alice = PublicRandomness(seed)
    pub_bob = PublicRandomness(seed)

    with transcript.phase(PHASE_TRIAL):
        (a_colors, a_active), (b_colors, b_active), _ = run_protocol(
            random_color_trial_party(
                partition.alice_graph, num_colors, pub_alice, cap
            ),
            random_color_trial_party(partition.bob_graph, num_colors, pub_bob, cap),
            transcript,
        )
    if a_colors != b_colors or a_active != b_active:
        raise AssertionError("parties disagree on the partial coloring")
    colors, active = a_colors, a_active
    leftover_size = len(active)

    if active:
        rng_alice = split_rng(random.Random(seed), "alice-private")
        rng_bob = split_rng(random.Random(seed), "bob-private")
        pub_a2 = pub_alice.spawn("d1lc-phase")
        pub_b2 = pub_bob.spawn("d1lc-phase")
        with transcript.phase(PHASE_LEFTOVER):
            a_final, b_final, _ = run_protocol(
                d1lc_party(
                    "alice",
                    leftover_graph(partition.alice_graph, active),
                    leftover_lists(partition.alice_graph, colors, active, num_colors),
                    active,
                    num_colors,
                    pub_a2,
                    rng_alice,
                ),
                d1lc_party(
                    "bob",
                    leftover_graph(partition.bob_graph, active),
                    leftover_lists(partition.bob_graph, colors, active, num_colors),
                    active,
                    num_colors,
                    pub_b2,
                    rng_bob,
                ),
                transcript,
            )
        if a_final != b_final:
            raise AssertionError("parties disagree on the leftover coloring")
        colors.update(a_final)

    return VertexColoringResult(colors, transcript, num_colors, leftover_size, cap)
