"""The *weaker*-(2Δ−1)-edge coloring problem (Section 6.4, Theorem 5).

In the weaker variant, parties need not report their own edges: each party
may output colors for *any* edges, as long as every edge is reported by at
least one party and the union of reports is a consistent proper coloring.
This is the relaxation that makes the W-streaming reduction go through —
a streaming simulator may emit a color for an edge the currently
simulating party does not own.

This module gives the problem a first-class result type and validator,
plus the two canonical producers:

* any *strict* protocol result (Theorem 2) is trivially a weaker result;
* the streaming reduction (:func:`repro.lowerbound.wstreaming.
  reduce_streaming_to_two_party`) produces genuinely weaker outputs.

Theorem 5: even this relaxed problem needs ``Ω(n)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ledger import Transcript
from ..graphs.graph import Edge, canonical_edge
from ..graphs.partition import EdgePartition
from .edge_coloring import EdgeColoringResult

__all__ = [
    "WeakerEdgeColoringResult",
    "validate_weaker_result",
    "weaker_from_strict",
    "weaker_from_streaming",
]


@dataclass
class WeakerEdgeColoringResult:
    """Per-party edge-color reports under the weaker output rule."""

    alice_reports: dict[Edge, int]
    bob_reports: dict[Edge, int]
    transcript: Transcript
    num_colors: int

    @property
    def colors(self) -> dict[Edge, int]:
        """The merged coloring (reports agree wherever they overlap)."""
        merged = dict(self.alice_reports)
        merged.update(self.bob_reports)
        return merged

    @property
    def total_bits(self) -> int:
        return self.transcript.total_bits


def validate_weaker_result(
    partition: EdgePartition,
    result: WeakerEdgeColoringResult,
) -> list[str]:
    """All violations of the weaker-output contract (empty = valid).

    Checks: every edge reported by at least one party; overlapping reports
    agree; no phantom edges; colors in palette; union proper.
    """
    problems: list[str] = []
    graph = partition.graph
    edges = set(graph.edges())

    reported = set(result.alice_reports) | set(result.bob_reports)
    missing = edges - reported
    if missing:
        problems.append(f"{len(missing)} edges unreported, e.g. {sorted(missing)[:3]}")
    phantom = reported - edges
    if phantom:
        problems.append(f"reports for non-edges, e.g. {sorted(phantom)[:3]}")
    overlap = set(result.alice_reports) & set(result.bob_reports)
    disagreements = [
        e for e in overlap if result.alice_reports[e] != result.bob_reports[e]
    ]
    if disagreements:
        problems.append(
            f"parties disagree on {len(disagreements)} edges, "
            f"e.g. {disagreements[:3]}"
        )

    merged = result.colors
    bad_palette = [
        e for e, c in merged.items() if not 1 <= c <= result.num_colors
    ]
    if bad_palette:
        problems.append(
            f"{len(bad_palette)} reports outside palette [1..{result.num_colors}]"
        )
    for v in graph.vertices():
        seen: dict[int, Edge] = {}
        for u in graph.neighbors(v):
            edge = canonical_edge(u, v)
            color = merged.get(edge)
            if color is None:
                continue
            if color in seen:
                problems.append(
                    f"edges {seen[color]} and {edge} share color {color} at {v}"
                )
                break
            seen[color] = edge
    return problems


def weaker_from_strict(result: EdgeColoringResult) -> WeakerEdgeColoringResult:
    """Reinterpret a strict (Theorem 2 style) result as a weaker result.

    Strict outputs satisfy the weaker contract by construction: each party
    reports exactly its own edges, so coverage and agreement are immediate.
    """
    return WeakerEdgeColoringResult(
        dict(result.alice_colors),
        dict(result.bob_colors),
        result.transcript,
        result.num_colors,
    )


def weaker_from_streaming(
    partition: EdgePartition,
    algorithm_factory,
    transport=None,
) -> WeakerEdgeColoringResult:
    """Run the streaming reduction and package its (weaker) outputs.

    The reduction's communication equals the streaming state size; by
    Theorem 5 it is therefore ``Ω(n)`` — the bridge to Corollary 1.2.
    ``transport`` is forwarded to the reduction's comm simulation.
    """
    from ..lowerbound.wstreaming import reduce_streaming_to_two_party

    alice_out, bob_out, transcript = reduce_streaming_to_two_party(
        partition, algorithm_factory, transport=transport
    )
    delta = partition.max_degree
    return WeakerEdgeColoringResult(
        alice_out, bob_out, transcript, max(2 * delta - 1, 1)
    )
