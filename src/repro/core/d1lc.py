"""Protocol for (degree+1)-list coloring — Lemma 3.3.

Two-party D1LC (Section 3.3): edges of ``G`` are split between the parties;
for each vertex ``v`` Alice holds a list ``Ψ_A(v) ⊆ [m]`` and Bob holds
``Ψ_B(v) ⊆ [m]``; the effective palette is ``Ψ(v) = Ψ_A(v) ∩ Ψ_B(v)`` with
``|Ψ(v)| ≥ deg(v) + 1``.  The protocol:

1. *Sparsify* (Proposition 3.2): for every vertex run ``Θ(log² n)``
   parallel Color-Sample instances over the complements of the lists to
   draw ``L(v) ⊆ Ψ(v)``; drop every edge whose endpoints' samples are
   disjoint (any proper coloring from the ``L``-lists is then automatically
   proper on the dropped edges).
2. *Gather*: Bob ships his surviving edges to Alice; whp the sparsified
   graph ``H`` has ``O(n log² n)`` edges.
3. *Solve*: Alice list-colors ``H`` from the ``L``-lists (randomized greedy
   + repair) and broadcasts the colors.
4. *Fallback* (probability ``≤ 1/n^c``): if ``H`` is too dense or Alice's
   solver fails, Bob ships his entire instance and Alice runs the
   always-successful sequential D1LC greedy.

Expected ``O(n log² n log² Δ + n log³ n)`` bits, ``O(log Δ)`` worst-case
rounds (the parallel sampling dominates).
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence

from ..comm.bits import gamma_cost, uint_cost
from ..comm.codecs import (
    edge_list_codec,
    encode_color_vector,
    encode_edge_list,
    encode_flag_bitmap,
)
from ..comm.transport import Channel, as_party
from ..rand import Stream
from ..coloring.greedy import greedy_d1lc_coloring
from ..coloring.list_coloring import solve_list_coloring
from ..graphs.graph import Graph
from .color_sample import color_sample_proto
from .probes import surviving_edges

__all__ = ["d1lc_party", "d1lc_proto", "sample_list_size", "sparsity_threshold"]

#: Multiplier on ``log² n`` for the per-vertex sample-list size (Prop. 3.2).
SAMPLE_FACTOR = 2.0
#: Multiplier on ``n log² n`` for the sparsified-edge-count sanity threshold.
SPARSITY_FACTOR = 4.0


def sample_list_size(num_vertices: int) -> int:
    """``Θ(log² n)`` sample-list size for palette sparsification."""
    base = math.log2(max(num_vertices, 2))
    return max(4, math.ceil(SAMPLE_FACTOR * base * base))


def sparsity_threshold(num_vertices: int) -> int:
    """Edge-count bound above which the protocol falls back to gathering."""
    base = math.log2(max(num_vertices, 2))
    return max(8, math.ceil(SPARSITY_FACTOR * max(num_vertices, 1) * base * base))


def _verdict_codec(m: int):
    """Strict codec for Alice's ("ok", colors) / ("fallback", None) verdict."""

    def encode(payload):
        tag, packed = payload
        if tag == "ok":
            return encode_flag_bitmap([True]) + encode_color_vector(packed, m)
        return encode_flag_bitmap([False])

    return encode


def _instance_codec(n: int, m: int):
    """Strict codec for Bob's fallback instance: edges + palette bitmaps."""

    def encode(payload):
        edges, lists = payload
        bits = encode_edge_list(edges, n)
        for _v, colors in lists:
            members = set(colors)
            bits += encode_flag_bitmap([c in members for c in range(1, m + 1)])
        return bits

    return encode


def d1lc_proto(
    ch: Channel,
    role: str,
    own_graph: Graph,
    own_lists: Mapping[int, set[int]],
    active: Sequence[int],
    num_colors: int,
    pub: Stream,
    rng: random.Random,
):
    """One party's side of the D1LC protocol (Lemma 3.3).

    ``own_graph`` holds this party's edges among ``active`` vertices (on the
    full vertex range); ``own_lists[v] ⊆ [1..num_colors]`` is this party's
    list.  Requires ``|Ψ_A(v)| + |Ψ_B(v)| ≥ m + 1`` so that Color-Sample's
    slack precondition holds — automatic for instances arising from partial
    ``(Δ+1)``-colorings (Section 4.4).  Returns the full coloring of the
    active vertices (common knowledge).
    """
    if role not in ("alice", "bob"):
        raise ValueError(f"role must be 'alice' or 'bob', got {role!r}")
    active = sorted(active)
    n_active = len(active)
    if n_active == 0:
        return {}
    m = num_colors
    palette = set(range(1, m + 1))

    # Step 1: palette sparsification via parallel Color-Sample.
    ell = sample_list_size(n_active)
    samplers = {}
    for v in active:
        own_complement = palette - set(own_lists[v])
        v_base = pub.derive("d1lc", v)
        for j in range(ell):
            # Spec tuple: ch.parallel calls color_sample_proto(sub, ...).
            samplers[(v, j)] = (
                color_sample_proto,
                m,
                own_complement,
                v_base.derive(j),
            )
    draws = yield from ch.parallel(samplers)
    sampled: dict[int, set[int]] = {v: set() for v in active}
    for (v, _j), color in draws.items():
        sampled[v].add(color)

    # Step 2: locally drop own edges with disjoint sampled lists (one int
    # bitmask per vertex, one AND per edge).
    surviving = surviving_edges(own_graph.edges(), sampled)

    # Step 3: Bob ships his surviving edges to Alice; Alice tries to solve
    # the sparsified instance and either broadcasts colors or requests the
    # fallback.
    n = own_graph.n
    edge_width = 2 * uint_cost(max(n - 1, 1))

    if role == "bob":
        cost = gamma_cost(len(surviving) + 1) + len(surviving) * edge_width
        yield from ch.send(cost, tuple(surviving), codec=edge_list_codec(n))
        tag, packed = yield from ch.recv()
        if tag == "ok":
            return _unpack_colors(packed, active)
        # Step 4 (fallback): ship the whole local instance, receive colors.
        edges = tuple(own_graph.edges())
        lists = tuple((v, tuple(sorted(own_lists[v]))) for v in active)
        cost = (
            gamma_cost(len(edges) + 1)
            + len(edges) * edge_width
            + n_active * m  # palette bitmaps
        )
        yield from ch.send(cost, (edges, lists), codec=_instance_codec(n, m))
        final = yield from ch.recv()
        return _unpack_colors(final, active)

    peer_edges = yield from ch.recv()
    sparse = type(own_graph)(n, list(surviving) + list(peer_edges))
    colors: dict[int, int] | None = None
    if sparse.m <= sparsity_threshold(n_active):
        induced_sparse = _induced_on(sparse, active)
        induced_lists = {idx: sampled[v] for idx, v in enumerate(active)}
        local = solve_list_coloring(induced_sparse, induced_lists, rng)
        if local is not None:
            colors = {active[idx]: c for idx, c in local.items()}
    if colors is not None:
        yield from ch.send(
            1 + n_active * uint_cost(m),
            ("ok", _pack_colors(colors, active)),
            codec=_verdict_codec(m),
        )
        return colors

    # Step 4 (fallback): gather Bob's instance and solve sequentially.
    yield from ch.send(1, ("fallback", None), codec=_verdict_codec(m))
    bob_edges, bob_lists_packed = yield from ch.recv()
    full = type(own_graph)(n, list(own_graph.edges()) + list(bob_edges))
    merged_lists = {v: set(own_lists[v]) & set(blist) for v, blist in bob_lists_packed}
    induced = _induced_on(full, active)
    local_lists = {idx: merged_lists[v] for idx, v in enumerate(active)}
    local_colors = greedy_d1lc_coloring(induced, local_lists)
    colors = {active[idx]: c for idx, c in local_colors.items()}
    yield from ch.send(
        n_active * uint_cost(m),
        _pack_colors(colors, active),
        codec=lambda p: encode_color_vector(p, m),
    )
    return colors


def d1lc_party(
    role: str,
    own_graph: Graph,
    own_lists: Mapping[int, set[int]],
    active: Sequence[int],
    num_colors: int,
    pub: Stream,
    rng: random.Random,
):
    """Legacy generator-API adapter for :func:`d1lc_proto`."""
    return as_party(d1lc_proto, role, own_graph, own_lists, active, num_colors, pub, rng)


def _pack_colors(colors: dict[int, int] | None, active: Sequence[int]) -> tuple | None:
    """Order colors by the (public) sorted active list for transmission."""
    if colors is None:
        return None
    return tuple(colors[v] for v in active)


def _unpack_colors(packed: Sequence[int], active: Sequence[int]) -> dict[int, int]:
    """Inverse of :func:`_pack_colors`."""
    return {v: c for v, c in zip(active, packed)}


def _induced_on(graph: Graph, active: Sequence[int]) -> Graph:
    """The subgraph induced on ``active``, relabelled to ``0..|active|-1``."""
    index = {v: i for i, v in enumerate(active)}
    induced = type(graph)(len(active))
    packed = graph.pack_vertices(active)
    for v in active:
        for u in graph.neighbors_in(v, packed):
            if v < u:
                induced.add_edge(index[v], index[u])
    return induced
