"""The cover-colors protocol of Lemma 5.4.

One party (say Bob) must let Alice learn, for every vertex ``v`` with
``deg_B(v) ≤ Δ/2``, one color of Bob's palette still available at ``v``
under Bob's local coloring — using ``O(n)`` bits and a single message.

Bob's construction: since each low-degree vertex has ``≥ (Δ−1)/3`` of his
``Δ−1`` palette colors available, a double-counting argument yields a color
available for ``≥ 1/3`` of any set of low-degree vertices.  Bob greedily
picks such colors; the ``i``-th pick comes with a bitmap over the still
uncovered vertices, so total bitmap length is a geometric series ``≤ 3n``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..comm.bits import gamma_cost, uint_cost
from ..graphs.bitset import iter_bits

__all__ = ["CoverMessage", "build_cover_message", "decode_cover_message"]


@dataclass(frozen=True)
class CoverMessage:
    """The one-shot message of Lemma 5.4.

    ``colors[i]`` is the ``i``-th cover color; ``bitmaps[i]`` flags, over
    the vertices still uncovered before round ``i`` (in sorted order),
    which of them this color covers.
    """

    colors: tuple[int, ...]
    bitmaps: tuple[tuple[bool, ...], ...]
    nbits: int


def build_cover_message(
    low_vertices: Sequence[int],
    available: Mapping[int, set[int]],
    palette: Sequence[int],
) -> CoverMessage:
    """Greedy third-covering of the low-degree vertices' available colors.

    ``available[v]`` must be non-empty for every low vertex (guaranteed by
    the degree bound, Lemma 5.4).  Raises ``ValueError`` if some vertex has
    no available color — a protocol-logic bug upstream.
    """
    base = sorted(low_vertices)
    for v in base:
        if not available[v]:
            raise ValueError(f"vertex {v} has no available palette color")
    # One bitmask per palette color over positions of ``base``: the greedy
    # loop below then runs on word-parallel AND + popcount instead of
    # per-vertex membership tests.
    covers: dict[int, int] = {color: 0 for color in palette}
    for pos, v in enumerate(base):
        bit = 1 << pos
        for color in available[v]:
            if color in covers:
                covers[color] |= bit
    colors: list[int] = []
    bitmaps: list[tuple[bool, ...]] = []
    nbits = 0
    alive = (1 << len(base)) - 1
    while alive:
        best_color, best_count = None, -1
        for color in palette:
            count = (covers[color] & alive).bit_count()
            if count > best_count:
                best_color, best_count = color, count
        if best_color is None or best_count == 0:
            raise ValueError("no palette color covers any uncovered vertex")
        hits = covers[best_color]
        flags = tuple(bool((hits >> pos) & 1) for pos in iter_bits(alive))
        colors.append(best_color)
        bitmaps.append(flags)
        nbits += uint_cost(max(palette)) + len(flags)
        alive &= ~hits
    nbits += gamma_cost(len(colors) + 1)  # announce the number of rounds
    return CoverMessage(tuple(colors), tuple(bitmaps), nbits)


def decode_cover_message(
    low_vertices: Sequence[int],
    message: CoverMessage,
) -> dict[int, int]:
    """Recover the vertex → color assignment from a cover message.

    ``low_vertices`` must be the same set the sender used (it is common
    knowledge after the degree bitmaps are exchanged in Algorithm 2).
    """
    uncovered = sorted(low_vertices)
    assignment: dict[int, int] = {}
    for color, flags in zip(message.colors, message.bitmaps):
        if len(flags) != len(uncovered):
            raise ValueError("cover message bitmap length mismatch")
        remaining = []
        for v, hit in zip(uncovered, flags):
            if hit:
                assignment[v] = color
            else:
                remaining.append(v)
        uncovered = remaining
    if uncovered:
        raise ValueError(f"cover message leaves vertices uncovered: {uncovered[:3]}")
    return assignment
