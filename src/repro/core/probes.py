"""Whole-neighborhood batch probes for the protocol hot loops.

The per-vertex inner loops of Random-Color-Trial and D1LC spend their
time asking set-membership questions vertex by vertex.  These helpers
restate those questions as batch sweeps over packed masks:

* :func:`confirmation_bits` — the Algorithm 1 confirmation check, as a
  *color-class sweep*: awake vertices are grouped by their trial color,
  each class is packed once into the backend's native mask, and a vertex
  conflicts iff it has a neighbor inside its own class — one
  ``has_neighbor_in`` probe (a word-parallel AND on the bitset backend)
  instead of walking every awake neighbor and comparing colors.
* :func:`surviving_edges` — D1LC step 2's disjointness filter over int
  color bitmasks: each sampled list folds to one int, and an edge
  survives iff the endpoint masks intersect (``&`` + truthiness), with
  no per-edge set allocation.

Both are pure local computation (no draws, no communication) and produce
exactly the values the inline loops they replace produced, so transcripts
and colorings are unchanged — pinned by the equivalence tests.  The
batched *randomness* feeding these loops (participation coins, sampled
lists) comes from the :mod:`repro.rand.kernels` dispatch underneath
``Stream.coins`` and friends.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..graphs.graph import Edge, Graph

__all__ = ["confirmation_bits", "surviving_edges"]


def confirmation_bits(
    own_graph: Graph,
    awake: Sequence[int],
    chosen: Mapping[int, int],
) -> tuple[bool, ...]:
    """One confirmation bit per awake vertex: no own-side conflict.

    Equivalent to ``all(chosen[u] != chosen[v] for u in N_own(v) ∩ awake)``
    per awake ``v``: a neighbor disagrees on color exactly when it sits in
    a *different* color class, so ``v`` is conflict-free iff it has no
    neighbor inside its own class.  Each class is packed once; the sweep
    is then one existence probe per vertex.

    Backends may carry a native ``confirmation_bits`` method (the CSR
    backend sweeps its index rows directly instead of packing per-class
    masks); it must return exactly the booleans of the generic sweep
    below.  The set and bitset backends define no such hook and take the
    generic path unchanged.
    """
    backend_sweep = getattr(own_graph, "confirmation_bits", None)
    if backend_sweep is not None:
        return backend_sweep(awake, chosen)
    by_color: dict[int, list[int]] = {}
    for v in awake:
        by_color.setdefault(chosen[v], []).append(v)
    class_packed = {
        color: own_graph.pack_vertices(members)
        for color, members in by_color.items()
    }
    has_neighbor_in = own_graph.has_neighbor_in
    return tuple(not has_neighbor_in(v, class_packed[chosen[v]]) for v in awake)


def surviving_edges(
    edges: Iterable[Edge],
    sampled: Mapping[int, set[int]],
) -> list[Edge]:
    """The edges whose endpoints drew intersecting sample lists.

    Folds each vertex's sampled color set into one int bitmask (colors
    are small positive ints), then filters with a single ``&`` per edge —
    the popcount-style restatement of ``sampled[u] & sampled[v]`` set
    intersections.
    """
    masks: dict[int, int] = {}
    for v, colors in sampled.items():
        mask = 0
        for c in colors:
            mask |= 1 << c
        masks[v] = mask
    return [(u, v) for u, v in edges if masks[u] & masks[v]]
