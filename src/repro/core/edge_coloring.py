"""Edge-coloring protocols: Theorem 2 (Algorithm 2), Lemma 5.1, Theorem 3.

**Theorem 2** — deterministic ``(2Δ−1)``-edge coloring with ``O(n)`` bits in
``O(1)`` rounds.  The ``2Δ−1`` colors split into Alice's palette (``Δ−1``
colors), Bob's palette (``Δ−1`` colors) and one *special* color.  Each party
locally:

1. *defers* edges joining two vertices of remaining degree ``≥ Δ−1``
   (Lemma 5.2: the deferred subgraph has max degree 2);
2. extracts a *Δ-perfect matching* covering its remaining degree-``Δ``
   vertices (Lemma 5.3);
3. colors the remaining subgraph with its own ``Δ−1``-color palette via
   Fournier's theorem (Proposition 3.5).

Round 1 exchanges three ``O(n)``-bit artifacts (matching-cover bitmap,
degree-``> Δ/2`` bitmap, Lemma 5.4 cover message), after which each party
colors its matching edges with the special color or a peer-palette color.
Round 2 exchanges per-vertex availability of the peer palette's first seven
colors, letting each party greedily color its deferred subgraph
(Lemma 5.5).

**Lemma 5.1** — for constant ``Δ`` (``≤ 8`` here) a one-round protocol:
Alice colors greedily and ships per-vertex free-color bitmaps; Bob colors
greedily against them.

**Theorem 3** — ``(2Δ)``-edge coloring with *zero* communication: each party
sequentially peels edges joining two of its current-degree-``Δ`` vertices
(the peeled set is a matching, colored with one peer-palette color) and
Fournier-colors the rest with its own ``Δ``-color palette.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.bits import bitmap_cost
from ..comm.codecs import encode_cover_payload, encode_flag_bitmap
from ..comm.ledger import Transcript
from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream
from ..coloring.fournier import fournier_edge_coloring
from ..coloring.greedy import greedy_edge_coloring
from ..graphs.graph import Edge, Graph, canonical_edge
from ..graphs.matching import delta_perfect_matching
from ..graphs.partition import EdgePartition
from .cover_colors import build_cover_message, decode_cover_message

__all__ = [
    "EdgeColoringResult",
    "SMALL_DELTA_THRESHOLD",
    "edge_coloring_party",
    "edge_coloring_proto",
    "run_edge_coloring",
    "run_zero_comm_edge_coloring",
    "zero_comm_edge_coloring_party",
]

#: Algorithm 2 requires ``Δ ≥ 8`` (its Lemma 5.5 step needs seven peer
#: colors); below that the Lemma 5.1 bounded-degree protocol runs instead.
SMALL_DELTA_THRESHOLD = 8


@dataclass
class EdgeColoringResult:
    """Outcome of a two-party edge-coloring execution."""

    alice_colors: dict[Edge, int]
    bob_colors: dict[Edge, int]
    transcript: Transcript
    num_colors: int

    @property
    def colors(self) -> dict[Edge, int]:
        """The combined coloring over all edges."""
        merged = dict(self.alice_colors)
        merged.update(self.bob_colors)
        return merged

    @property
    def total_bits(self) -> int:
        return self.transcript.total_bits

    @property
    def rounds(self) -> int:
        return self.transcript.rounds


# ---------------------------------------------------------------------------
# palettes
# ---------------------------------------------------------------------------


def party_palette(role: str, delta: int) -> list[int]:
    """The ``Δ−1`` colors owned by ``role`` in the ``2Δ−1`` palette."""
    if role == "alice":
        return list(range(1, delta))
    if role == "bob":
        return list(range(delta, 2 * delta - 1))
    raise ValueError(f"unknown role {role!r}")


def special_color(delta: int) -> int:
    """The single shared color reserved for matching edges."""
    return 2 * delta - 1


# ---------------------------------------------------------------------------
# local surgery shared by Theorem 2 and Theorem 3
# ---------------------------------------------------------------------------


def defer_heavy_edges(graph: Graph, threshold: int) -> tuple[Graph, list[Edge]]:
    """Move edges joining two remaining-degree-``≥ threshold`` vertices.

    Returns ``(remaining, deferred)``.  Mirrors the sequential loop of
    Algorithm 2; each vertex contributes at most ``deg − (threshold − 1)``
    deferred edges, so with ``threshold = Δ−1`` the deferred subgraph has
    maximum degree 2 (Lemma 5.2).
    """
    remaining = graph.copy()
    deferred: list[Edge] = []
    heavy = {v for v in remaining.vertices() if remaining.degree(v) >= threshold}
    queue = [e for e in remaining.edge_list() if e[0] in heavy and e[1] in heavy]
    while queue:
        u, v = queue.pop()
        if u not in heavy or v not in heavy:
            continue
        if not remaining.has_edge(u, v):
            continue
        remaining.remove_edge(u, v)
        deferred.append(canonical_edge(u, v))
        for w in (u, v):
            if remaining.degree(w) < threshold:
                heavy.discard(w)
        # Degrees only drop, so no new heavy pairs ever appear; the initial
        # queue plus re-checks above cover every candidate edge.
    return remaining, deferred


def peel_heavy_matching(graph: Graph, delta: int) -> tuple[Graph, list[Edge]]:
    """Theorem 3's sequential peel of edges joining two degree-``Δ`` vertices.

    Each removal immediately drops both endpoints below ``Δ``, so the peeled
    edges form a matching and afterwards the degree-``Δ`` vertices are
    independent.
    """
    remaining = graph.copy()
    peeled: list[Edge] = []
    # Degrees only drop, so an edge can qualify only before any removal at
    # its endpoints; one pass in canonical order implements the sequential
    # peel (each removal demotes both endpoints below Δ immediately).
    for u, v in graph.edge_list():
        if remaining.degree(u) == delta and remaining.degree(v) == delta:
            remaining.remove_edge(u, v)
            peeled.append(canonical_edge(u, v))
    return remaining, peeled


def color_with_own_palette(graph: Graph, palette: list[int]) -> dict[Edge, int]:
    """Fournier/Vizing-color ``graph`` inside an arbitrary palette.

    The caller guarantees ``Δ(graph) ≤ |palette|`` and, on equality, that
    the max-degree vertices are independent (Proposition 3.5 applies).
    """
    if graph.m == 0:
        return {}
    base = fournier_edge_coloring(graph, num_colors=len(palette))
    return {edge: palette[c - 1] for edge, c in base.items()}


# ---------------------------------------------------------------------------
# Theorem 3: (2Δ)-edge coloring with zero communication
# ---------------------------------------------------------------------------


def zero_comm_edge_coloring_party(
    role: str,
    own_graph: Graph,
    delta: int,
) -> dict[Edge, int]:
    """One party's (purely local) side of Theorem 3.

    Palette split: Alice owns ``{1..Δ}``, Bob owns ``{Δ+1..2Δ}``.  Peeled
    matching edges take the first color of the *peer* palette — legal
    because their endpoints have full degree locally and hence no peer
    edges.
    """
    if delta == 0:
        return {}
    if role == "alice":
        own, peer = list(range(1, delta + 1)), list(range(delta + 1, 2 * delta + 1))
    elif role == "bob":
        own, peer = list(range(delta + 1, 2 * delta + 1)), list(range(1, delta + 1))
    else:
        raise ValueError(f"unknown role {role!r}")
    remaining, peeled = peel_heavy_matching(own_graph, delta)
    colors = color_with_own_palette(remaining, own)
    for edge in peeled:
        colors[edge] = peer[0]
    return colors


def run_zero_comm_edge_coloring(
    partition: EdgePartition,
    transport: str | Transport | None = None,
    seed: int | None = None,
    rand: Stream | None = None,
) -> EdgeColoringResult:
    """Theorem 3 on an edge-partitioned graph: zero bits, zero rounds.

    ``transport`` only picks the (empty) transcript's flavor — the
    protocol never communicates, so every transport is trivially
    identical here.  ``seed``/``rand`` are accepted for driver-signature
    uniformity (every ``run_*`` driver composes under one root
    :class:`~repro.rand.Stream`); the protocol is deterministic and
    draws nothing from them.
    """
    transcript = resolve_transport(transport).new_transcript()
    delta = partition.max_degree
    alice = zero_comm_edge_coloring_party("alice", partition.alice_graph, delta)
    bob = zero_comm_edge_coloring_party("bob", partition.bob_graph, delta)
    return EdgeColoringResult(alice, bob, transcript, max(2 * delta, 1))


# ---------------------------------------------------------------------------
# Lemma 5.1: bounded degree, one round
# ---------------------------------------------------------------------------


def _nested_bitmap_codec(payload) -> list[int]:
    """Strict codec for a tuple of per-vertex boolean masks."""
    return encode_flag_bitmap([flag for row in payload for flag in row])


def bounded_degree_proto(ch: Channel, role: str, own_graph: Graph, delta: int):
    """Lemma 5.1: greedy + free-color bitmaps for constant ``Δ``."""
    num_colors = max(2 * delta - 1, 1)
    if delta <= 1:
        # A matching (or empty graph): the one color works for everyone.
        return {edge: 1 for edge in own_graph.edges()}

    if role == "alice":
        colors = greedy_edge_coloring(own_graph, num_colors=num_colors)
        used: dict[int, set[int]] = {v: set() for v in own_graph.vertices()}
        for (u, v), c in colors.items():
            used[u].add(c)
            used[v].add(c)
        masks = tuple(
            tuple(c in used[v] for c in range(1, num_colors + 1))
            for v in own_graph.vertices()
        )
        yield from ch.send(
            bitmap_cost(own_graph.n * num_colors), masks, codec=_nested_bitmap_codec
        )
        return colors

    masks = yield from ch.recv()
    forbidden = {
        v: {c for c in range(1, num_colors + 1) if masks[v][c - 1]}
        for v in own_graph.vertices()
    }
    return greedy_edge_coloring(own_graph, num_colors=num_colors, forbidden=forbidden)


# ---------------------------------------------------------------------------
# Theorem 2: Algorithm 2 for Δ ≥ 8
# ---------------------------------------------------------------------------


def edge_coloring_proto(ch: Channel, role: str, own_graph: Graph, delta: int):
    """One party's side of the ``(2Δ−1)``-edge coloring protocol."""
    if delta < SMALL_DELTA_THRESHOLD:
        result = yield from bounded_degree_proto(ch, role, own_graph, delta)
        return result

    n = own_graph.n
    own = party_palette(role, delta)
    peer = party_palette("bob" if role == "alice" else "alice", delta)
    special = special_color(delta)

    # --- local surgery (no communication) -------------------------------
    remaining, deferred = defer_heavy_edges(own_graph, delta - 1)
    matching = delta_perfect_matching(remaining, degree=delta)
    heavy = {v for v in remaining.vertices() if remaining.degree(v) == delta}
    for u, v in matching:
        remaining.remove_edge(u, v)
    colors = color_with_own_palette(remaining, own)

    covered = [False] * n
    for u, v in matching:
        covered[u] = True
        covered[v] = True
    over_half = [2 * own_graph.degree(v) > delta for v in range(n)]
    low_vertices = [v for v in range(n) if not over_half[v]]
    available = {
        v: set(own) - _used_colors_at(colors, own_graph, v) for v in low_vertices
    }
    cover_msg = build_cover_message(low_vertices, available, own)

    # --- round 1: bitmaps + cover message --------------------------------
    max_own_color = max(own)

    def round1_codec(payload):
        covered_flags, over_half_flags, cover = payload
        return (
            encode_flag_bitmap(covered_flags)
            + encode_flag_bitmap(over_half_flags)
            + encode_cover_payload(cover.colors, cover.bitmaps, max_own_color)
        )

    peer_covered, peer_over_half, peer_cover = yield from ch.send(
        bitmap_cost(2 * n) + cover_msg.nbits,
        (tuple(covered), tuple(over_half), cover_msg),
        codec=round1_codec,
    )
    peer_low = [v for v in range(n) if not peer_over_half[v]]
    peer_color_for = decode_cover_message(peer_low, peer_cover)

    for u, v in matching:
        hub, other = (u, v) if u in heavy else (v, u)
        if not peer_covered[other] or peer_over_half[other]:
            colors[canonical_edge(u, v)] = special
        else:
            colors[canonical_edge(u, v)] = peer_color_for[other]

    # --- round 2: first-seven availability of the own palette ------------
    first_seven = own[:7]
    used_at = [_used_colors_at(colors, own_graph, v) for v in range(n)]
    own_masks = tuple(
        tuple(c not in used_at[v] for c in first_seven) for v in range(n)
    )
    peer_masks = yield from ch.send(
        bitmap_cost(7 * n), own_masks, codec=_nested_bitmap_codec
    )
    peer_first_seven = peer[:7]

    # --- Lemma 5.5: greedy-color the deferred subgraph -------------------
    peer_colors_used_by_me: dict[int, set[int]] = {}
    for (u, v), c in colors.items():
        if c in set(peer):
            peer_colors_used_by_me.setdefault(u, set()).add(c)
            peer_colors_used_by_me.setdefault(v, set()).add(c)
    for u, v in deferred:
        blocked: set[int] = set()
        for idx, c in enumerate(peer_first_seven):
            if not peer_masks[u][idx] or not peer_masks[v][idx]:
                blocked.add(c)
        blocked |= peer_colors_used_by_me.get(u, set())
        blocked |= peer_colors_used_by_me.get(v, set())
        choice = next((c for c in peer_first_seven if c not in blocked), None)
        if choice is None:
            raise AssertionError(
                f"Lemma 5.5 availability violated at deferred edge ({u}, {v})"
            )
        edge = canonical_edge(u, v)
        colors[edge] = choice
        peer_colors_used_by_me.setdefault(u, set()).add(choice)
        peer_colors_used_by_me.setdefault(v, set()).add(choice)

    return colors


def _used_colors_at(colors: dict[Edge, int], graph: Graph, v: int) -> set[int]:
    """The colors of the colored edges of ``graph`` incident to ``v``.

    One neighborhood scan answers every per-color availability query at
    ``v`` — the per-(vertex, color) probing this replaces rescanned the
    neighborhood ``Θ(Δ)`` times per vertex.
    """
    used = set()
    for u in graph.iter_neighbors(v):
        color = colors.get(canonical_edge(u, v))
        if color is not None:
            used.add(color)
    return used


def edge_coloring_party(role: str, own_graph: Graph, delta: int):
    """Legacy generator-API adapter for :func:`edge_coloring_proto`."""
    return as_party(edge_coloring_proto, role, own_graph, delta)


def run_edge_coloring(
    partition: EdgePartition,
    transport: str | Transport | None = None,
    seed: int | None = None,
    rand: Stream | None = None,
) -> EdgeColoringResult:
    """Theorem 2 on an edge-partitioned graph: ``O(n)`` bits, ``O(1)`` rounds.

    ``seed``/``rand`` are accepted for driver-signature uniformity (every
    ``run_*`` driver composes under one root :class:`~repro.rand.Stream`);
    Theorem 2 is deterministic and draws nothing from them.
    """
    delta = partition.max_degree
    num_colors = max(2 * delta - 1, 1)
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    if delta == 0:
        return EdgeColoringResult({}, {}, transcript, num_colors)
    alice, bob, _ = core.run(
        lambda ch: edge_coloring_proto(ch, "alice", partition.alice_graph, delta),
        lambda ch: edge_coloring_proto(ch, "bob", partition.bob_graph, delta),
        transcript,
    )
    return EdgeColoringResult(alice, bob, transcript, num_colors)
