"""CSR graph backend: adjacency as flat index arrays.

:class:`CSRGraph` stores the whole adjacency structure in two flat
``array('q')`` buffers — ``indptr`` (row offsets, length ``n + 1``) and
``indices`` (concatenated sorted neighbor lists, length ``2m``) — the
compressed-sparse-row layout every production graph system converges on.
Memory is O(n + m) words regardless of density, which is what makes the
million-vertex tier real: a sparse n = 10⁶ instance fits in tens of
megabytes where :class:`~repro.graphs.bitset.BitsetGraph`'s dense
per-vertex masks would need O(n²) bits (~125 GB).

When numpy is importable (and not disabled via ``REPRO_NO_NUMPY=1``),
bulk construction vectorizes the sort/dedup/offset pipeline; the
pure-Python fallback builds the same arrays with a counting sort.  Both
paths produce byte-identical buffers, and numpy scalars never escape —
storage is ``array('q)'``, so every query returns plain Python ints.

Mutations are staged: ``add_edge`` records into a pending overlay and
``remove_edge`` edits rows in place (O(deg) shift), so the protocols'
surgery loops never trigger a full O(n + m) rebuild per edge.  Reads
that iterate rows first fold the overlay back into the compact arrays.
Iteration orders match the backend contract exactly — neighbors
enumerate in increasing order and ``edges()`` in sorted canonical order
— so a protocol run on a ``CSRGraph`` consumes the shared random tape
identically to the set and bitset backends and produces bit-for-bit
identical transcripts.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Mapping

from ..rand import kernels as _kernels
from .graph import Edge, Graph

__all__ = ["CSRGraph", "GraphBuilder", "from_edge_stream"]

#: Below this many directed entries the numpy build costs more than it saves.
_NUMPY_BUILD_MIN = 1024


def _zeros(count: int) -> array:
    """A zero-filled ``array('q')`` of ``count`` entries."""
    return array("q", bytes(8 * count))


def _build_arrays(n: int, us: array, vs: array) -> tuple[array, array]:
    """CSR ``(indptr, indices)`` from parallel endpoint arrays.

    Rows come out sorted ascending and deduplicated; both directions of
    every pair are inserted, so ``us``/``vs`` carry each undirected edge
    once (in either order).  The numpy and pure paths are byte-identical.
    """
    np = _kernels._np
    if np is not None and len(us) >= _NUMPY_BUILD_MIN:
        head = np.frombuffer(us, dtype=np.int64)
        tail = np.frombuffer(vs, dtype=np.int64)
        src = np.concatenate([head, tail])
        dst = np.concatenate([tail, head])
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        keep = np.ones(src.size, dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src = src[keep]
        dst = dst[keep]
        counts = np.bincount(src, minlength=n)
        indptr_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_np[1:])
        indptr = array("q")
        indptr.frombytes(indptr_np.tobytes())
        indices = array("q")
        indices.frombytes(dst.tobytes())
        return indptr, indices

    # Pure path: counting sort into place, then per-row sort + dedup with
    # an in-place forward compaction (the write cursor never passes a
    # row's unread start, so no second buffer is needed).
    counts = _zeros(n)
    for u in us:
        counts[u] += 1
    for v in vs:
        counts[v] += 1
    indptr = _zeros(n + 1)
    total = 0
    for i in range(n):
        indptr[i] = total
        total += counts[i]
    indptr[n] = total
    cursor = array("q", indptr[:n])
    indices = _zeros(total)
    for u, v in zip(us, vs):
        indices[cursor[u]] = v
        cursor[u] += 1
        indices[cursor[v]] = u
        cursor[v] += 1
    write = 0
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        row = sorted(set(indices[start:end]))
        indptr[i] = write
        for x in row:
            indices[write] = x
            write += 1
    indptr[n] = write
    del indices[write:]
    return indptr, indices


class GraphBuilder:
    """Accumulates an edge stream, then builds a :class:`CSRGraph` at once.

    The streaming half of the CSR story: generators push edges one at a
    time into two flat endpoint arrays (16 bytes per edge, no per-edge
    set or tuple survives), and :meth:`to_graph` runs the single bulk
    sort/dedup pass.  Duplicate edges are tolerated (collapsed at build
    time, matching ``Graph.add_edge`` returning ``False``); self-loops
    and out-of-range endpoints raise immediately, as they would on any
    backend.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self._us = array("q")
        self._vs = array("q")

    def add(self, u: int, v: int) -> None:
        """Stage edge ``{u, v}`` (duplicates collapse at build time)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        self._us.append(u)
        self._vs.append(v)

    def extend(self, edges: Iterable[Edge]) -> None:
        """Stage every edge of a stream."""
        add = self.add
        for u, v in edges:
            add(u, v)

    def to_graph(self) -> "CSRGraph":
        """Build the graph; the builder may be reused afterwards."""
        graph = CSRGraph.__new__(CSRGraph)
        graph.n = self.n
        graph._indptr, graph._indices = _build_arrays(self.n, self._us, self._vs)
        graph._deg = array(
            "q", (graph._indptr[i + 1] - graph._indptr[i] for i in range(self.n))
        )
        graph._m = len(graph._indices) // 2
        graph._pending = {}
        graph._maxdeg = None
        return graph


def from_edge_stream(n: int, edges: Iterable[Edge]) -> "CSRGraph":
    """Build a :class:`CSRGraph` from an edge stream without materializing it."""
    builder = GraphBuilder(n)
    builder.extend(edges)
    return builder.to_graph()


class CSRGraph(Graph):
    """Undirected simple graph on ``range(n)`` with CSR adjacency."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        built = from_edge_stream(n, edges)
        self.__dict__.update(built.__dict__)

    # -- the mutation overlay ---------------------------------------------
    #
    # ``_indices[_indptr[v] : _indptr[v] + _deg[v]]`` is the live sorted
    # row of ``v`` (removals leave slack between ``_deg[v]`` and the next
    # offset); ``_pending`` holds symmetric staged additions.  Queries
    # that touch a single row answer through both without rebuilding;
    # row-iteration reads call ``_compact`` first.

    def _compact(self) -> None:
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        """Fold the pending overlay back into compact CSR arrays."""
        pend, self._pending = self._pending, {}
        n = self.n
        old_indptr, old_indices, old_deg = self._indptr, self._indices, self._deg
        total = sum(old_deg) + sum(len(extra) for extra in pend.values())
        new_indptr = _zeros(n + 1)
        new_indices = _zeros(total)
        new_deg = _zeros(n)
        write = 0
        for v in range(n):
            new_indptr[v] = write
            start = old_indptr[v]
            d = old_deg[v]
            extra = pend.get(v)
            if extra is None:
                new_indices[write : write + d] = old_indices[start : start + d]
                write += d
                new_deg[v] = d
            else:
                for x in sorted([*old_indices[start : start + d], *extra]):
                    new_indices[write] = x
                    write += 1
                new_deg[v] = d + len(extra)
        new_indptr[n] = write
        self._indptr, self._indices, self._deg = new_indptr, new_indices, new_deg

    def _row_contains(self, u: int, v: int) -> bool:
        start = self._indptr[u]
        end = start + self._deg[u]
        i = bisect_left(self._indices, v, start, end)
        return i < end and self._indices[i] == v

    def _row_remove(self, u: int, v: int) -> None:
        start = self._indptr[u]
        d = self._deg[u]
        end = start + d
        i = bisect_left(self._indices, v, start, end)
        self._indices[i : end - 1] = self._indices[i + 1 : end]
        self._deg[u] = d - 1

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        if self.has_edge(u, v):
            return False
        self._pending.setdefault(u, set()).add(v)
        self._pending.setdefault(v, set()).add(u)
        self._m += 1
        self._maxdeg = None
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raise KeyError if absent."""
        if not (0 <= u < self.n and 0 <= v < self.n) or not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        extra = self._pending.get(u)
        if extra is not None and v in extra:
            extra.discard(v)
            if not extra:
                del self._pending[u]
            other = self._pending[v]
            other.discard(u)
            if not other:
                del self._pending[v]
        else:
            self._row_remove(u, v)
            self._row_remove(v, u)
        self._m -= 1
        self._maxdeg = None

    def copy(self) -> "CSRGraph":
        """An independent deep copy (three flat array copies)."""
        self._compact()
        clone = CSRGraph.__new__(CSRGraph)
        clone.n = self.n
        clone._indptr = array("q", self._indptr)
        clone._indices = array("q", self._indices)
        clone._deg = array("q", self._deg)
        clone._m = self._m
        clone._pending = {}
        clone._maxdeg = self._maxdeg
        return clone

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge (binary search + overlay lookup)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        if self._row_contains(u, v):
            return True
        extra = self._pending.get(u)
        return extra is not None and v in extra

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set of ``v`` (a fresh set)."""
        return set(self.iter_neighbors(v))

    def neighbor_mask(self, v: int) -> int:
        """The adjacency of ``v`` as an int bitmask (bitset-compatible)."""
        self._compact()
        indices = self._indices
        start = self._indptr[v]
        buf = bytearray((self.n >> 3) + 1)
        for i in range(start, start + self._deg[v]):
            u = indices[i]
            buf[u >> 3] |= 1 << (u & 7)
        return int.from_bytes(buf, "little")

    def degree(self, v: int) -> int:
        """Degree of ``v`` (no compaction: row length + overlay size)."""
        extra = self._pending.get(v)
        return self._deg[v] + (len(extra) if extra else 0)

    def degrees(self) -> list[int]:
        """Degree sequence indexed by vertex."""
        if not self._pending:
            return list(self._deg)
        return [self.degree(v) for v in range(self.n)]

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph); cached until mutated."""
        if self._maxdeg is None:
            self._maxdeg = max(self.degrees(), default=0)
        return self._maxdeg

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in sorted canonical order (see the base contract)."""
        self._compact()
        return self._iter_edges()

    def _iter_edges(self) -> Iterator[Edge]:
        indptr, indices, deg = self._indptr, self._indices, self._deg
        for u in range(self.n):
            start = indptr[u]
            for i in range(start, start + deg[u]):
                w = indices[i]
                if w > u:
                    yield (u, w)

    def subgraph_edges(self, edges: Iterable[Edge]) -> "CSRGraph":
        """A CSR graph on the same vertex set containing only ``edges``."""
        return from_edge_stream(self.n, edges)

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """True if no two of ``vertices`` are adjacent (row scans)."""
        vset = set(vertices)
        return all(not self.has_neighbor_in(v, vset) for v in vset)

    # -- backend-agnostic accessors ---------------------------------------

    def iter_neighbors(self, v: int) -> Iterator[int]:
        """Iterate the neighbors of ``v`` in increasing order."""
        self._compact()
        start = self._indptr[v]
        return iter(self._indices[start : start + self._deg[v]])

    def neighbors_in(self, v: int, packed: frozenset) -> list[int]:
        """Neighbors of ``v`` inside a packed set, in increasing order."""
        self._compact()
        start = self._indptr[v]
        row = self._indices[start : start + self._deg[v]]
        return [u for u in row if u in packed]

    def has_neighbor_in(self, v: int, packed: frozenset) -> bool:
        """Whether any neighbor of ``v`` lies in the packed set.

        A short-circuiting row scan: O(deg) membership probes against the
        packed hash set, never materializing a neighbor list.
        """
        self._compact()
        indices = self._indices
        start = self._indptr[v]
        for i in range(start, start + self._deg[v]):
            if indices[i] in packed:
                return True
        return False

    def neighbor_colors(self, v: int, coloring: Mapping[int, int]) -> set[int]:
        """The colors that ``coloring`` assigns to neighbors of ``v``."""
        self._compact()
        start = self._indptr[v]
        row = self._indices[start : start + self._deg[v]]
        return {coloring[u] for u in row if u in coloring}

    def confirmation_bits(
        self, awake: Iterable[int], chosen: Mapping[int, int]
    ) -> tuple[bool, ...]:
        """Backend-native confirmation sweep (``core.probes`` dispatches here).

        Instead of packing each color class into a set and probing with
        ``has_neighbor_in``, scan each awake vertex's index row once and
        compare colors through one awake-only dict — same booleans, no
        per-class pack over n-vertex collections.
        """
        self._compact()
        indptr, indices, deg = self._indptr, self._indices, self._deg
        cmap = {v: chosen[v] for v in awake}
        get = cmap.get
        bits = []
        for v in awake:
            color = cmap[v]
            start = indptr[v]
            ok = True
            for i in range(start, start + deg[v]):
                if get(indices[i]) == color:
                    ok = False
                    break
            bits.append(ok)
        return tuple(bits)

    def induced_subgraph(self, vertices: Iterable[int]) -> "CSRGraph":
        """Same vertex range, keeping only edges inside ``vertices``.

        One filtered row copy per member vertex — already-sorted rows stay
        sorted, so no re-sort pass is needed.
        """
        self._compact()
        vset = set(vertices)
        indptr, indices, deg = self._indptr, self._indices, self._deg
        sub = CSRGraph.__new__(CSRGraph)
        sub.n = self.n
        new_indptr = _zeros(self.n + 1)
        new_indices = array("q")
        write = 0
        for v in range(self.n):
            new_indptr[v] = write
            if v in vset:
                start = indptr[v]
                for i in range(start, start + deg[v]):
                    u = indices[i]
                    if u in vset:
                        new_indices.append(u)
                        write += 1
        new_indptr[self.n] = write
        sub._indptr = new_indptr
        sub._indices = new_indices
        sub._deg = array(
            "q", (new_indptr[i + 1] - new_indptr[i] for i in range(self.n))
        )
        sub._m = write // 2
        sub._pending = {}
        sub._maxdeg = None
        return sub

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self._m}, max_degree={self.max_degree()})"
