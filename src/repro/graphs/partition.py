"""Edge partitions between Alice and Bob, with adversarial partitioners.

The model (Section 3.1): the vertex set, ``n`` and ``Δ`` are common
knowledge; the edge set is partitioned *adversarially* between the parties.
:class:`EdgePartition` captures one such split and provides each party's
local view (adjacency, degrees).  The partitioner zoo covers the regimes the
experiments ablate over — balanced random splits, fully lopsided splits, and
splits engineered to maximize cross-party coordination.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..rand import RandomSource, as_random
from .bitset import as_backend
from .graph import Edge, Graph, canonical_edge

__all__ = [
    "EdgePartition",
    "PARTITIONERS",
    "partition_all_alice",
    "partition_all_bob",
    "partition_alternating",
    "partition_by_hash",
    "partition_crossing",
    "partition_degree_split",
    "partition_random",
]


class EdgePartition:
    """A two-party split of a graph's edges.

    Exposes, for each party, exactly the information the model grants them:
    their own edge set (and derived adjacency/degrees) plus the public
    parameters ``n`` and ``Δ`` of the *whole* graph.
    """

    def __init__(self, graph: Graph, alice_edges: Iterable[Edge]) -> None:
        self.graph = graph
        alice = {canonical_edge(u, v) for u, v in alice_edges}
        all_edges = set(graph.edges())
        if not alice <= all_edges:
            extra = sorted(alice - all_edges)[:3]
            raise ValueError(f"alice edges not in graph, e.g. {extra}")
        self.alice_edges = frozenset(alice)
        self.bob_edges = frozenset(all_edges - alice)
        self.alice_graph = graph.subgraph_edges(self.alice_edges)
        self.bob_graph = graph.subgraph_edges(self.bob_edges)

    @property
    def n(self) -> int:
        """Number of vertices (public knowledge)."""
        return self.graph.n

    @property
    def max_degree(self) -> int:
        """Δ of the whole graph (public knowledge)."""
        return self.graph.max_degree()

    def side_graph(self, party: str) -> Graph:
        """The local graph of ``"alice"`` or ``"bob"``."""
        if party == "alice":
            return self.alice_graph
        if party == "bob":
            return self.bob_graph
        raise ValueError(f"unknown party {party!r}")

    def astype(self, backend: str) -> "EdgePartition":
        """This partition with its graphs converted to ``backend``.

        The edge split is carried over verbatim, so the converted partition
        describes the *same* protocol instance — only the adjacency
        representation changes.  Returns ``self`` when already there.
        """
        converted = as_backend(self.graph, backend)
        if converted is self.graph:
            return self
        return EdgePartition(converted, self.alice_edges)

    def owner(self, u: int, v: int) -> str:
        """Which party holds edge ``{u, v}``."""
        edge = canonical_edge(u, v)
        if edge in self.alice_edges:
            return "alice"
        if edge in self.bob_edges:
            return "bob"
        raise KeyError(f"edge {edge} not in graph")

    def __repr__(self) -> str:
        return (
            f"EdgePartition(n={self.n}, alice={len(self.alice_edges)}, "
            f"bob={len(self.bob_edges)})"
        )


def partition_random(graph: Graph, rng: RandomSource, p_alice: float = 0.5) -> EdgePartition:
    """Assign each edge to Alice independently with probability ``p_alice``."""
    rng = as_random(rng)
    alice = [e for e in graph.edges() if rng.random() < p_alice]
    return EdgePartition(graph, alice)


def partition_all_alice(graph: Graph, rng: RandomSource | None = None) -> EdgePartition:
    """Alice holds every edge (the FM25 lower-bound regime)."""
    return EdgePartition(graph, graph.edges())


def partition_all_bob(graph: Graph, rng: RandomSource | None = None) -> EdgePartition:
    """Bob holds every edge."""
    return EdgePartition(graph, ())


def partition_alternating(graph: Graph, rng: RandomSource | None = None) -> EdgePartition:
    """Edges alternate Alice/Bob in canonical order (deterministic 50/50)."""
    alice = [e for idx, e in enumerate(graph.edge_list()) if idx % 2 == 0]
    return EdgePartition(graph, alice)


def partition_by_hash(graph: Graph, rng: RandomSource | None = None) -> EdgePartition:
    """Deterministic pseudo-random split keyed on the edge identity."""
    alice = [(u, v) for u, v in graph.edges() if (u * 0x9E3779B1 ^ v * 0x85EBCA77) & 1]
    return EdgePartition(graph, alice)


def partition_degree_split(graph: Graph, rng: RandomSource | None = None) -> EdgePartition:
    """Each vertex's incident edges split as evenly as possible.

    Maximizes the number of vertices whose neighborhood straddles both
    parties — the regime in which Color-Sample genuinely needs interaction.
    """
    alice: list[Edge] = []
    alice_deg = [0] * graph.n
    bob_deg = [0] * graph.n
    for u, v in graph.edge_list():
        if alice_deg[u] + alice_deg[v] <= bob_deg[u] + bob_deg[v]:
            alice.append((u, v))
            alice_deg[u] += 1
            alice_deg[v] += 1
        else:
            bob_deg[u] += 1
            bob_deg[v] += 1
    return EdgePartition(graph, alice)


def partition_crossing(graph: Graph, rng: RandomSource) -> EdgePartition:
    """A random vertex bisection: crossing edges to Alice, internal to Bob.

    Produces highly correlated, structured views (Alice sees a bipartite-ish
    graph), stressing protocols whose analysis assumes nothing about the
    split.
    """
    rng = as_random(rng)
    side = [rng.random() < 0.5 for _ in range(graph.n)]
    alice = [(u, v) for u, v in graph.edges() if side[u] != side[v]]
    return EdgePartition(graph, alice)


PARTITIONERS: dict[str, Callable[[Graph, RandomSource], EdgePartition]] = {
    "random": partition_random,
    "all_alice": partition_all_alice,
    "all_bob": partition_all_bob,
    "alternating": partition_alternating,
    "hash": partition_by_hash,
    "degree_split": partition_degree_split,
    "crossing": partition_crossing,
}
