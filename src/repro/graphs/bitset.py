"""Bitset graph backend: adjacency as Python-int bitmasks.

:class:`BitsetGraph` stores the neighborhood of each vertex as one
arbitrary-precision integer whose bit ``u`` flags the edge ``{v, u}``.
Python ints give word-parallel set algebra for free — ``&`` intersects a
neighborhood with any packed vertex set in O(n/64) machine words,
``int.bit_count()`` is a hardware popcount, and copying a graph is a flat
list-of-ints copy — which is exactly the operation mix of the protocol hot
paths (confirmation scans over the awake set, leftover-subgraph
extraction, independence checks, and the copy-heavy deferral surgery of
Algorithm 2).

The class implements the full :class:`~repro.graphs.graph.Graph` contract,
including iteration orders: neighbors enumerate in increasing vertex order
(the order of set bits), and ``edges()`` enumerates in sorted canonical
order, so a protocol run on a ``BitsetGraph`` consumes the shared random
tape identically to the same run on a set-backed ``Graph`` and produces
bit-for-bit identical transcripts.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from .csr import CSRGraph
from .graph import Edge, Graph

__all__ = ["BitsetGraph", "GRAPH_BACKENDS", "as_backend", "iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate the set-bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BitsetGraph(Graph):
    """Undirected simple graph on ``range(n)`` with bitmask adjacency."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self._bits: list[int] = [0] * n
        self._m = 0
        self._degs: list[int] | None = None
        self._maxdeg: int | None = None
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        if (self._bits[u] >> v) & 1:
            return False
        self._bits[u] |= 1 << v
        self._bits[v] |= 1 << u
        self._m += 1
        self._degs = None
        self._maxdeg = None
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raise KeyError if absent."""
        if not (0 <= u < self.n and (self._bits[u] >> v) & 1):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._bits[u] &= ~(1 << v)
        self._bits[v] &= ~(1 << u)
        self._m -= 1
        self._degs = None
        self._maxdeg = None

    def copy(self) -> "BitsetGraph":
        """An independent deep copy (a flat copy of the mask list)."""
        clone = BitsetGraph(self.n)
        clone._bits = list(self._bits)
        clone._m = self._m
        clone._degs = list(self._degs) if self._degs is not None else None
        clone._maxdeg = self._maxdeg
        return clone

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge."""
        return 0 <= u < self.n and 0 <= v < self.n and bool((self._bits[u] >> v) & 1)

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set of ``v`` (a fresh set; cheap for small degrees)."""
        return set(iter_bits(self._bits[v]))

    def neighbor_mask(self, v: int) -> int:
        """The raw adjacency bitmask of ``v`` (bit ``u`` set iff ``{v,u}``)."""
        return self._bits[v]

    def degree(self, v: int) -> int:
        """Degree of ``v`` (a popcount)."""
        return self._bits[v].bit_count()

    def degrees(self) -> list[int]:
        """Degree sequence indexed by vertex (popcounts cached until mutated)."""
        if self._degs is None:
            self._degs = [bits.bit_count() for bits in self._bits]
        return list(self._degs)

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph); cached until mutated."""
        if self._maxdeg is None:
            if self._degs is None:
                self._degs = [bits.bit_count() for bits in self._bits]
            self._maxdeg = max(self._degs, default=0)
        return self._maxdeg

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in sorted canonical order (see the base contract)."""
        for u in range(self.n):
            higher = self._bits[u] >> (u + 1)
            for offset in iter_bits(higher):
                yield (u, u + 1 + offset)

    def subgraph_edges(self, edges: Iterable[Edge]) -> "BitsetGraph":
        """A bitset graph on the same vertex set containing only ``edges``."""
        return BitsetGraph(self.n, edges)

    def union(self, other: Graph) -> "BitsetGraph":
        """Edge union of two graphs on the same vertex set."""
        if other.n != self.n:
            raise ValueError(f"vertex-set mismatch: {self.n} != {other.n}")
        merged = self.copy()
        for u, v in other.edges():
            merged.add_edge(u, v)
        return merged

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """True if no two of ``vertices`` are adjacent (mask intersection)."""
        members = list(vertices)
        mask = self.pack_vertices(members)
        return all(not (self._bits[v] & mask) for v in members)

    # -- backend-agnostic accessors ---------------------------------------

    def iter_neighbors(self, v: int) -> Iterator[int]:
        """Iterate the neighbors of ``v`` in increasing order."""
        return iter_bits(self._bits[v])

    def pack_vertices(self, vertices: Iterable[int]) -> int:
        """Pack a vertex collection into one int mask.

        Builds through a bytearray: repeated big-int ``|=`` would copy the
        whole mask per vertex, this stays O(n) byte writes + one decode.
        """
        buf = bytearray((self.n >> 3) + 1)
        for v in vertices:
            buf[v >> 3] |= 1 << (v & 7)
        return int.from_bytes(buf, "little")

    def neighbors_in(self, v: int, packed: int) -> list[int]:
        """Neighbors of ``v`` inside a packed mask, in increasing order."""
        mask = self._bits[v] & packed
        out = []
        while mask:  # inlined iter_bits: this is the hottest accessor
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def has_neighbor_in(self, v: int, packed: int) -> bool:
        """Whether any neighbor of ``v`` lies in the packed mask.

        One word-parallel AND — no bit extraction — so the confirmation
        sweeps cost O(n/64) words per vertex instead of a neighbor walk.
        """
        return bool(self._bits[v] & packed)

    def neighbor_colors(self, v: int, coloring: Mapping[int, int]) -> set[int]:
        """The colors that ``coloring`` assigns to neighbors of ``v``."""
        mask = self._bits[v]
        used = set()
        while mask:
            low = mask & -mask
            u = low.bit_length() - 1
            mask ^= low
            if u in coloring:
                used.add(coloring[u])
        return used

    def induced_subgraph(self, vertices: Iterable[int]) -> "BitsetGraph":
        """Same vertex range, keeping only edges inside ``vertices``.

        One mask AND per member vertex — the whole neighborhood filter is
        word-parallel instead of per-edge.
        """
        mask = self.pack_vertices(vertices)
        sub = BitsetGraph(self.n)
        total = 0
        for v in iter_bits(mask):
            inside = self._bits[v] & mask
            if inside:
                sub._bits[v] = inside
                total += inside.bit_count()
        sub._m = total // 2
        return sub

    def __repr__(self) -> str:
        return f"BitsetGraph(n={self.n}, m={self._m}, max_degree={self.max_degree()})"


#: Registered graph backends, keyed by the names the engine and CLI use.
GRAPH_BACKENDS: dict[str, type[Graph]] = {
    "set": Graph,
    "bitset": BitsetGraph,
    "csr": CSRGraph,
}


def as_backend(graph: Graph, backend: str) -> Graph:
    """Convert ``graph`` to the named backend (no-op if already there).

    Conversion preserves the vertex range and edge set exactly, so a
    workload generated once with the default backend can be replayed on any
    other backend with identical protocol behavior.
    """
    try:
        cls = GRAPH_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown graph backend {backend!r}; choose from {sorted(GRAPH_BACKENDS)}"
        ) from None
    if type(graph) is cls:
        return graph
    return cls(graph.n, graph.edges())
