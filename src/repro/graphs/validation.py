"""Validators for vertex, edge, and list colorings.

Every protocol test ends by calling one of these; they are deliberately
independent of the algorithms under test (straight re-checks of the
definitions) so that a bug in an algorithm cannot hide in its validator.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .graph import Edge, Graph, canonical_edge

__all__ = [
    "assert_proper_edge_coloring",
    "assert_proper_vertex_coloring",
    "is_proper_edge_coloring",
    "is_proper_list_coloring",
    "is_proper_vertex_coloring",
    "vertex_coloring_conflicts",
]


def is_proper_vertex_coloring(
    graph: Graph,
    colors: Mapping[int, int] | Sequence[int],
    num_colors: int | None = None,
) -> bool:
    """True if every vertex is colored and no edge is monochromatic.

    If ``num_colors`` is given, colors must additionally lie in
    ``range(1, num_colors + 1)`` (the paper's palette ``[Δ+1]``).
    """
    for v in graph.vertices():
        color = _lookup(colors, v)
        if color is None:
            return False
        if num_colors is not None and not 1 <= color <= num_colors:
            return False
    return not vertex_coloring_conflicts(graph, colors)


def vertex_coloring_conflicts(
    graph: Graph,
    colors: Mapping[int, int] | Sequence[int],
) -> list[Edge]:
    """All monochromatic edges under a (possibly partial) coloring."""
    conflicts = []
    for u, v in graph.edges():
        cu, cv = _lookup(colors, u), _lookup(colors, v)
        if cu is not None and cu == cv:
            conflicts.append((u, v))
    return conflicts


def assert_proper_vertex_coloring(
    graph: Graph,
    colors: Mapping[int, int] | Sequence[int],
    num_colors: int | None = None,
) -> None:
    """Raise ``AssertionError`` with a diagnostic if the coloring is improper."""
    for v in graph.vertices():
        color = _lookup(colors, v)
        if color is None:
            raise AssertionError(f"vertex {v} is uncolored")
        if num_colors is not None and not 1 <= color <= num_colors:
            raise AssertionError(
                f"vertex {v} has color {color} outside palette [1..{num_colors}]"
            )
    conflicts = vertex_coloring_conflicts(graph, colors)
    if conflicts:
        raise AssertionError(f"monochromatic edges: {conflicts[:5]}")


def is_proper_edge_coloring(
    graph: Graph,
    colors: Mapping[Edge, int],
    num_colors: int | None = None,
) -> bool:
    """True if every edge is colored and incident edges get distinct colors."""
    try:
        assert_proper_edge_coloring(graph, colors, num_colors)
    except AssertionError:
        return False
    return True


def assert_proper_edge_coloring(
    graph: Graph,
    colors: Mapping[Edge, int],
    num_colors: int | None = None,
) -> None:
    """Raise ``AssertionError`` with a diagnostic if the edge coloring is improper."""
    normalized = {canonical_edge(u, v): c for (u, v), c in colors.items()}
    for edge in graph.edges():
        if edge not in normalized:
            raise AssertionError(f"edge {edge} is uncolored")
        color = normalized[edge]
        if num_colors is not None and not 1 <= color <= num_colors:
            raise AssertionError(
                f"edge {edge} has color {color} outside palette [1..{num_colors}]"
            )
    for v in graph.vertices():
        seen: dict[int, Edge] = {}
        for u in graph.neighbors(v):
            edge = canonical_edge(u, v)
            color = normalized[edge]
            if color in seen:
                raise AssertionError(
                    f"edges {seen[color]} and {edge} share color {color} at vertex {v}"
                )
            seen[color] = edge


def is_proper_list_coloring(
    graph: Graph,
    colors: Mapping[int, int],
    lists: Mapping[int, set[int]],
) -> bool:
    """True if the coloring is proper and every vertex uses its own list."""
    for v in graph.vertices():
        color = colors.get(v)
        if color is None or color not in lists.get(v, set()):
            return False
    return not vertex_coloring_conflicts(graph, colors)


def _lookup(colors: Mapping[int, int] | Sequence[int], v: int):
    """Color of ``v`` under either a mapping or a sequence, None if absent."""
    if isinstance(colors, Mapping):
        return colors.get(v)
    if 0 <= v < len(colors):
        return colors[v]
    return None
