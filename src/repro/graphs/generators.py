"""Graph generators for the protocols' workloads and hard instances.

Covers the families the experiments sweep over (random graphs, regular
graphs, bounded-degree structures) plus the paper's lower-bound
constructions: unions of `C4` bit gadgets (Section 2.3 / FM25) and the
star-pair instances underlying the ZEC game (Section 6.2).

Randomized generators accept either a plain :class:`random.Random` or a
:class:`repro.rand.Stream`.  The random-graph families are built on
*edge streams* (``*_edge_stream`` functions) that yield edges one at a
time without materializing the pair universe, so large instances can be
fed straight into :func:`repro.graphs.csr.from_edge_stream`.  A
``random.Random`` source reproduces the historical draw sequence exactly
(one coin per pair / one shuffle); a ``Stream`` source takes the
geometric-skip path through :meth:`repro.rand.Stream.sample_indices`, so
sparse instances cost O(p·m) draws instead of O(n²).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections.abc import Iterator, Sequence
from itertools import accumulate
from math import isqrt

from ..rand import RandomSource, Stream, as_random
from .graph import Edge, Graph, canonical_edge

__all__ = [
    "barbell_of_stars",
    "c4_gadget_union",
    "caterpillar_graph",
    "complete_bipartite",
    "complete_graph",
    "configuration_model_edge_stream",
    "configuration_model_graph",
    "conflict_union_graph",
    "cycle_graph",
    "disjoint_union",
    "gnp_edge_stream",
    "gnp_random_graph",
    "gnp_with_max_degree",
    "gnp_with_max_degree_edge_stream",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "power_law_degree_sequence",
    "random_bipartite_regular",
    "random_regular_graph",
    "star_graph",
    "zec_instance_graph",
]


def _unrank_pair(n: int, k: int) -> Edge:
    """The ``k``-th pair of the u-major upper-triangle order on ``C(n,2)``.

    Inverts the enumeration ``(0,1), (0,2), …, (n-2,n-1)`` in O(1) by
    counting pairs from the *end* (row ``u`` ends ``T(n-1-u)`` pairs
    before the total, a triangular number, so ``isqrt`` recovers the
    row).  This is what lets one flat ``sample_indices`` call drive the
    whole G(n, p) sweep without enumerating pairs.
    """
    r = n * (n - 1) // 2 - 1 - k
    j = (isqrt(8 * r + 1) - 1) // 2
    u = n - 2 - j
    s = r - j * (j + 1) // 2
    return u, n - 1 - s


def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - (n-1)``."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n ≥ 3`` vertices."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(n: int) -> Graph:
    """The star with center 0 and ``n - 1`` leaves."""
    return Graph(n, ((0, i) for i in range(1, n)))


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, ((u, v) for u in range(n) for v in range(u + 1, n)))


def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}`` with left part ``0..a-1`` and right part ``a..a+b-1``."""
    return Graph(a + b, ((u, a + v) for u in range(a) for v in range(b)))


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid (max degree 4)."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges)


def gnp_edge_stream(n: int, p: float, rng: RandomSource) -> Iterator[Edge]:
    """Stream the edges of ``G(n, p)`` in sorted canonical order.

    A ``Stream`` source samples the pair set with one geometric-skip
    sweep over the ``C(n,2)`` linear index (O(p·m) expected draws,
    kernel-batched); a ``random.Random`` source draws one coin per pair
    in the same u-major order, reproducing the historical tape exactly.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if isinstance(rng, Stream):
        return _gnp_skip_sweep(n, p, rng)
    return _gnp_coin_sweep(n, p, as_random(rng))


def _gnp_skip_sweep(n: int, p: float, stream: Stream) -> Iterator[Edge]:
    total = n * (n - 1) // 2
    return (_unrank_pair(n, k) for k in stream.sample_indices(total, p))


def _gnp_coin_sweep(n: int, p: float, rng: random.Random) -> Iterator[Edge]:
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                yield (u, v)


def gnp_random_graph(n: int, p: float, rng: RandomSource) -> Graph:
    """Erdős–Rényi ``G(n, p)``."""
    return Graph(n, gnp_edge_stream(n, p, rng))


def gnp_with_max_degree_edge_stream(
    n: int, p: float, max_degree: int, rng: RandomSource
) -> Iterator[Edge]:
    """Stream ``G(n, p)`` edges with a degree cap applied on the fly.

    The ``random.Random`` path keeps the historical semantics and tape:
    shuffle the full pair list, then one coin per pair with the cap
    checked after each successful coin.  The ``Stream`` path never
    materializes the pair universe — it geometric-skips the accepted
    pairs and applies the cap in canonical order (a different but
    equally valid member of the capped-G(n,p) family).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if isinstance(rng, Stream):
        return _gnp_capped_skip_sweep(n, p, max_degree, rng)
    return _gnp_capped_coin_sweep(n, p, max_degree, as_random(rng))


def _gnp_capped_skip_sweep(
    n: int, p: float, max_degree: int, stream: Stream
) -> Iterator[Edge]:
    total = n * (n - 1) // 2
    deg = [0] * n
    for k in stream.sample_indices(total, p):
        u, v = _unrank_pair(n, k)
        if deg[u] < max_degree and deg[v] < max_degree:
            deg[u] += 1
            deg[v] += 1
            yield (u, v)


def _gnp_capped_coin_sweep(
    n: int, p: float, max_degree: int, rng: random.Random
) -> Iterator[Edge]:
    order = [(u, v) for u in range(n) for v in range(u + 1, n)]
    rng.shuffle(order)
    deg = [0] * n
    for u, v in order:
        if rng.random() < p and deg[u] < max_degree and deg[v] < max_degree:
            deg[u] += 1
            deg[v] += 1
            yield (u, v)


def gnp_with_max_degree(n: int, p: float, max_degree: int, rng: RandomSource) -> Graph:
    """``G(n, p)`` with edges violating a degree cap rejected on the fly.

    Useful for sweeping ``n`` at a pinned ``Δ`` so round-complexity series
    isolate the ``log log n`` factor of Theorem 1.
    """
    return Graph(n, gnp_with_max_degree_edge_stream(n, p, max_degree, rng))


def random_regular_graph(n: int, d: int, rng: RandomSource, max_tries: int = 200) -> Graph:
    """A uniform-ish random ``d``-regular simple graph.

    Pairing model with stub re-queuing (the standard practical variant):
    stubs that would create loops or multi-edges are reshuffled instead of
    restarting the whole pairing, with a suitability check to detect dead
    ends.  Effective even for dense degrees.
    """
    if n * d % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d >= n:
        raise ValueError(f"degree {d} too large for {n} vertices")
    if d == 0:
        return Graph(n)
    rng = as_random(rng)

    def suitable(edges: set[Edge], pending: dict[int, int]) -> bool:
        """Can every pending stub still be matched without a collision?"""
        nodes = [v for v, count in pending.items() if count]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if canonical_edge(u, v) not in edges:
                    return True
        return not nodes

    def attempt() -> set[Edge] | None:
        edges: set[Edge] = set()
        stubs = [v for v in range(n) for _ in range(d)]
        while stubs:
            pending: dict[int, int] = {}
            rng.shuffle(stubs)
            paired = iter(stubs)
            for u, v in zip(paired, paired):
                if u != v and canonical_edge(u, v) not in edges:
                    edges.add(canonical_edge(u, v))
                else:
                    pending[u] = pending.get(u, 0) + 1
                    pending[v] = pending.get(v, 0) + 1
            if not suitable(edges, pending):
                return None
            stubs = [v for v, count in pending.items() for _ in range(count)]
        return edges

    for _ in range(max_tries):
        edges = attempt()
        if edges is not None:
            return Graph(n, edges)
    raise RuntimeError(f"failed to sample a simple {d}-regular graph on {n} vertices")


def random_bipartite_regular(half: int, d: int, rng: RandomSource) -> Graph:
    """A bipartite ``d``-regular graph on ``2·half`` vertices.

    Built as a union of ``d`` shifted copies of one random permutation
    matching (a randomized circulant): distinct shifts guarantee the
    matchings are edge-disjoint, so the construction never needs retries.
    Bipartite regular graphs are class one, making them good stress inputs
    for the edge-coloring protocols.
    """
    if d > half:
        raise ValueError(f"degree {d} too large for part size {half}")
    rng = as_random(rng)
    perm = list(range(half))
    rng.shuffle(perm)
    shifts = rng.sample(range(half), d)
    edges: list[Edge] = [
        (u, half + (perm[u] + shift) % half) for shift in shifts for u in range(half)
    ]
    return Graph(2 * half, edges)


def conflict_union_graph(
    half: int, d_base: int, d_overlay: int, rng: RandomSource
) -> Graph:
    """The link-scheduling conflict fabric: two superposed regular layers.

    A bipartite ``d_base``-regular base fabric unioned with an
    independently drawn ``d_overlay``-regular overlay on the same parts —
    the near-regular conflict graph of ``examples/link_scheduling.py``,
    promoted to a generator so the scenario grid can sweep it.  Degrees
    land in ``[max(d_base, d_overlay), d_base + d_overlay]`` (layers may
    share edges), which is exactly the near-regular regime where the
    paper's 2Δ−1 palette is tight.
    """
    rng = as_random(rng)
    base = random_bipartite_regular(half, d_base, rng)
    overlay = random_bipartite_regular(half, d_overlay, rng)
    return base.union(overlay)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-cube: ``2^d`` vertices, regular of degree ``d``.

    A structured, vertex-transitive family: every vertex is max-degree, so
    Fournier's independence hypothesis fails everywhere and the edge
    protocols must lean on their deferral machinery.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be non-negative, got {dimension}")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << bit)) for v in range(n) for bit in range(dimension) if v < v ^ (1 << bit)
    ]
    return Graph(n, edges)


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A path of ``spine`` vertices, each carrying ``legs_per_vertex`` leaves.

    Trees are class one with an easy structure; caterpillars additionally
    exercise the high/low degree split of Algorithm 2 (spine vertices are
    heavy, leaves are trivially light).
    """
    if spine < 1:
        raise ValueError(f"spine must have at least one vertex, got {spine}")
    n = spine * (1 + legs_per_vertex)
    edges: list[Edge] = [(i, i + 1) for i in range(spine - 1)]
    next_leaf = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((i, next_leaf))
            next_leaf += 1
    return Graph(n, edges)


def power_law_degree_sequence(
    n: int,
    exponent: float,
    max_degree: int,
    rng: RandomSource,
) -> list[int]:
    """An even-sum degree sequence with ``P(d) ∝ d^{-exponent}``.

    Heavy-tailed degrees are the regime where Theorem 1's Case 1/Case 2
    analysis (low vs high initial degree, Section 2.1) genuinely diverges.
    """
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    if max_degree < 1 or max_degree >= n:
        raise ValueError(f"max_degree must be in [1, n), got {max_degree}")
    weights = [d ** (-exponent) for d in range(1, max_degree + 1)]
    if isinstance(rng, Stream):
        # Inverse-CDF draws on the stream directly (same scheme as
        # random.choices: bisect over cumulative weights, index clamped).
        cum = list(accumulate(weights))
        total = cum[-1]
        hi = max_degree - 1
        degrees = [
            1 + min(bisect_right(cum, rng.random() * total), hi)
            for _ in range(n)
        ]
    else:
        rng = as_random(rng)
        degrees = [
            rng.choices(range(1, max_degree + 1), weights=weights)[0]
            for _ in range(n)
        ]
    if sum(degrees) % 2:
        degrees[degrees.index(min(degrees))] += 1
    return degrees


def configuration_model_edge_stream(
    degrees: Sequence[int], rng: RandomSource
) -> Iterator[Edge]:
    """Stream the pairing-model edges for a target degree sequence.

    One shuffle of the stub list, then consecutive stubs pair up;
    self-pairs are dropped and duplicate pairs are emitted as-is (every
    graph builder collapses them, matching the historical has_edge
    rejection).  A ``Stream`` shuffles natively; a ``random.Random``
    reproduces the historical tape.
    """
    n = len(degrees)
    if any(d < 0 or d >= n for d in degrees):
        raise ValueError("degrees must lie in [0, n)")
    return _configuration_pairing(degrees, rng)


def _configuration_pairing(
    degrees: Sequence[int], rng: RandomSource
) -> Iterator[Edge]:
    stubs = [v for v, d in enumerate(degrees) for _ in range(d)]
    if isinstance(rng, Stream):
        stubs = rng.shuffled(stubs)
    else:
        as_random(rng).shuffle(stubs)
    paired = iter(stubs)
    for u, v in zip(paired, paired):
        if u != v:
            yield (u, v)


def configuration_model_graph(degrees: list[int], rng: RandomSource) -> Graph:
    """A simple graph approximating a target degree sequence.

    Pairing-model with rejection of loops/multi-edges (rejected stubs are
    dropped, so realized degrees are ≤ targets — adequate for workload
    generation; exact realization is not needed by any experiment).
    """
    return Graph(len(degrees), configuration_model_edge_stream(degrees, rng))


def disjoint_union(graphs: list[Graph]) -> Graph:
    """The disjoint union, relabelling each component into a fresh block."""
    total = sum(g.n for g in graphs)
    union = Graph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            union.add_edge(offset + u, offset + v)
        offset += g.n
    return union


def barbell_of_stars(k: int, leaves: int) -> Graph:
    """``k`` disjoint stars whose centers are joined in a path.

    A structured low-degree family exercising the deferral logic of
    Algorithm 2 (adjacent high-degree centers).
    """
    n = k * (leaves + 1)
    edges: list[Edge] = []
    for i in range(k):
        center = i * (leaves + 1)
        for j in range(1, leaves + 1):
            edges.append((center, center + j))
        if i + 1 < k:
            edges.append((center, (i + 1) * (leaves + 1)))
    return Graph(n, edges)


def c4_gadget_union(bits: Sequence[int]) -> Graph:
    """The FM25 lower-bound gadget graph encoding a bit string.

    For bit ``x_i`` a gadget on vertices ``(a_i, b_i, c_i, d_i)`` always has
    edges ``{a,b}`` and ``{c,d}``; if ``x_i = 0`` it adds ``{a,c},{b,d}``,
    if ``x_i = 1`` it adds ``{a,d},{b,c}``.  Each gadget is a ``C4``
    (max degree 2) and any proper 3-vertex-coloring identifies which of the
    two cycles is present (see :mod:`repro.lowerbound.learning_gadget`).
    """
    edges: list[Edge] = []
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r} at index {i}")
        a, b, c, d = 4 * i, 4 * i + 1, 4 * i + 2, 4 * i + 3
        edges.append((a, b))
        edges.append((c, d))
        if bit == 0:
            edges.append((a, c))
            edges.append((b, d))
        else:
            edges.append((a, d))
            edges.append((b, c))
    return Graph(4 * len(bits), edges)


def zec_instance_graph(
    alice_spokes: tuple[int, int],
    bob_spokes: tuple[int, int],
) -> Graph:
    """The 9-vertex ZEC game graph (Section 6.2).

    Vertices ``0 = v_A``, ``1 = v_B``, ``2..8 = v_1..v_7``.  Alice holds the
    two edges ``{v_A, v_i}`` for her spoke indices; Bob holds ``{v_B, v_j}``
    for his.  Spoke indices are 1-based as in the paper (``1..7``).
    """
    for spokes in (alice_spokes, bob_spokes):
        i, j = spokes
        if not (1 <= i <= 7 and 1 <= j <= 7 and i != j):
            raise ValueError(f"spokes must be two distinct indices in 1..7, got {spokes}")
    edges = [(0, 1 + i) for i in alice_spokes] + [(1, 1 + j) for j in bob_spokes]
    return Graph(9, edges)
