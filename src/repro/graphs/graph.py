"""A minimal simple-graph type tuned for the coloring protocols.

Vertices are integers ``0..n-1``; edges are unordered pairs stored in
canonical ``(min, max)`` order.  The class favors the operations the
protocols need constantly: neighbor sets, degrees, edge iteration, induced
subgraphs, and cheap copies for the deferral/matching surgery of
Algorithm 2.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["Edge", "Graph", "canonical_edge"]

Edge = tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class Graph:
    """Undirected simple graph on the vertex set ``range(n)``."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._m = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raise KeyError if absent."""
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    def copy(self) -> "Graph":
        """An independent deep copy."""
        clone = Graph(self.n)
        clone._adj = [set(neigh) for neigh in self._adj]
        clone._m = self._m
        return clone

    # -- queries ----------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge."""
        return 0 <= u < self.n and v in self._adj[u]

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set of ``v`` (a live view; do not mutate)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adj[v])

    def degrees(self) -> list[int]:
        """Degree sequence indexed by vertex."""
        return [len(neigh) for neigh in self._adj]

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(len(neigh) for neigh in self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical order."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> list[Edge]:
        """All edges as a sorted list."""
        return sorted(self.edges())

    def vertices(self) -> range:
        """The vertex set."""
        return range(self.n)

    def subgraph_edges(self, edges: Iterable[Edge]) -> "Graph":
        """A graph on the same vertex set containing only ``edges``."""
        return Graph(self.n, (canonical_edge(u, v) for u, v in edges))

    def union(self, other: "Graph") -> "Graph":
        """Edge union of two graphs on the same vertex set."""
        if other.n != self.n:
            raise ValueError(f"vertex-set mismatch: {self.n} != {other.n}")
        merged = self.copy()
        for u, v in other.edges():
            merged.add_edge(u, v)
        return merged

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """True if no two of ``vertices`` are adjacent."""
        vset = set(vertices)
        return all(not (self._adj[v] & vset) for v in vset)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self._m}, max_degree={self.max_degree()})"
