"""A minimal simple-graph type tuned for the coloring protocols.

Vertices are integers ``0..n-1``; edges are unordered pairs stored in
canonical ``(min, max)`` order.  The class favors the operations the
protocols need constantly: neighbor sets, degrees, edge iteration, induced
subgraphs, and cheap copies for the deferral/matching surgery of
Algorithm 2.

``Graph`` doubles as the *backend contract*: every method here (including
the accessor block at the bottom) is part of the API the protocols program
against, and :class:`repro.graphs.bitset.BitsetGraph` re-implements the
whole surface over packed integer bitmasks.  Hot paths must go through the
accessors — ``iter_neighbors``, ``pack_vertices``, ``neighbors_in``,
``neighbor_colors``, ``induced_subgraph`` — rather than materializing
``neighbors()`` sets, so each backend can use its native representation.
Iteration orders are deterministic (increasing vertex order) so that the
two backends drive the shared randomness identically and protocol outputs
match bit-for-bit across backends.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

__all__ = ["Edge", "Graph", "canonical_edge"]

Edge = tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class Graph:
    """Undirected simple graph on the vertex set ``range(n)``."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._m = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raise KeyError if absent."""
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    def copy(self) -> "Graph":
        """An independent deep copy."""
        clone = Graph(self.n)
        clone._adj = [set(neigh) for neigh in self._adj]
        clone._m = self._m
        return clone

    # -- queries ----------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge."""
        return 0 <= u < self.n and v in self._adj[u]

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set of ``v`` (a live view; do not mutate)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adj[v])

    def degrees(self) -> list[int]:
        """Degree sequence indexed by vertex."""
        return [len(neigh) for neigh in self._adj]

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(len(neigh) for neigh in self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in sorted canonical order.

        The order is part of the backend contract: partitioners draw one
        public coin per edge while iterating, so every backend must
        enumerate edges identically for runs to be reproducible.
        """
        for u in range(self.n):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_list(self) -> list[Edge]:
        """All edges as a sorted list."""
        return list(self.edges())

    def vertices(self) -> range:
        """The vertex set."""
        return range(self.n)

    def subgraph_edges(self, edges: Iterable[Edge]) -> "Graph":
        """A graph on the same vertex set containing only ``edges``."""
        return Graph(self.n, (canonical_edge(u, v) for u, v in edges))

    def union(self, other: "Graph") -> "Graph":
        """Edge union of two graphs on the same vertex set."""
        if other.n != self.n:
            raise ValueError(f"vertex-set mismatch: {self.n} != {other.n}")
        merged = self.copy()
        for u, v in other.edges():
            merged.add_edge(u, v)
        return merged

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """True if no two of ``vertices`` are adjacent."""
        vset = set(vertices)
        return all(not (self._adj[v] & vset) for v in vset)

    # -- backend-agnostic accessors ---------------------------------------
    #
    # The protocols' hot paths call these instead of materializing
    # ``neighbors()``; BitsetGraph overrides them with word-parallel
    # bitmask implementations.

    def iter_neighbors(self, v: int) -> Iterator[int]:
        """Iterate the neighbors of ``v`` in increasing order."""
        return iter(sorted(self._adj[v]))

    def pack_vertices(self, vertices: Iterable[int]) -> object:
        """Pack a vertex collection into this backend's native set type.

        The result is opaque — pass it back to :meth:`neighbors_in`.  The
        set backend uses a frozenset; the bitset backend an int mask.
        """
        return frozenset(vertices)

    def neighbors_in(self, v: int, packed: object) -> list[int]:
        """Neighbors of ``v`` inside a :meth:`pack_vertices` result, sorted."""
        return sorted(self._adj[v] & packed)  # type: ignore[operator]

    def has_neighbor_in(self, v: int, packed: object) -> bool:
        """Whether any neighbor of ``v`` lies in a :meth:`pack_vertices` result.

        The existence probe behind the batch confirmation sweeps: no
        neighbor list is materialized or sorted.
        """
        return not self._adj[v].isdisjoint(packed)  # type: ignore[arg-type]

    def neighbor_colors(self, v: int, coloring: Mapping[int, int]) -> set[int]:
        """The colors that ``coloring`` assigns to neighbors of ``v``."""
        return {coloring[u] for u in self._adj[v] if u in coloring}

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Same vertex range, keeping only edges inside ``vertices``."""
        vset = set(vertices)
        sub = type(self)(self.n)
        for u in vset:
            inside = self._adj[u] & vset
            if inside:
                sub._adj[u] = set(inside)
                sub._m += len(inside)
        sub._m //= 2
        return sub

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        return all(self.neighbors(v) == other.neighbors(v) for v in range(self.n))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self._m}, max_degree={self.max_degree()})"
