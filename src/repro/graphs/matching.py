"""Bipartite matching and the Δ-perfect matching of Lemma 5.3.

Algorithm 2 needs, inside each party's *local* graph, a matching covering
every vertex of maximum degree (a "Δ-perfect matching").  Lemma 5.3 proves
one exists whenever the max-degree vertices form an independent set, via a
fractional-matching argument on the bipartite graph (D, Y).  We implement
Hopcroft–Karp from scratch (this is substrate, not an import) and derive the
Δ-perfect matching from it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping

from .graph import Edge, Graph, canonical_edge

__all__ = ["delta_perfect_matching", "hopcroft_karp", "is_matching"]

_INF = float("inf")


def hopcroft_karp(
    left: Iterable[int],
    adjacency: Mapping[int, Iterable[int]],
) -> dict[int, int]:
    """Maximum bipartite matching via Hopcroft–Karp.

    ``left`` lists the left-part vertices; ``adjacency[u]`` lists right-part
    vertices reachable from left vertex ``u`` (the parts may share integer
    labels only if they are disjoint sets of vertices — callers ensure
    this).  Returns a dict mapping matched left vertices to their partners.

    Runs in ``O(E·√V)``.
    """
    left_list = list(left)
    match_left: dict[int, int] = {}
    match_right: dict[int, int] = {}
    dist: dict[int, float] = {}

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in left_list:
            if u not in match_left:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                w = match_right.get(v)
                if w is None:
                    found_free = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_free

    def dfs(u: int) -> bool:
        for v in adjacency.get(u, ()):
            w = match_right.get(v)
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in left_list:
            if u not in match_left:
                dfs(u)
    return match_left


def delta_perfect_matching(graph: Graph, degree: int | None = None) -> list[Edge]:
    """A matching covering every vertex of degree ``degree`` (Lemma 5.3).

    ``degree`` defaults to the maximum degree of ``graph``.  Requires the
    target-degree vertices to form an independent set; raises
    ``ValueError`` otherwise, and raises ``RuntimeError`` if no covering
    matching exists (impossible under Lemma 5.3's hypothesis — exercised by
    the test suite).
    """
    target = graph.max_degree() if degree is None else degree
    if target <= 0:
        return []
    heavy = [v for v in graph.vertices() if graph.degree(v) == target]
    if not heavy:
        return []
    if not graph.is_independent_set(heavy):
        raise ValueError(
            f"degree-{target} vertices do not form an independent set; "
            "Lemma 5.3 does not apply"
        )
    adjacency = {v: list(graph.iter_neighbors(v)) for v in heavy}
    matching = hopcroft_karp(heavy, adjacency)
    if len(matching) != len(heavy):
        missed = sorted(set(heavy) - set(matching))[:3]
        raise RuntimeError(
            f"no matching covers all degree-{target} vertices (missed {missed}); "
            "this contradicts Lemma 5.3"
        )
    return [canonical_edge(u, v) for u, v in matching.items()]


def is_matching(edges: Iterable[Edge]) -> bool:
    """True if no two edges share an endpoint."""
    seen: set[int] = set()
    for u, v in edges:
        if u in seen or v in seen or u == v:
            return False
        seen.add(u)
        seen.add(v)
    return True
