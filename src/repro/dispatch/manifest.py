"""Crash-safe coordinator state: the ``dispatch.json`` manifest.

The manifest is the dispatcher's single source of truth about shard
progress.  It records the grid fingerprint (so a resume cannot silently
run against a different selection), the shard layout (hash spec or
explicit cost-packed membership), and each shard's lifecycle state.
Every state change is persisted with an atomic write-temp-then-rename,
so a coordinator killed at any instant leaves either the previous or the
next manifest on disk — never a torn one — and ``dispatch --resume``
picks up exactly where the crash happened: ``done`` shards are skipped
(their documents reload from the shard dirs), ``running`` shards demote
to ``pending`` (their journals make the rerun incremental).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from .. import __version__
from ..rand import stable_label_hash

__all__ = ["DispatchError", "Manifest", "ShardState", "grid_fingerprint"]

#: Shard lifecycle states, in order of progress.
_STATUSES = ("pending", "running", "done", "failed")


class DispatchError(RuntimeError):
    """A dispatch that cannot proceed (bad manifest, exhausted retries, ...)."""


def grid_fingerprint(
    scenario_names: Sequence[str], reps: int, label: str
) -> int:
    """A stable fingerprint of the dispatched grid and its run settings.

    Depends only on the scenario names (order-sensitive: grid order is
    part of the document contract), the replication count, and the
    document label — the things a resumed dispatch must agree on for its
    merged document to mean anything.
    """
    return stable_label_hash(("dispatch", reps, label, *scenario_names))


@dataclass
class ShardState:
    """One shard's slice of the grid and its lifecycle state."""

    shard_id: int  # 1-based, stable across resumes
    scenarios: list[str]  # member scenario names, in grid order
    spec: str | None = None  # "k/M" hash spec; None for cost-packed shards
    status: str = "pending"
    attempts: int = 0  # worker launches so far (retries included)

    def to_json(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "scenarios": self.scenarios,
            "spec": self.spec,
            "status": self.status,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ShardState":
        state = cls(
            shard_id=int(data["shard_id"]),
            scenarios=list(data["scenarios"]),
            spec=data.get("spec"),
            status=data.get("status", "pending"),
            attempts=int(data.get("attempts", 0)),
        )
        if state.status not in _STATUSES:
            raise DispatchError(f"manifest has unknown shard status {state.status!r}")
        return state


@dataclass
class Manifest:
    """The dispatcher's persistent state (``dispatch.json``)."""

    path: Path
    fingerprint: int
    reps: int
    label: str
    assignment: str  # "hash" | "weighted"
    shards: list[ShardState] = field(default_factory=list)
    complete: bool = False

    def save(self) -> None:
        """Persist atomically: write a temp file, fsync, rename over."""
        document = {
            "version": __version__,
            "fingerprint": self.fingerprint,
            "reps": self.reps,
            "label": self.label,
            "assignment": self.assignment,
            "complete": self.complete,
            "shards": [s.to_json() for s in self.shards],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        with tmp.open("w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)

    @classmethod
    def load(cls, path: str | Path) -> "Manifest":
        """Load a manifest, rejecting other package versions outright."""
        p = Path(path)
        try:
            document = json.loads(p.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DispatchError(f"cannot read manifest {p}: {exc}") from exc
        if document.get("version") != __version__:
            raise DispatchError(
                f"manifest {p} was written by version "
                f"{document.get('version')!r}, this package is {__version__!r}; "
                "start a fresh dispatch"
            )
        return cls(
            path=p,
            fingerprint=int(document["fingerprint"]),
            reps=int(document["reps"]),
            label=document["label"],
            assignment=document["assignment"],
            shards=[ShardState.from_json(s) for s in document["shards"]],
            complete=bool(document.get("complete", False)),
        )

    def check_resumable(self, fingerprint: int) -> None:
        """Reject a resume whose grid/settings differ from the original."""
        if fingerprint != self.fingerprint:
            raise DispatchError(
                "dispatch --resume selection does not match the manifest "
                "(grid, --reps, or --label changed); start a fresh dispatch "
                "or re-run with the original flags"
            )

    def reset_interrupted(self) -> None:
        """Demote shards the dead coordinator left ``running`` to ``pending``.

        Their worker processes died with the coordinator; the shard
        journals survive, so the rerun replays completed work.
        Permanently ``failed`` shards also get a fresh chance — a resume
        is an operator saying "try again".
        """
        for shard in self.shards:
            if shard.status in ("running", "failed"):
                shard.status = "pending"
