"""Pluggable worker pools: where a shard sweep actually runs.

An :class:`Executor` turns a shard's ``repro sweep`` argument vector
into a running worker and hands back a :class:`WorkerHandle` the
coordinator can poll, wait on, and kill.  Two executors ship:

* :class:`LocalExecutor` — one ``python -m repro sweep ...`` subprocess
  per shard, the default and what CI uses.
* :class:`SSHExecutor` — the same command wrapped in ``ssh host ...``.
  It assumes the repository (or an installed ``repro``) and the dispatch
  work directory are visible on the remote at the same paths — i.e. a
  shared filesystem, the usual cluster arrangement — because the
  coordinator tails shard journals and loads shard documents from the
  local side of that mount.

Both spell launch identically, so the coordinator is executor-agnostic;
:func:`make_executor` maps a CLI spec (``local`` or ``ssh://host``) to
an instance.  Workers are killed with SIGKILL, never terminated softly:
the whole design budget of the dispatcher is that a worker may die at
any instant and the journals still reassemble the sweep, so the kill
path exercises exactly the guarantee the fault-injection suite pins.
"""

from __future__ import annotations

import shlex
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

__all__ = [
    "Executor",
    "LocalExecutor",
    "SSHExecutor",
    "WorkerHandle",
    "make_executor",
]


@dataclass
class WorkerHandle:
    """A launched shard worker the coordinator polls and may kill."""

    shard_id: int
    attempt: int
    process: subprocess.Popen
    started: float = field(default_factory=time.monotonic)

    def poll(self) -> int | None:
        """The worker's exit code, or ``None`` while it is still running."""
        return self.process.poll()

    def elapsed(self) -> float:
        """Seconds since launch (monotonic)."""
        return time.monotonic() - self.started

    def kill(self) -> None:
        """SIGKILL the worker and reap it; idempotent."""
        if self.process.poll() is None:
            self.process.kill()
        try:
            self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel stall
            pass


class Executor(Protocol):
    """The worker-pool protocol: launch a shard sweep, return its handle."""

    def command(self, sweep_args: Sequence[str]) -> list[str]:
        """The full argv that runs ``repro sweep`` with ``sweep_args``."""
        ...

    def launch(
        self, shard_id: int, attempt: int, sweep_args: Sequence[str], log_path: Path
    ) -> WorkerHandle:
        """Start the shard worker, teeing its output to ``log_path``."""
        ...


class LocalExecutor:
    """Runs each shard as a local ``python -m repro sweep`` subprocess."""

    def __init__(self, python: str | None = None) -> None:
        self.python = python or sys.executable

    def command(self, sweep_args: Sequence[str]) -> list[str]:
        return [self.python, "-m", "repro", "sweep", *sweep_args]

    def launch(
        self, shard_id: int, attempt: int, sweep_args: Sequence[str], log_path: Path
    ) -> WorkerHandle:
        log_path.parent.mkdir(parents=True, exist_ok=True)
        with log_path.open("ab") as log:
            process = subprocess.Popen(
                self.command(sweep_args),
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        return WorkerHandle(shard_id=shard_id, attempt=attempt, process=process)


class SSHExecutor(LocalExecutor):
    """Runs each shard over ``ssh host`` (shared-filesystem assumption).

    The remote command is the local one shell-quoted, with the remote
    interpreter (default ``python3``) substituted; ``BatchMode=yes``
    keeps a dead or passwordless-misconfigured host from hanging the
    coordinator on a prompt — it fails fast and the retry/backoff policy
    takes over, same as any worker death.
    """

    def __init__(self, host: str, python: str = "python3") -> None:
        super().__init__(python=python)
        if not host:
            raise ValueError("ssh executor needs a host (ssh://host)")
        self.host = host

    def command(self, sweep_args: Sequence[str]) -> list[str]:
        remote = super().command(sweep_args)
        return ["ssh", "-o", "BatchMode=yes", self.host, shlex.join(remote)]


def make_executor(spec: str, python: str | None = None) -> Executor:
    """Map a CLI executor spec to an instance.

    ``local`` (the default) or ``ssh://host``; anything else raises
    ``ValueError`` so the CLI can report it as a usage error.
    """
    if spec == "local":
        return LocalExecutor(python=python)
    if spec.startswith("ssh://"):
        return SSHExecutor(spec[len("ssh://"):], python=python or "python3")
    raise ValueError(f"unknown executor {spec!r} (expected 'local' or 'ssh://host')")
