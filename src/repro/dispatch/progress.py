"""Live progress: tailing shard journals back to the coordinator.

Workers already journal every completed scenario (and, under
replication, every completed rep) to their shard's ``journal.jsonl`` —
the crash-recovery log.  The dispatcher reuses that same file as its
progress stream: a :class:`JournalTail` incrementally reads complete
lines as the worker appends them, so the coordinator reports
per-scenario progress live without any side channel, extra IPC, or
worker cooperation beyond what resume already requires.

Torn tails are first-class here too: a worker killed mid-append leaves a
final line without a newline; the tail never consumes bytes past the
last newline, so the partial line is simply not surfaced until (and
unless) it completes.  Journal truncation (a fresh, non-resume worker
attempt reopening the journal in ``"w"`` mode) rewinds the tail.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

__all__ = ["JournalTail", "ShardProgress"]


class JournalTail:
    """Incremental reader of one shard's ``journal.jsonl``."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> list[dict[str, Any]]:
        """Entries appended since the last poll (complete lines only).

        Undecodable complete lines (interior corruption) are skipped,
        matching ``Journal``'s replay policy; an incomplete final line is
        left unconsumed for the next poll.  A shrunk file (the worker
        truncated and restarted the journal) resets the tail to the
        start so nothing is missed.
        """
        try:
            with self.path.open("rb") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size < self._offset:
                    self._offset = 0  # journal was truncated: re-read
                handle.seek(self._offset)
                data = handle.read()
        except OSError:
            return []  # journal not created yet (worker still starting)
        complete, sep, _rest = data.rpartition(b"\n")
        if not sep:
            return []
        self._offset += len(complete) + len(sep)
        entries = []
        for line in complete.split(b"\n"):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return entries


class ShardProgress:
    """Per-shard completion counters fed by a :class:`JournalTail`.

    Tracks which scenarios (not reps) have completed, deduplicating
    across worker restarts — a resumed worker rewrites its journal, so
    the same scenario can stream past the tail more than once.
    """

    def __init__(self, shard_id: int, path: str | Path, total: int) -> None:
        self.shard_id = shard_id
        self.total = total
        self.tail = JournalTail(path)
        self.done: set[str] = set()
        # Live rate estimate from entry-level "elapsed" values (sweeps
        # journal one per completed unit of work).  Entries without the
        # field — replays, or journals from older workers — simply do
        # not contribute, and the messages stay timing-free.
        self._elapsed_sum = 0.0
        self._elapsed_n = 0

    def _rate(self) -> str:
        """A ``", X.XXs/unit"`` suffix once any timed entries arrived."""
        if not self._elapsed_n:
            return ""
        return f", {self._elapsed_sum / self._elapsed_n:.2f}s/unit"

    def poll(self) -> Iterator[str]:
        """Progress messages for journal growth since the last poll."""
        for entry in self.tail.poll():
            name = entry.get("scenario")
            if name is None:
                continue
            elapsed = entry.get("elapsed")
            timing = ""
            if isinstance(elapsed, (int, float)):
                # A scenario-level entry under replication carries the
                # summed rep time; only single-unit entries feed the
                # per-unit rate so the estimate never double-counts.
                if "rep" in entry or entry.get("reps", 1) == 1:
                    self._elapsed_sum += float(elapsed)
                    self._elapsed_n += 1
                timing = f" ({float(elapsed):.2f}s{self._rate()})"
            if "rep" in entry:
                yield (
                    f"[shard {self.shard_id}] {name} "
                    f"rep {int(entry['rep']) + 1}/{entry.get('reps', '?')}"
                    f"{timing}"
                )
                continue
            if name in self.done:
                continue  # journal rewrite on worker resume
            self.done.add(name)
            yield (
                f"[shard {self.shard_id}] done {name} "
                f"({len(self.done)}/{self.total}){timing}"
            )
