"""Fault-tolerant sweep dispatching: ``python -m repro dispatch``.

The in-repo driver that replaces external CI matrixes for multi-worker
sweeps: :class:`Coordinator` cuts the grid into many shards, fans them
out over an :class:`Executor` (local subprocesses or ``ssh://host``),
streams live progress by tailing each shard's journal, survives worker
kills, stragglers, and its own death (``dispatch.json`` manifest +
``--resume``), and hierarchically tree-merges partial documents into a
``sweep.json`` that is bit-for-bit the serial sweep's.

Layering: this package sits strictly *above* :mod:`repro.engine` — it
launches workers that are themselves plain ``repro sweep`` invocations
and folds their documents with the engine's own merge, so every
guarantee the sharded sweep path pins (canonical documents, stable
seeds, journal resume) is inherited rather than reimplemented.
"""

from .coordinator import Coordinator, DispatchConfig, MergeTree
from .executors import (
    Executor,
    LocalExecutor,
    SSHExecutor,
    WorkerHandle,
    make_executor,
)
from .manifest import DispatchError, Manifest, ShardState, grid_fingerprint
from .progress import JournalTail, ShardProgress

__all__ = [
    "Coordinator",
    "DispatchConfig",
    "DispatchError",
    "Executor",
    "JournalTail",
    "LocalExecutor",
    "Manifest",
    "MergeTree",
    "SSHExecutor",
    "ShardProgress",
    "ShardState",
    "WorkerHandle",
    "grid_fingerprint",
    "make_executor",
]
