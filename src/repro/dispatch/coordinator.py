"""The dispatch coordinator: fan out shards, tail journals, tree-merge.

The driver the ROADMAP asked for: ``repro dispatch`` splits the grid
into M shards (M deliberately larger than the worker count so one slow
shard never serializes the sweep), launches at most ``workers`` of them
at a time through a pluggable :class:`~repro.dispatch.executors.Executor`,
tails every running shard's ``journal.jsonl`` for live per-scenario
progress, and folds shard documents into a hierarchical merge the moment
each one lands — by the time the last shard finishes, the sweep is one
small merge away from done, never one giant terminal merge.

Robustness model (every path below is exercised by the fault-injection
suite):

* A worker may die at any instant (crash, OOM, SIGKILL).  Its journal
  survives; the shard is relaunched with ``--resume`` after an
  exponential backoff, replaying completed scenarios — bounded by
  ``retries``.
* A worker may *hang* (straggler).  ``timeout`` caps each attempt's wall
  time; on expiry the worker is killed and the shard re-dispatched the
  same journal-resumed way, so only the scenarios it had not journaled
  rerun.
* The coordinator itself may die.  Its ``dispatch.json`` manifest is
  written atomically on every state change, so ``dispatch --resume``
  reloads completed shard documents from disk, demotes interrupted
  shards to pending, and continues — it never reruns a finished shard.
* Shutdown (normal, error, or Ctrl-C) always kills outstanding workers;
  what remains on disk is exactly the replayable journals and canonical
  partial documents.

The headline invariant extends the sharded-sweep one: the merged
document is bit-for-bit the serial ``repro sweep`` document, including
after injected worker kills, because every record is a pure function of
its coordinate and the merge is content-addressed (identical overlaps
fold idempotently).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..engine import (
    Scenario,
    build_document,
    load_shard_document,
    merge_documents,
    pack_shards,
    shard_scenarios,
    write_results,
)
from ..obs import get_observer
from .executors import Executor, WorkerHandle
from .manifest import DispatchError, Manifest, ShardState, grid_fingerprint
from .progress import ShardProgress

__all__ = ["Coordinator", "DispatchConfig", "DispatchError", "MergeTree"]


@dataclass
class DispatchConfig:
    """Tuning knobs for one dispatch run."""

    workers: int = 2  # concurrent worker slots
    shards: int | None = None  # M; default 4x workers, capped at grid size
    weighted: bool = False  # cost-hint packing instead of hash assignment
    reps: int = 1
    label: str = "sweep"
    worker_jobs: int = 1  # --jobs inside each worker
    timeout: float | None = None  # per-attempt straggler cap (seconds)
    retries: int = 2  # re-dispatches allowed per shard
    backoff: float = 1.0  # base of the exponential retry delay (seconds)
    poll_interval: float = 0.05
    inject_kill: int | None = None  # (testing/CI) SIGKILL this shard once
    abort_after_merges: int | None = None  # (testing) simulate coordinator crash


class MergeTree:
    """Hierarchical incremental merge of shard documents.

    A binary-counter fold (the HAPOD-style partial-merge tree): each
    finished shard enters at level 0, and whenever two partials meet at
    a level they merge into one at the next — so after S shards only
    O(log S) partials are alive and every merge is between documents of
    comparable size.  Each fold routes through
    :func:`~repro.engine.merge_documents` (validating versions, seeds,
    and overlap identity) and rewraps via
    :func:`~repro.engine.build_document`, so intermediate partials are
    themselves canonical documents.  The final record list is
    independent of arrival order: merging is content-based and the
    output is always reassembled in grid order.
    """

    def __init__(self, expected: Sequence[Scenario]) -> None:
        self.expected = list(expected)
        self.levels: list[dict[str, Any] | None] = []
        self.merges = 0  # folds performed (observability + tests)

    def add(self, document: dict[str, Any]) -> None:
        """Fold one shard document into the tree."""
        carry = document
        level = 0
        while level < len(self.levels) and self.levels[level] is not None:
            carry = self._fold(self.levels[level], carry)
            self.levels[level] = None
            level += 1
        if level == len(self.levels):
            self.levels.append(carry)
        else:
            self.levels[level] = carry

    def _fold(self, left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
        records = merge_documents([left, right], self.expected)
        self.merges += 1
        return build_document(records)

    def finish(self, check_complete: bool = True) -> list[dict[str, Any]]:
        """Merge the surviving partials into the final record list."""
        partials = [d for d in self.levels if d is not None]
        return merge_documents(
            partials, self.expected, check_complete=check_complete
        )


class Coordinator:
    """Owns one dispatch run: scheduling, fault handling, merging."""

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        selection_args: Sequence[str],
        work_dir: str | Path,
        out_dir: str | Path,
        executor: Executor,
        config: DispatchConfig,
        progress: Callable[[str], None] | None = None,
        resume: bool = False,
    ) -> None:
        if not scenarios:
            raise DispatchError("nothing to dispatch: empty scenario grid")
        if config.workers < 1:
            raise DispatchError(f"need at least one worker, got {config.workers}")
        self.grid = list(scenarios)
        self.selection_args = list(selection_args)
        self.work_dir = Path(work_dir)
        self.out_dir = Path(out_dir)
        self.executor = executor
        self.config = config
        self.progress = progress or (lambda message: None)
        self.resume = resume
        self.shard_count = self._shard_count()
        self.fingerprint = grid_fingerprint(
            [s.name for s in self.grid], config.reps, config.label
        )
        self.manifest = self._load_or_create_manifest()
        self.tree = MergeTree(self.grid)
        self.launches = 0  # total worker launches (tests assert on this)
        self._injected = False

    # -- setup ---------------------------------------------------------

    def _shard_count(self) -> int:
        if self.config.shards is not None:
            if self.config.shards < 1:
                raise DispatchError(f"need >= 1 shard, got {self.config.shards}")
            return self.config.shards
        return max(1, min(4 * self.config.workers, len(self.grid)))

    def _split(self) -> list[ShardState]:
        """Cut the grid into shard states (empty shards are dropped)."""
        count = self.shard_count
        if self.config.weighted:
            parts = pack_shards(self.grid, count)
            specs: list[str | None] = [None] * count
        else:
            parts = [shard_scenarios(self.grid, k, count) for k in range(1, count + 1)]
            specs = [f"{k}/{count}" for k in range(1, count + 1)]
        return [
            ShardState(
                shard_id=k,
                scenarios=[s.name for s in part],
                spec=specs[k - 1],
            )
            for k, part in enumerate(parts, start=1)
            if part
        ]

    def _load_or_create_manifest(self) -> Manifest:
        path = self.work_dir / "dispatch.json"
        if self.resume:
            manifest = Manifest.load(path)
            manifest.check_resumable(self.fingerprint)
            manifest.reset_interrupted()
            manifest.save()
            return manifest
        manifest = Manifest(
            path=path,
            fingerprint=self.fingerprint,
            reps=self.config.reps,
            label=self.config.label,
            assignment="weighted" if self.config.weighted else "hash",
            shards=self._split(),
        )
        manifest.save()
        return manifest

    # -- per-shard plumbing --------------------------------------------

    def shard_dir(self, shard_id: int) -> Path:
        return self.work_dir / f"shard-{shard_id:03d}"

    def _worker_args(self, shard: ShardState) -> list[str]:
        """The ``repro sweep`` argv for one attempt at a shard.

        The first attempt of a fresh dispatch starts clean (``Journal``
        truncates any stale file); every later attempt — retry,
        straggler re-dispatch, or coordinator resume — passes
        ``--resume`` so the worker replays its journal and runs only
        what is missing.
        """
        args = list(self.selection_args)
        if shard.spec is not None:
            args += ["--shard", shard.spec]
        else:
            scenario_file = self.shard_dir(shard.shard_id) / "scenarios.txt"
            scenario_file.parent.mkdir(parents=True, exist_ok=True)
            scenario_file.write_text("".join(f"{n}\n" for n in shard.scenarios))
            args += ["--scenario-file", str(scenario_file)]
        args += [
            "--jobs", str(self.config.worker_jobs),
            "--reps", str(self.config.reps),
            "--label", self.config.label,
            "--out", str(self.shard_dir(shard.shard_id)),
        ]
        if shard.attempts > 0 or self.resume:
            args.append("--resume")
        return args

    def _launch(self, shard: ShardState) -> WorkerHandle:
        args = self._worker_args(shard)
        shard.attempts += 1
        shard.status = "running"
        self.manifest.save()
        handle = self.executor.launch(
            shard.shard_id,
            shard.attempts,
            args,
            self.shard_dir(shard.shard_id) / "worker.log",
        )
        self.launches += 1
        obs = get_observer()
        if obs.enabled:
            obs.count("dispatch.launches")
            obs.event(
                "shard_launched",
                shard=shard.shard_id,
                attempt=shard.attempts,
                scenarios=len(shard.scenarios),
            )
        self.progress(
            f"[shard {shard.shard_id}] launched attempt {shard.attempts} "
            f"({len(shard.scenarios)} scenarios)"
        )
        return handle

    def _load_done_document(self, shard: ShardState) -> dict[str, Any] | None:
        """A finished shard's document, or ``None`` if it is unusable."""
        try:
            return load_shard_document(
                self.shard_dir(shard.shard_id), label=self.config.label
            )
        except (OSError, ValueError):
            return None

    # -- the run loop --------------------------------------------------

    def run(self) -> tuple[list[dict[str, Any]], Path, Path]:
        """Execute the dispatch; returns (records, json_path, md_path)."""
        pending: list[ShardState] = []
        merged = 0
        for shard in self.manifest.shards:
            if shard.status == "done":
                document = self._load_done_document(shard)
                if document is None:
                    # The manifest says done but the document is gone or
                    # torn (e.g. the shard dir was cleaned): rerun it.
                    shard.status = "pending"
                    pending.append(shard)
                    continue
                self.tree.add(document)
                merged += 1
                self.progress(
                    f"[shard {shard.shard_id}] already complete "
                    "(resumed from manifest)"
                )
            else:
                pending.append(shard)
        self.manifest.save()

        running: dict[int, WorkerHandle] = {}
        tails: dict[int, ShardProgress] = {}
        eligible_at: dict[int, float] = {}
        by_id = {s.shard_id: s for s in self.manifest.shards}
        total_shards = len(self.manifest.shards)
        try:
            while pending or running:
                now = time.monotonic()
                # Fill free worker slots with backoff-eligible shards.
                while pending and len(running) < self.config.workers:
                    ready = next(
                        (
                            s
                            for s in pending
                            if eligible_at.get(s.shard_id, 0.0) <= now
                        ),
                        None,
                    )
                    if ready is None:
                        break
                    pending.remove(ready)
                    running[ready.shard_id] = self._launch(ready)
                    tails[ready.shard_id] = ShardProgress(
                        ready.shard_id,
                        self.shard_dir(ready.shard_id) / "journal.jsonl",
                        total=len(ready.scenarios),
                    )

                progressed = False
                for shard_id in list(running):
                    handle = running[shard_id]
                    shard = by_id[shard_id]
                    for message in tails[shard_id].poll():
                        self.progress(message)
                        progressed = True
                    self._maybe_inject_kill(shard, handle, tails[shard_id])
                    code = handle.poll()
                    if code is None:
                        if (
                            self.config.timeout is not None
                            and handle.elapsed() > self.config.timeout
                        ):
                            handle.kill()
                            del running[shard_id]
                            self._handle_failure(
                                shard, pending, eligible_at, "straggler timeout"
                            )
                            progressed = True
                        continue
                    del running[shard_id]
                    progressed = True
                    if code == 0:
                        document = self._load_done_document(shard)
                        if document is None:
                            self._handle_failure(
                                shard,
                                pending,
                                eligible_at,
                                "exited 0 but left no readable document",
                            )
                            continue
                        shard.status = "done"
                        self.manifest.save()
                        self.tree.add(document)
                        merged += 1
                        obs = get_observer()
                        if obs.enabled:
                            obs.count("dispatch.shards_merged")
                            obs.event(
                                "shard_merged",
                                shard=shard_id,
                                merged=merged,
                                folds=self.tree.merges,
                            )
                        self.progress(
                            f"[shard {shard_id}] merged "
                            f"({merged}/{total_shards} shards, "
                            f"{self.tree.merges} tree folds)"
                        )
                        if (
                            self.config.abort_after_merges is not None
                            and merged >= self.config.abort_after_merges
                        ):
                            raise DispatchError(
                                "aborted by test hook (abort_after_merges)"
                            )
                    else:
                        self._handle_failure(
                            shard, pending, eligible_at, f"exit code {code}"
                        )
                if not progressed:
                    time.sleep(self.config.poll_interval)
        finally:
            # Clean shutdown on every exit path: no orphan workers, and
            # what survives on disk is replayable journals + documents.
            for handle in running.values():
                handle.kill()

        records = self.tree.finish(check_complete=True)
        obs = get_observer()
        if obs.enabled:
            obs.gauge("dispatch.shards", len(self.manifest.shards))
            obs.gauge("dispatch.worker_launches", self.launches)
            obs.gauge("dispatch.merge_folds", self.tree.merges)
            obs.gauge("dispatch.merge_tree_depth", len(self.tree.levels))
        json_path, md_path = write_results(
            records, self.out_dir, label=self.config.label
        )
        self.manifest.complete = True
        self.manifest.save()
        return records, json_path, md_path

    def _handle_failure(
        self,
        shard: ShardState,
        pending: list[ShardState],
        eligible_at: dict[int, float],
        why: str,
    ) -> None:
        """Re-queue a failed shard with backoff, or give up past the cap."""
        failures = shard.attempts  # every attempt so far has now failed
        if failures > self.config.retries:
            shard.status = "failed"
            self.manifest.save()
            raise DispatchError(
                f"shard {shard.shard_id} failed permanently after "
                f"{failures} attempts ({why}); see "
                f"{self.shard_dir(shard.shard_id) / 'worker.log'}"
            )
        delay = self.config.backoff * (2 ** (failures - 1))
        shard.status = "pending"
        self.manifest.save()
        eligible_at[shard.shard_id] = time.monotonic() + delay
        pending.append(shard)
        obs = get_observer()
        if obs.enabled:
            obs.count("dispatch.retries")
            if why == "straggler timeout":
                obs.count("dispatch.straggler_kills")
            obs.event(
                "shard_retry", shard=shard.shard_id, why=why, delay=delay
            )
        self.progress(
            f"[shard {shard.shard_id}] {why}; retry {failures}/"
            f"{self.config.retries} in {delay:.1f}s (journal-resumed)"
        )

    def _inject_target(self) -> int | None:
        """The shard id ``--inject-kill K`` targets: the Kth live shard.

        Resolved against the manifest (which holds only non-empty
        shards) and clamped to it, so the hook always lands on a shard
        that actually runs work — a raw shard id could name a slot the
        hash assignment left empty, silently skipping the injection.
        """
        if self.config.inject_kill is None or not self.manifest.shards:
            return None
        ordinal = max(1, min(self.config.inject_kill, len(self.manifest.shards)))
        return self.manifest.shards[ordinal - 1].shard_id

    def _maybe_inject_kill(
        self, shard: ShardState, handle: WorkerHandle, tail: ShardProgress
    ) -> None:
        """Testing/CI hook: SIGKILL one shard's first attempt mid-flight.

        Fires once, only after the worker has journaled at least one
        scenario, so the kill provably lands *mid-shard* and the retry
        path must resume — not restart — the work.
        """
        if (
            self._injected
            or self._inject_target() != shard.shard_id
            or handle.attempt != 1
            or not tail.done
        ):
            return
        self._injected = True
        handle.kill()
        self.progress(
            f"[shard {shard.shard_id}] injected SIGKILL after "
            f"{len(tail.done)} journaled scenarios"
        )
