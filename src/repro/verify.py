"""One-call verification of protocol results against the model's contract.

Downstream users (and our own benches) repeatedly need the same audit:
*is this result a valid output of the problem the paper defines?*  That is
more than properness — the two-party model adds output-ownership rules
(each party reports its own edges in the edge-coloring problem, both
parties know all vertex colors in the vertex-coloring problem) and
palette constraints.  These functions re-check everything from scratch
against the original :class:`~repro.graphs.partition.EdgePartition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.edge_coloring import EdgeColoringResult
from .core.vertex_coloring import VertexColoringResult
from .graphs.partition import EdgePartition
from .graphs.validation import (
    vertex_coloring_conflicts,
)

__all__ = ["VerificationReport", "verify_edge_result", "verify_vertex_result"]


@dataclass
class VerificationReport:
    """Outcome of a contract audit; falsy when any check failed."""

    problems: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        """Record a violated check."""
        self.problems.append(message)

    @property
    def ok(self) -> bool:
        """True if every check passed."""
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` listing every violated check."""
        if self.problems:
            raise AssertionError(
                "verification failed:\n  - " + "\n  - ".join(self.problems)
            )


def verify_vertex_result(
    partition: EdgePartition,
    result: VertexColoringResult,
) -> VerificationReport:
    """Audit a Theorem 1 result against the ``(Δ+1)``-vertex contract."""
    report = VerificationReport()
    graph = partition.graph
    num_colors = partition.max_degree + 1

    missing = [v for v in graph.vertices() if v not in result.colors]
    if missing:
        report.fail(f"{len(missing)} vertices uncolored, e.g. {missing[:3]}")
    out_of_palette = [
        v for v, c in result.colors.items() if not 1 <= c <= num_colors
    ]
    if out_of_palette:
        report.fail(
            f"{len(out_of_palette)} vertices outside palette [1..{num_colors}]"
        )
    conflicts = vertex_coloring_conflicts(graph, result.colors)
    if conflicts:
        report.fail(f"{len(conflicts)} monochromatic edges, e.g. {conflicts[:3]}")
    if result.num_colors != num_colors:
        report.fail(
            f"result declares palette {result.num_colors}, expected {num_colors}"
        )
    if result.transcript.rounds != result.rounds:
        report.fail("result.rounds disagrees with its transcript")
    if result.total_bits != result.transcript.total_bits:
        report.fail("result.total_bits disagrees with its transcript")
    if result.leftover_size < 0 or result.leftover_size > graph.n:
        report.fail(f"implausible leftover size {result.leftover_size}")
    return report


def verify_edge_result(
    partition: EdgePartition,
    result: EdgeColoringResult,
    zero_communication: bool = False,
) -> VerificationReport:
    """Audit a Theorem 2/3 result against the edge-coloring contract.

    ``zero_communication`` additionally enforces Theorem 3's empty
    transcript and widens the palette to ``2Δ``.
    """
    report = VerificationReport()
    graph = partition.graph
    delta = partition.max_degree
    num_colors = max(2 * delta if zero_communication else 2 * delta - 1, 1)

    if set(result.alice_colors) != set(partition.alice_edges):
        report.fail("Alice's reported edges differ from her input edges")
    if set(result.bob_colors) != set(partition.bob_edges):
        report.fail("Bob's reported edges differ from his input edges")

    merged = result.colors
    out_of_palette = [
        e for e, c in merged.items() if not 1 <= c <= num_colors
    ]
    if out_of_palette:
        report.fail(
            f"{len(out_of_palette)} edges outside palette [1..{num_colors}], "
            f"e.g. {out_of_palette[:3]}"
        )
    for v in graph.vertices():
        seen: dict[int, tuple[int, int]] = {}
        for u in graph.neighbors(v):
            edge = (min(u, v), max(u, v))
            color = merged.get(edge)
            if color is None:
                report.fail(f"edge {edge} uncolored")
                continue
            if color in seen:
                report.fail(
                    f"edges {seen[color]} and {edge} share color {color} at {v}"
                )
                break
            seen[color] = edge
    if zero_communication and result.transcript.total_bits != 0:
        report.fail(
            f"zero-communication protocol spent {result.transcript.total_bits} bits"
        )
    if zero_communication and result.transcript.rounds != 0:
        report.fail(f"zero-communication protocol used {result.transcript.rounds} rounds")
    return report
