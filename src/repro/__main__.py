"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands:

``sweep``
    Run a scenario grid through :func:`repro.engine.sweep` and write
    ``sweep.json`` + ``sweep.md`` result files.  ``--smoke`` selects the
    small CI grid; ``--large`` the million-vertex tier (power-law
    social graphs on the CSR backend); ``--filter`` narrows any grid
    by name substring;
    ``--backend`` pins or duplicates the graph backend; ``--transport``
    pins the comm transport (lockstep / count / strict, or ``all``).
    ``--shard k/N`` runs only this machine's stable-hash shard of the
    grid; ``--reps R`` replicates every scenario under derived rep seeds
    with mean/stddev/CI aggregation; ``--resume`` replays
    ``<out>/journal.jsonl`` and runs only the coordinates a crashed or
    preempted sweep left unfinished.

``merge``
    Combine per-shard ``sweep.json`` documents into the unsharded
    document, verifying versions, seeds, and overlap identity —
    and, with ``--check-complete``, that the union covers the whole
    grid.  The re-rendered ``sweep.json`` is bit-for-bit identical to
    what one serial sweep would have written.

``dispatch``
    The in-repo distributed driver: split the grid into many shards
    (stable-hash by default, ``--weighted`` cost-packed), fan them out
    over ``--workers`` slots of a pluggable executor (``local``
    subprocesses or ``ssh://host``), tail shard journals for live
    per-scenario progress, survive worker kills / stragglers
    (``--timeout``, ``--retries``, exponential backoff, journal-resumed
    re-dispatch) and coordinator crashes (``dispatch.json`` manifest +
    ``--resume``), and tree-merge partial documents as shards finish.
    The merged ``sweep.json`` is bit-for-bit a serial sweep's.

``bench``
    Compare the set-based and bitset graph backends on the shared
    medium benchmark workload (kernels + end-to-end protocols), under
    ``--transport``; with ``--compare-transports``, time the protocols
    across all three comm transports instead; with ``--rand``, time the
    randomness substrates (legacy ``random.Random`` tape vs
    ``repro.rand`` streams) on micro draws and the Theorem 1 vertex
    path; with ``--graphs``, compare the graph *representations*
    (set / bitset / csr) on a shared power-law edge list — build time,
    probe throughput, and memory, with the ``--min-csr-speedup`` CI
    floor; with ``--profile``, emit cProfile's top functions for that
    path.  ``--json`` writes the rows to a machine-readable file.

``trace``
    Summarize or convert a trace file produced by ``--trace``: aggregate
    span and per-phase tables, ``--chrome`` export to Chrome
    ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``),
    ``--json`` for the machine-readable summary, ``--check`` to fail on
    schema violations.

``list-scenarios``
    Print the scenario names a sweep would run, without running them.

``sweep``, ``dispatch``, and ``bench`` all accept ``--trace PATH`` /
``--metrics PATH`` to install an observer for the run.  Observability is
strictly out-of-band: the canonical result documents are byte-identical
with and without it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from contextlib import nullcontext
from pathlib import Path

from .analysis.tables import format_table
from .engine import (
    Journal,
    MergeError,
    backend_comparison,
    default_scenarios,
    graphs_comparison,
    iter_scenarios,
    kernel_comparison,
    large_scenarios,
    load_shard_document,
    merge_documents,
    parse_shard_spec,
    profile_hotspots,
    rand_comparison,
    results_table,
    shard_scenarios,
    smoke_scenarios,
    sweep,
    transport_comparison,
    write_results,
)
from .obs import (
    observing,
    read_trace,
    summarize_phases,
    summarize_spans,
    to_chrome,
    validate_trace,
)

__all__ = ["main"]

_TRANSPORT_CHOICES = ("lockstep", "count", "strict")
_BACKEND_CHOICES = ("set", "bitset", "csr", "both")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics`` observability flags."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a span/event trace (flushed JSONL) to PATH; summarize "
            "or convert it later with `repro trace` — canonical outputs "
            "are byte-identical with or without this flag"
        ),
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "write a metrics JSON document (counters/gauges/histograms, "
            "comm telemetry, wall times) to PATH on exit"
        ),
    )


def _obs_context(args: argparse.Namespace):
    """An ``observing(...)`` context when either flag was given, else a no-op."""
    if args.trace is None and args.metrics is None:
        return nullcontext()
    return observing(trace=args.trace, metrics=args.metrics)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Round- and communication-efficient graph coloring (PODC 2025) — "
            "experiment engine"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep_p = sub.add_parser("sweep", help="run a scenario sweep")
    sweep_grid = sweep_p.add_mutually_exclusive_group()
    sweep_grid.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI grid instead of the full curated grid",
    )
    sweep_grid.add_argument(
        "--large",
        action="store_true",
        help=(
            "run the million-vertex tier (power-law social graphs at "
            "n=1e5 and n=1e6 on the CSR backend) instead of the curated "
            "grid — sparse-backend territory; see ARCHITECTURE.md"
        ),
    )
    sweep_p.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTR",
        help="only scenarios whose name contains SUBSTR",
    )
    sweep_p.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default=None,
        help="pin every scenario to one graph backend ('both' runs them all)",
    )
    sweep_p.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES + ("all",),
        default="lockstep",
        help="comm transport for every scenario (default: lockstep)",
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 1 = serial)",
    )
    sweep_p.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="directory for sweep.json / sweep.md (default: results/)",
    )
    sweep_p.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help=(
            "run only shard K of N (1-based); assignment is a stable hash "
            "of each scenario name, so shards partition the grid and "
            "never reshuffle as scenarios are added"
        ),
    )
    sweep_p.add_argument(
        "--scenario-file",
        default=None,
        metavar="PATH",
        help=(
            "run only the scenario names listed in PATH (one per line, "
            "'#' comments allowed) — the explicit-membership alternative "
            "to --shard that cost-weighted dispatch shards use; every "
            "name must be in the selected grid"
        ),
    )
    sweep_p.add_argument(
        "--reps",
        type=int,
        default=1,
        metavar="R",
        help=(
            "replications per scenario under derived rep seeds, with "
            "mean/stddev/CI aggregation (default: 1 — no replication)"
        ),
    )
    sweep_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay <out>/journal.jsonl and skip already-completed "
            "scenarios (default: start fresh and truncate the journal)"
        ),
    )
    sweep_p.add_argument(
        "--label",
        default="sweep",
        metavar="NAME",
        help="basename of the result documents (default: sweep)",
    )
    _add_obs_flags(sweep_p)

    merge_p = sub.add_parser(
        "merge", help="combine shard sweep.json documents into one"
    )
    merge_p.add_argument(
        "shards",
        nargs="+",
        metavar="SHARD",
        help="shard sweep.json files (or the result dirs containing them)",
    )
    merge_grid = merge_p.add_mutually_exclusive_group()
    merge_grid.add_argument(
        "--smoke",
        action="store_true",
        help="shards were cut from the small CI grid (must match the sweeps)",
    )
    merge_grid.add_argument(
        "--large",
        action="store_true",
        help="shards were cut from the million-vertex grid",
    )
    merge_p.add_argument("--filter", default=None, metavar="SUBSTR")
    merge_p.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default=None
    )
    merge_p.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES + ("all",),
        default="lockstep",
    )
    merge_p.add_argument(
        "--check-complete",
        action="store_true",
        help="fail unless the shard union covers the entire scenario grid",
    )
    merge_p.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="directory for the merged sweep.json / sweep.md",
    )
    merge_p.add_argument(
        "--label",
        default="sweep",
        metavar="NAME",
        help="basename of the shard and merged documents (default: sweep)",
    )

    dispatch_p = sub.add_parser(
        "dispatch",
        help="fan a sweep out over a worker pool with live merge",
        description=(
            "Split the scenario grid into many shards, run them across a "
            "worker pool (local subprocesses or ssh://host), tail each "
            "shard's journal for live progress, and tree-merge partial "
            "documents as shards finish.  Worker kills, stragglers, and "
            "coordinator crashes are survivable (--resume); the merged "
            "sweep.json is bit-for-bit identical to a serial sweep."
        ),
    )
    dispatch_grid = dispatch_p.add_mutually_exclusive_group()
    dispatch_grid.add_argument(
        "--smoke", action="store_true", help="the small CI grid"
    )
    dispatch_grid.add_argument(
        "--large", action="store_true", help="the million-vertex grid"
    )
    dispatch_p.add_argument("--filter", default=None, metavar="SUBSTR")
    dispatch_p.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default=None
    )
    dispatch_p.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES + ("all",),
        default="lockstep",
    )
    dispatch_p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent worker slots (default: 2)",
    )
    dispatch_p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help=(
            "shard count; default 4x --workers (capped at the grid size) "
            "so one slow shard never serializes the sweep"
        ),
    )
    dispatch_p.add_argument(
        "--weighted",
        action="store_true",
        help=(
            "pack shards greedily by ~n*d cost hints instead of the "
            "default stable-hash assignment (balances uneven grids; "
            "hash stays the default for CI-matrix compatibility)"
        ),
    )
    dispatch_p.add_argument(
        "--executor",
        default="local",
        metavar="SPEC",
        help="'local' (default) or 'ssh://host' (shared filesystem assumed)",
    )
    dispatch_p.add_argument(
        "--reps", type=int, default=1, metavar="R", help="replications per scenario"
    )
    dispatch_p.add_argument(
        "--worker-jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size inside each worker (default: 1)",
    )
    dispatch_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help=(
            "per-attempt straggler cap: kill and journal-resume a shard "
            "that runs longer (default: no timeout)"
        ),
    )
    dispatch_p.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="re-dispatches allowed per shard before giving up (default: 2)",
    )
    dispatch_p.add_argument(
        "--backoff",
        type=float,
        default=1.0,
        metavar="SECS",
        help="base of the exponential retry delay (default: 1.0)",
    )
    dispatch_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reload <work-dir>/dispatch.json and continue: finished "
            "shards are merged from disk, interrupted ones rerun "
            "journal-resumed"
        ),
    )
    dispatch_p.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="directory for the merged sweep.json / sweep.md (default: results/)",
    )
    dispatch_p.add_argument(
        "--work-dir",
        default=None,
        metavar="DIR",
        help="shard dirs + manifest location (default: <out>/dispatch)",
    )
    dispatch_p.add_argument(
        "--label",
        default="sweep",
        metavar="NAME",
        help="basename of the result documents (default: sweep)",
    )
    dispatch_p.add_argument(
        "--inject-kill",
        type=int,
        default=None,
        metavar="K",
        help=(
            "(testing/CI) SIGKILL the Kth live shard's first worker once "
            "it has journaled a scenario, to prove the kill+resume path"
        ),
    )
    _add_obs_flags(dispatch_p)

    bench_p = sub.add_parser(
        "bench", help="compare graph backends (or comm transports)"
    )
    bench_p.add_argument(
        "--n",
        type=int,
        default=None,
        help="vertices (default 512; 100000 with --graphs)",
    )
    bench_p.add_argument(
        "--degree",
        type=int,
        default=None,
        help=(
            "degree (default 8 for the backend comparison, 10 — the E4 "
            "workload — with --compare-transports, 24 — the power-law "
            "cap — with --graphs)"
        ),
    )
    bench_p.add_argument("--seed", type=int, default=42, help="workload seed")
    bench_p.add_argument(
        "--repeat", type=int, default=5, help="timing repetitions (best-of)"
    )
    bench_p.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES,
        default="lockstep",
        help="comm transport for the protocol rows (default: lockstep)",
    )
    bench_p.add_argument(
        "--compare-transports",
        action="store_true",
        help=(
            "time the protocols across all comm transports on the E4 "
            "edge-scaling workload instead of comparing graph backends"
        ),
    )
    bench_p.add_argument(
        "--rand",
        action="store_true",
        help=(
            "time the randomness substrates (legacy random.Random tape "
            "vs repro.rand streams) on micro draws and the Theorem 1 "
            "vertex path instead of comparing graph backends"
        ),
    )
    bench_p.add_argument(
        "--graphs",
        action="store_true",
        help=(
            "compare graph *representations* (set / bitset / csr) on one "
            "shared power-law edge list: build time, confirmation-probe "
            "throughput, and tracemalloc memory — the million-vertex "
            "backend-picking numbers"
        ),
    )
    bench_p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile the Theorem 1 vertex path on the medium workload "
            "and print the top functions by cumulative time"
        ),
    )
    bench_p.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="rows to keep with --profile (default 15)",
    )
    bench_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the bench rows to PATH as JSON",
    )
    bench_p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "fail (exit 1) if the guarded end-to-end speedup drops below "
            "X: with --rand the protocol stream-vs-tape speedup, with "
            "--compare-transports the Theorem 1 pooled-count-vs-"
            "pre-pooling-baseline speedup — the CI regression guards"
        ),
    )
    bench_p.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "(with --rand) fail (exit 1) if any numpy-kernel batch op "
            "speeds up less than X over the pure-Python path; skipped "
            "with a note when numpy is unavailable"
        ),
    )
    bench_p.add_argument(
        "--min-csr-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "(with --graphs) fail (exit 1) unless the csr backend beats "
            "bitset by X on probe throughput OR by 10x on memory — the "
            "sparse-backend CI regression guard"
        ),
    )
    bench_p.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "(with --compare-transports) fail (exit 1) if running the "
            "Theorem 1 count path with observability enabled costs more "
            "than PCT%% over the disabled path — the obs overhead ceiling"
        ),
    )
    _add_obs_flags(bench_p)

    trace_p = sub.add_parser(
        "trace", help="summarize or convert a --trace file"
    )
    trace_p.add_argument("path", metavar="TRACE", help="trace JSONL file")
    trace_p.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help=(
            "write Chrome trace_event JSON to PATH (load in Perfetto or "
            "chrome://tracing)"
        ),
    )
    trace_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the aggregate span/phase summary to PATH as JSON",
    )
    trace_p.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if the trace violates the span schema",
    )

    list_p = sub.add_parser("list-scenarios", help="print scenario names")
    list_grid = list_p.add_mutually_exclusive_group()
    list_grid.add_argument(
        "--smoke", action="store_true", help="list the CI grid"
    )
    list_grid.add_argument(
        "--large", action="store_true", help="list the million-vertex grid"
    )
    list_p.add_argument("--filter", default=None, metavar="SUBSTR")
    list_p.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default=None
    )
    list_p.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES + ("all",),
        default="lockstep",
    )
    list_p.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="list only shard K of N (same assignment as sweep --shard)",
    )

    return parser


def _select_scenarios(args: argparse.Namespace):
    if getattr(args, "large", False):
        grid = large_scenarios()
    elif args.smoke:
        grid = smoke_scenarios()
    else:
        grid = default_scenarios()
    return list(
        iter_scenarios(
            grid,
            pattern=args.filter,
            backend=args.backend,
            transport=getattr(args, "transport", None),
        )
    )


def _apply_shard(scenarios, spec: str | None):
    """Narrow a grid to one ``k/N`` shard; returns ``(scenarios, spec)``."""
    if spec is None:
        return scenarios, None
    index, count = parse_shard_spec(spec)
    return shard_scenarios(scenarios, index, count), f"{index}/{count}"


def _apply_scenario_file(scenarios, path: str | None):
    """Narrow a grid to the names listed in a shard-membership file.

    Keeps grid order (membership files carry *which* scenarios, the grid
    carries the canonical order); unknown names are an error so a stale
    file can never silently shrink a shard.
    """
    if path is None:
        return scenarios
    lines = Path(path).read_text().splitlines()
    wanted = {
        line.strip() for line in lines
        if line.strip() and not line.lstrip().startswith("#")
    }
    known = {s.name for s in scenarios}
    unknown = sorted(wanted - known)
    if unknown:
        raise ValueError(
            f"scenario file names {len(unknown)} coordinates not in the "
            f"selected grid (selection flags must match): {unknown[:3]}"
            + (" ..." if len(unknown) > 3 else "")
        )
    return [s for s in scenarios if s.name in wanted]


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenarios = _select_scenarios(args)
    if not scenarios:
        print("no scenarios match the filter", file=sys.stderr)
        return 2
    if args.reps < 1:
        print(f"error: --reps must be >= 1, got {args.reps}", file=sys.stderr)
        return 2
    if args.shard is not None and args.scenario_file is not None:
        print(
            "error: --shard and --scenario-file are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    try:
        scenarios, shard = _apply_shard(scenarios, args.shard)
        scenarios = _apply_scenario_file(scenarios, args.scenario_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    journal = Journal(
        Path(args.out) / "journal.jsonl", resume=args.resume, reps=args.reps
    )
    try:
        if args.resume:
            resumed = sum(1 for s in scenarios if s.name in journal.completed)
            if resumed:
                print(f"resuming: {resumed} scenarios already journaled")
        if not scenarios:
            # An empty shard is a valid (if unlucky) cut of a small grid:
            # emit an empty document so the merge job still finds N inputs.
            which = f"shard {shard}" if shard else "scenario file"
            print(f"{which} holds no scenarios; writing empty document")
            json_path, md_path = write_results(
                [], args.out, label=args.label, shard=shard
            )
            print(f"wrote {json_path} and {md_path}")
            return 0
        label = f" (shard {shard})" if shard else ""
        print(f"running {len(scenarios)} scenarios{label} ...")
        with _obs_context(args):
            results = sweep(
                scenarios,
                jobs=args.jobs,
                progress=lambda event: print(f"  {event}", flush=True),
                reps=args.reps,
                journal=journal,
            )
    finally:
        journal.close()
    print(results_table(results))
    json_path, md_path = write_results(
        results, args.out, label=args.label, shard=shard
    )
    print(f"\nwrote {json_path} and {md_path}")
    invalid = [r["scenario"] for r in results if not r.get("valid")]
    if invalid:
        print(f"INVALID colorings in: {invalid}", file=sys.stderr)
        return 1
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    expected = _select_scenarios(args)
    if not expected:
        print("no scenarios match the filter", file=sys.stderr)
        return 2
    try:
        documents = [
            load_shard_document(path, label=args.label) for path in args.shards
        ]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read shard document: {exc}", file=sys.stderr)
        return 2
    try:
        merged = merge_documents(
            documents, expected, check_complete=args.check_complete
        )
    except MergeError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    coverage = f"{len(merged)}/{len(expected)}"
    print(
        f"merged {len(documents)} shards: {coverage} coordinates"
        + (" (complete)" if len(merged) == len(expected) else "")
    )
    json_path, md_path = write_results(merged, args.out, label=args.label)
    print(f"wrote {json_path} and {md_path}")
    invalid = [r["scenario"] for r in merged if not r.get("valid")]
    if invalid:
        print(f"INVALID colorings in: {invalid}", file=sys.stderr)
        return 1
    return 0


def _selection_argv(args: argparse.Namespace) -> list[str]:
    """The grid-selection argv fragment shared by dispatch workers.

    Reconstructs exactly the flags ``_select_scenarios`` consumed, so a
    worker's ``repro sweep`` sees the same grid the coordinator split.
    """
    argv: list[str] = []
    if args.smoke:
        argv.append("--smoke")
    if args.large:
        argv.append("--large")
    if args.filter is not None:
        argv += ["--filter", args.filter]
    if args.backend is not None:
        argv += ["--backend", args.backend]
    argv += ["--transport", args.transport]
    return argv


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from .dispatch import Coordinator, DispatchConfig, DispatchError, make_executor

    scenarios = _select_scenarios(args)
    if not scenarios:
        print("no scenarios match the filter", file=sys.stderr)
        return 2
    if args.reps < 1:
        print(f"error: --reps must be >= 1, got {args.reps}", file=sys.stderr)
        return 2
    try:
        executor = make_executor(args.executor)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = DispatchConfig(
        workers=args.workers,
        shards=args.shards,
        weighted=args.weighted,
        reps=args.reps,
        label=args.label,
        worker_jobs=args.worker_jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        inject_kill=args.inject_kill,
    )
    work_dir = Path(args.work_dir) if args.work_dir else Path(args.out) / "dispatch"
    try:
        coordinator = Coordinator(
            scenarios,
            _selection_argv(args),
            work_dir=work_dir,
            out_dir=args.out,
            executor=executor,
            config=config,
            progress=lambda message: print(f"  {message}", flush=True),
            resume=args.resume,
        )
    except DispatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"dispatching {len(scenarios)} scenarios over "
        f"{len(coordinator.manifest.shards)} shards "
        f"({coordinator.manifest.assignment} assignment, "
        f"{config.workers} workers, executor {args.executor}) ..."
    )
    try:
        with _obs_context(args):
            records, json_path, md_path = coordinator.run()
    except DispatchError as exc:
        print(f"dispatch failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            "\ninterrupted: workers killed; journals and the manifest "
            f"survive under {work_dir} — rerun with --resume to continue",
            file=sys.stderr,
        )
        return 130
    print(results_table(records))
    print(f"\nwrote {json_path} and {md_path}")
    invalid = [r["scenario"] for r in records if not r.get("valid")]
    if invalid:
        print(f"INVALID colorings in: {invalid}", file=sys.stderr)
        return 1
    return 0


def _write_bench_json(rows, path: str, label: str) -> None:
    document = {"bench": label, "rows": rows}
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


def _cmd_bench(args: argparse.Namespace) -> int:
    exclusive = [args.compare_transports, args.rand, args.profile, args.graphs]
    if sum(exclusive) > 1:
        print(
            "error: --compare-transports, --rand, --profile, and --graphs "
            "are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    n = args.n if args.n is not None else (100_000 if args.graphs else 512)
    if args.min_speedup is not None and not (args.rand or args.compare_transports):
        print(
            "error: --min-speedup only applies to --rand or "
            "--compare-transports (the perf regression guards)",
            file=sys.stderr,
        )
        return 2
    if args.min_kernel_speedup is not None and not args.rand:
        print(
            "error: --min-kernel-speedup only applies to --rand "
            "(the numpy kernel regression guard)",
            file=sys.stderr,
        )
        return 2
    if args.min_csr_speedup is not None and not args.graphs:
        print(
            "error: --min-csr-speedup only applies to --graphs "
            "(the sparse-backend regression guard)",
            file=sys.stderr,
        )
        return 2
    if args.max_obs_overhead is not None and not args.compare_transports:
        print(
            "error: --max-obs-overhead only applies to "
            "--compare-transports (the observability overhead ceiling)",
            file=sys.stderr,
        )
        return 2
    if (args.rand or args.profile or args.graphs) and args.transport != "lockstep":
        mode = "--rand" if args.rand else "--profile" if args.profile else "--graphs"
        print(
            f"error: --transport conflicts with {mode} "
            "(these modes never touch the comm layer's transports)",
            file=sys.stderr,
        )
        return 2

    if args.graphs:
        degree = args.degree if args.degree is not None else 24
        try:
            with _obs_context(args):
                rows = graphs_comparison(
                    n=n, degree=degree, seed=args.seed, repeat=args.repeat
                )
        except ValueError as exc:
            print(f"error: infeasible workload: {exc}", file=sys.stderr)
            return 2
        table_rows = [
            [
                r["backend"],
                f"{r['build_s']:.3f}",
                f"{r['probe_s'] * 1e3:.3f}",
                f"{r['mem_mb']:.3f}",
                f"{r['peak_mb']:.3f}",
            ]
            for r in rows
        ]
        m = rows[0]["m"] if rows else 0
        print(
            format_table(
                ["backend", "build (s)", "probe sweep (ms)", "mem (MB)", "peak (MB)"],
                table_rows,
                title=(
                    f"graph representation comparison — power-law workload "
                    f"(n={n}, m={m}, cap={degree}, seed={args.seed})"
                ),
            )
        )
        csr = next((r for r in rows if r["backend"] == "csr"), None)
        if csr is not None and "probe_speedup_vs_bitset" in csr:
            print(
                f"csr vs bitset: {csr['probe_speedup_vs_bitset']:.2f}x probe "
                f"throughput, {csr['mem_ratio_vs_bitset']:.1f}x less memory"
            )
        if args.json:
            _write_bench_json(rows, args.json, "graphs_comparison")
        if args.min_csr_speedup is not None:
            if csr is None or "probe_speedup_vs_bitset" not in csr:
                print("error: no csr-vs-bitset row to guard", file=sys.stderr)
                return 2
            speedup = csr["probe_speedup_vs_bitset"]
            mem_ratio = csr["mem_ratio_vs_bitset"]
            if speedup < args.min_csr_speedup and mem_ratio < 10.0:
                print(
                    f"REGRESSION: csr probe speedup {speedup:.2f}x is below "
                    f"the {args.min_csr_speedup:.2f}x floor and memory ratio "
                    f"{mem_ratio:.1f}x is below the 10x escape",
                    file=sys.stderr,
                )
                return 1
            print(
                f"csr guard: probe speedup {speedup:.2f}x "
                f"(floor {args.min_csr_speedup:.2f}x) / memory ratio "
                f"{mem_ratio:.1f}x (escape 10x) — passed"
            )
        return 0

    if args.rand:
        degree = args.degree if args.degree is not None else 8
        try:
            with _obs_context(args):
                rows = rand_comparison(
                    n=n, d=degree, seed=args.seed, repeat=args.repeat
                )
        except ValueError as exc:
            print(f"error: infeasible workload: {exc}", file=sys.stderr)
            return 2
        table_rows = [
            [
                r["op"],
                f"{r['tape_s'] * 1e3:.3f}",
                f"{r['stream_s'] * 1e3:.3f}",
                f"{r['speedup']:.2f}x",
            ]
            for r in rows
        ]
        print(
            format_table(
                ["op", "random.Random tape (ms)", "stream (ms)", "speedup"],
                table_rows,
                title=(
                    f"randomness substrate comparison — medium workload "
                    f"(n={n}, d={degree}, seed={args.seed})"
                ),
            )
        )
        kernel_rows = kernel_comparison(seed=args.seed, repeat=args.repeat)
        if kernel_rows:
            kernel_table = [
                [
                    r["op"],
                    f"{r['pure_s'] * 1e3:.3f}",
                    f"{r['kernel_s'] * 1e3:.3f}",
                    f"{r['speedup']:.2f}x",
                ]
                for r in kernel_rows
            ]
            print(
                format_table(
                    ["op", "pure python (ms)", "numpy kernel (ms)", "speedup"],
                    kernel_table,
                    title="numpy kernel backend — batch draws above dispatch thresholds",
                )
            )
        else:
            print("numpy kernel backend unavailable — pure-Python paths only")
        if args.json:
            _write_bench_json(rows + kernel_rows, args.json, "rand_comparison")
        protocol_rows = [r for r in rows if r["op"].startswith("protocol")]
        if not all(r.get("stream_coloring_proper") for r in protocol_rows):
            print("stream substrate produced an improper coloring!", file=sys.stderr)
            return 1
        if args.min_speedup is not None:
            worst = min(r["speedup"] for r in protocol_rows)
            if worst < args.min_speedup:
                print(
                    f"REGRESSION: protocol stream speedup {worst:.2f}x is "
                    f"below the {args.min_speedup:.2f}x floor",
                    file=sys.stderr,
                )
                return 1
            print(
                f"regression guard: protocol speedup {worst:.2f}x >= "
                f"{args.min_speedup:.2f}x floor"
            )
        if args.min_kernel_speedup is not None:
            if not kernel_rows:
                print(
                    "kernel guard skipped: numpy unavailable, nothing to floor"
                )
            else:
                worst_kernel = min(r["speedup"] for r in kernel_rows)
                if worst_kernel < args.min_kernel_speedup:
                    print(
                        f"REGRESSION: kernel batch speedup {worst_kernel:.2f}x "
                        f"is below the {args.min_kernel_speedup:.2f}x floor",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"kernel guard: batch speedup {worst_kernel:.2f}x >= "
                    f"{args.min_kernel_speedup:.2f}x floor"
                )
        return 0

    if args.profile:
        degree = args.degree if args.degree is not None else 8
        try:
            rows = profile_hotspots(
                n=n, d=degree, seed=args.seed, top=args.top
            )
        except ValueError as exc:
            print(f"error: infeasible workload: {exc}", file=sys.stderr)
            return 2
        table_rows = [
            [
                r["function"],
                f"{r['file']}:{r['line']}",
                str(r["ncalls"]),
                f"{r['tottime_s'] * 1e3:.3f}",
                f"{r['cumtime_s'] * 1e3:.3f}",
            ]
            for r in rows
        ]
        print(
            format_table(
                ["function", "location", "ncalls", "tottime (ms)", "cumtime (ms)"],
                table_rows,
                title=(
                    f"cProfile hotspots — vertex (thm 1) on the medium "
                    f"workload (n={n}, d={degree}, seed={args.seed})"
                ),
            )
        )
        if args.json:
            _write_bench_json(rows, args.json, "profile_hotspots")
        return 0

    if args.compare_transports:
        if args.transport != "lockstep":
            print(
                "error: --transport conflicts with --compare-transports "
                "(the comparison always runs every transport)",
                file=sys.stderr,
            )
            return 2
        degree = args.degree if args.degree is not None else 10
        try:
            with _obs_context(args):
                rows = transport_comparison(
                    n=n, d=degree, seed=args.seed, repeat=args.repeat
                )
        except ValueError as exc:
            print(f"error: infeasible workload: {exc}", file=sys.stderr)
            return 2
        table_rows = [
            [
                r["protocol"],
                f"{r['lockstep_s'] * 1e3:.3f}",
                f"{r['count_s'] * 1e3:.3f}",
                f"{r['strict_s'] * 1e3:.3f}",
                f"{r['count_speedup']:.2f}x",
                "yes" if r["transcripts_equal"] else "NO",
            ]
            for r in rows
        ]
        baseline = next((r for r in rows if "legacy_s" in r), None)
        if baseline is not None:
            table_rows.append(
                [
                    "vertex (thm 1) pooled vs pre-pooling baseline",
                    f"{baseline['legacy_s'] * 1e3:.3f}",
                    f"{baseline['count_s'] * 1e3:.3f}",
                    "-",
                    f"{baseline['pooled_speedup']:.2f}x",
                    "yes" if baseline["legacy_transcript_equal"] else "NO",
                ]
            )
        print(
            format_table(
                [
                    "protocol",
                    "lockstep (ms)",
                    "count (ms)",
                    "strict (ms)",
                    "count speedup",
                    "identical",
                ],
                table_rows,
                title=(
                    f"comm transport comparison — E4 workload "
                    f"(n={n}, d={degree}, seed={args.seed})"
                ),
            )
        )
        if args.json:
            _write_bench_json(rows, args.json, "transport_comparison")
        if not all(r["transcripts_equal"] for r in rows):
            print("transports produced different transcripts!", file=sys.stderr)
            return 1
        if baseline is not None and not baseline["legacy_transcript_equal"]:
            print(
                "pre-pooling baseline produced a different transcript!",
                file=sys.stderr,
            )
            return 1
        if args.min_speedup is not None:
            if baseline is None:
                print(
                    "error: no Theorem 1 baseline row to guard", file=sys.stderr
                )
                return 2
            speedup = baseline["pooled_speedup"]
            if speedup < args.min_speedup:
                print(
                    f"REGRESSION: pooled count path speedup {speedup:.2f}x is "
                    f"below the {args.min_speedup:.2f}x floor (vs the frozen "
                    "pre-pooling lockstep baseline)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"regression guard: pooled speedup {speedup:.2f}x >= "
                f"{args.min_speedup:.2f}x floor"
            )
        if args.max_obs_overhead is not None:
            if baseline is None or "obs_overhead" not in baseline:
                print(
                    "error: no Theorem 1 observability row to guard",
                    file=sys.stderr,
                )
                return 2
            overhead = baseline["obs_overhead"] * 100.0
            if overhead > args.max_obs_overhead:
                print(
                    f"REGRESSION: enabled-observer overhead {overhead:.1f}% "
                    f"on Theorem 1 exceeds the "
                    f"{args.max_obs_overhead:.1f}% ceiling",
                    file=sys.stderr,
                )
                return 1
            print(
                f"obs overhead guard: {overhead:.1f}% <= "
                f"{args.max_obs_overhead:.1f}% ceiling "
                "(disabled path is guarded by the pooled-speedup floor)"
            )
        return 0

    degree = args.degree if args.degree is not None else 8
    try:
        with _obs_context(args):
            rows = backend_comparison(
                n=n,
                d=degree,
                seed=args.seed,
                repeat=args.repeat,
                transport=args.transport,
            )
    except ValueError as exc:
        print(f"error: infeasible workload: {exc}", file=sys.stderr)
        return 2
    table_rows = [
        [
            r["kernel"],
            f"{r['set_s'] * 1e3:.3f}",
            f"{r['bitset_s'] * 1e3:.3f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in rows
    ]
    print(
        format_table(
            ["kernel", "set (ms)", "bitset (ms)", "speedup"],
            table_rows,
            title=(
                f"graph backend comparison — medium workload "
                f"(n={n}, d={degree}, seed={args.seed}, "
                f"transport={args.transport})"
            ),
        )
    )
    if args.json:
        _write_bench_json(rows, args.json, "backend_comparison")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    entries = read_trace(path)
    if not entries:
        print(f"error: {path} contains no trace entries", file=sys.stderr)
        return 2
    problems = validate_trace(entries)
    for problem in problems:
        print(f"trace schema: {problem}", file=sys.stderr)
    if args.check and problems:
        return 1
    spans = summarize_spans(entries)
    if spans:
        print(
            format_table(
                ["span", "count", "total (s)", "mean (s)", "max (s)"],
                [
                    [
                        s["span"],
                        str(s["count"]),
                        f"{s['total_s']:.6f}",
                        f"{s['mean_s']:.6f}",
                        f"{s['max_s']:.6f}",
                    ]
                    for s in spans
                ],
                title=f"span summary — {path.name}",
            )
        )
    phases = summarize_phases(entries)
    if phases:
        print(
            format_table(
                ["protocol", "phase", "runs", "bits", "rounds"],
                [
                    [
                        p["protocol"],
                        p["phase"],
                        str(p["runs"]),
                        str(p["bits"]),
                        str(p["rounds"]),
                    ]
                    for p in phases
                ],
                title="per-phase communication (from phase instant events)",
            )
        )
    if args.chrome:
        chrome_path = Path(args.chrome)
        chrome_path.parent.mkdir(parents=True, exist_ok=True)
        chrome_path.write_text(
            json.dumps(to_chrome(entries), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote Chrome trace_event JSON to {chrome_path}")
    if args.json:
        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(
            json.dumps(
                {"spans": spans, "phases": phases, "problems": problems},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote trace summary JSON to {json_path}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    try:
        scenarios, _ = _apply_shard(_select_scenarios(args), args.shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for scenario in scenarios:
        print(scenario.name)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "dispatch":
        return _cmd_dispatch(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "list-scenarios":
        return _cmd_list(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
