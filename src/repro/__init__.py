"""repro — Round and Communication Efficient Graph Coloring (PODC 2025).

A full reproduction of Chang, Mishra, Nguyen & Salim's two-party graph
coloring protocols: the Theorem 1 ``(Δ+1)``-vertex coloring protocol
(``O(n)`` bits, ``O(log log n · log Δ)`` rounds), the Theorem 2 ``(2Δ−1)``-
edge coloring protocol (``O(n)`` bits, ``O(1)`` rounds), the Theorem 3
zero-communication ``(2Δ)``-edge coloring, the baselines they are compared
against, and the Section 6 lower-bound machinery (ZEC games, parallel
repetition, the learning-gadget reduction, and the W-streaming model).

Quickstart::

    import random
    from repro import graphs, core

    rng = random.Random(0)
    g = graphs.random_regular_graph(512, 10, rng)
    part = graphs.partition_random(g, rng)
    result = core.run_vertex_coloring(part, seed=1)
    print(result.total_bits, "bits in", result.rounds, "rounds")
"""

from . import analysis, baselines, coloring, comm, core, graphs, lowerbound, rand, verify

__version__ = "1.1.0"

from . import obs  # noqa: E402  (needs comm imported first)
from . import engine  # noqa: E402  (needs core/graphs/obs imported first)

__all__ = [
    "analysis",
    "baselines",
    "coloring",
    "comm",
    "core",
    "engine",
    "graphs",
    "lowerbound",
    "obs",
    "rand",
    "verify",
    "__version__",
]
