"""Lazy pseudorandom permutations of ``range(m)``.

:class:`FeistelPermutation` evaluates ``perm[i]`` and its inverse
``index_of(x)`` in O(1) per query — no O(m) shuffle — by running a
4-round balanced Feistel network over the smallest even-bit-width domain
``2^{2h} ≥ m`` and *cycle-walking* out-of-range values back into
``[0, m)``.  Because the domain is less than ``4m``, a walk takes under
four rounds in expectation, and the cycle-walked restriction of a
bijection is itself a bijection on ``[0, m)`` (for any ``m``, power of
two or not).

For small ``m`` the constant factors favor just materializing: a
Fisher–Yates table costs about the same as a handful of Feistel queries,
so :func:`make_permutation` returns a :class:`SmallPermutation` below
``SMALL_THRESHOLD`` — built lazily on first access, with the inverse
table built only if ``index_of`` is ever called.  Both back-ends are pure
functions of ``(key, m)``, so either side of a protocol computes the same
permutation without communication.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from . import kernels as _kernels

__all__ = [
    "FeistelPermutation",
    "Permutation",
    "SmallPermutation",
    "make_permutation",
    "SMALL_THRESHOLD",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15

#: Below this size a materialized table beats Feistel cycle-walking.
SMALL_THRESHOLD = 96

#: Feistel rounds — 4 gives full avalanche for a PRF round function.
_ROUNDS = 4

#: Up to 12!, a whole Lehmer code fits one 64-bit word with negligible
#: (< 2^-34) bias, so tiny permutations decode from a single PRF output.
_FACTORIALS = (1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 39916800, 479001600)
_LEHMER_MAX = 12


def _mix(x: int) -> int:
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Permutation:
    """Common interface: ``perm[i]``, ``index_of``, iteration, ``materialize``."""

    __slots__ = ("m",)

    def __init__(self, m: int) -> None:
        if m < 0:
            raise ValueError(f"permutation size must be >= 0, got {m}")
        self.m = m

    def __len__(self) -> int:
        return self.m

    def __getitem__(self, i: int) -> int:
        raise NotImplementedError

    def index_of(self, x: int) -> int:
        """The position ``i`` with ``perm[i] == x`` (the inverse map)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        return (self[i] for i in range(self.m))

    def batch(self, indices: Iterable[int]) -> list[int]:
        """``[perm[i] for i in indices]`` in one call.

        The base implementation is the scalar loop; the Feistel back-end
        overrides it with a vectorized network evaluation (identical
        values — the kernels are pinned against this loop).
        """
        return [self[i] for i in indices]

    def index_of_batch(self, values: Iterable[int]) -> list[int]:
        """``[perm.index_of(x) for x in values]`` in one call."""
        return [self.index_of(x) for x in values]

    def materialize(self) -> list[int]:
        """The full permutation as a list (forces all m evaluations)."""
        return [self[i] for i in range(self.m)]

    def _check(self, i: int) -> None:
        if not 0 <= i < self.m:
            raise IndexError(f"index {i} out of range for permutation of {self.m}")


class FeistelPermutation(Permutation):
    """Format-preserving 4-round Feistel permutation with cycle walking."""

    __slots__ = ("key", "_half_bits", "_half_mask", "_round_keys")

    def __init__(self, key: int, m: int) -> None:
        super().__init__(m)
        self.key = key & _MASK64
        # Smallest balanced domain 2^(2h) >= m; h >= 1 keeps the network
        # non-degenerate for m <= 2.
        bits = max(m - 1, 1).bit_length()
        half_bits = max(1, (bits + 1) // 2)
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1
        self._round_keys = tuple(
            _mix(self.key ^ ((r + 1) * _GOLDEN)) for r in range(_ROUNDS)
        )

    def _encrypt(self, x: int) -> int:
        h, mask = self._half_bits, self._half_mask
        left, right = x >> h, x & mask
        for rk in self._round_keys:
            left, right = right, left ^ (_mix(rk ^ right) & mask)
        return (left << h) | right

    def _decrypt(self, x: int) -> int:
        h, mask = self._half_bits, self._half_mask
        left, right = x >> h, x & mask
        for rk in reversed(self._round_keys):
            left, right = right ^ (_mix(rk ^ left) & mask), left
        return (left << h) | right

    def __getitem__(self, i: int) -> int:
        self._check(i)
        x = self._encrypt(i)
        while x >= self.m:  # cycle-walk: E[steps] < 4 since domain < 4m
            x = self._encrypt(x)
        return x

    def index_of(self, x: int) -> int:
        self._check(x)
        i = self._decrypt(x)
        while i >= self.m:
            i = self._decrypt(i)
        return i

    def batch(self, indices: Iterable[int]) -> list[int]:
        indices = list(indices)
        if (
            _kernels._np is not None
            and len(indices) >= _kernels.FEISTEL_MIN_BATCH
        ):
            for i in indices:
                self._check(i)
            return _kernels.feistel_batch(self, indices, forward=True)
        return [self[i] for i in indices]

    def index_of_batch(self, values: Iterable[int]) -> list[int]:
        values = list(values)
        if (
            _kernels._np is not None
            and len(values) >= _kernels.FEISTEL_MIN_BATCH
        ):
            for x in values:
                self._check(x)
            return _kernels.feistel_batch(self, values, forward=False)
        return [self.index_of(x) for x in values]

    def materialize(self) -> list[int]:
        if _kernels._np is not None and self.m >= _kernels.FEISTEL_MIN_BATCH:
            return _kernels.feistel_batch(self, range(self.m), forward=True)
        return [self[i] for i in range(self.m)]


class SmallPermutation(Permutation):
    """Materialize-on-first-access Fisher–Yates table for small ``m``.

    Construction draws nothing; the forward table is built on the first
    query from the key's own SplitMix64 sequence, and the inverse table
    only if ``index_of`` is ever needed.
    """

    __slots__ = ("key", "_forward", "_inverse")

    def __init__(self, key: int, m: int) -> None:
        super().__init__(m)
        self.key = key & _MASK64
        self._forward: list[int] | None = None
        self._inverse: list[int] | None = None

    def _build(self) -> list[int]:
        m = self.m
        forward = list(range(m))
        if m <= _LEHMER_MAX:
            # One PRF word -> Lehmer code -> Fisher-Yates swap sequence.
            x = (self.key + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            r = ((x ^ (x >> 31)) * _FACTORIALS[m]) >> 64
            for i in range(m - 1, 0, -1):
                r, j = divmod(r, i + 1)
                forward[i], forward[j] = forward[j], forward[i]
        else:
            key = self.key
            for i in range(m - 1, 0, -1):
                x = (key + i * _GOLDEN) & _MASK64
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
                j = ((x ^ (x >> 31)) * (i + 1)) >> 64
                forward[i], forward[j] = forward[j], forward[i]
        self._forward = forward
        return forward

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.m:
            raise IndexError(f"index {i} out of range for permutation of {self.m}")
        forward = self._forward
        return forward[i] if forward is not None else self._build()[i]

    def index_of(self, x: int) -> int:
        if not 0 <= x < self.m:
            raise IndexError(f"index {x} out of range for permutation of {self.m}")
        inverse = self._inverse
        if inverse is None:
            forward = self._forward
            if forward is None:
                forward = self._build()
            inverse = [0] * self.m
            for i, y in enumerate(forward):
                inverse[y] = i
            self._inverse = inverse
        return inverse[x]

    def materialize(self) -> list[int]:
        forward = self._forward
        return list(forward if forward is not None else self._build())


def make_permutation(key: int, m: int) -> Permutation:
    """The permutation of ``range(m)`` keyed by ``key``.

    Picks the back-end by size: a materialized table below
    :data:`SMALL_THRESHOLD`, the lazy Feistel network above it.  The
    *values* differ between back-ends, but the choice is a deterministic
    function of ``m``, so both protocol parties always agree.
    """
    if m <= SMALL_THRESHOLD:
        return SmallPermutation(key, m)
    return FeistelPermutation(key, m)
