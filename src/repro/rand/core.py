"""Counter-based splittable randomness — the :class:`Stream` core.

A :class:`Stream` is a pure function of a 64-bit *key*: the value at
counter ``i`` is ``mix64(key + (i+1)·GOLDEN)``, the SplitMix64 output
function over a Weyl sequence.  Two consequences drive the whole design:

* **Order-independent splitting.**  ``derive(label)`` produces a child
  stream whose key depends only on the parent key and the label — it does
  *not* consume parent state.  Sibling streams are therefore identical no
  matter in which order they are derived, and deriving never perturbs the
  parent's own draws.  (The old ``PublicRandomness.spawn`` consumed the
  parent tape via ``getrandbits``, so sibling sub-protocols depended on
  spawn call order — the bug this module fixes.)
* **Cheap instances.**  Creating or deriving a stream is a handful of
  integer operations — no Mersenne-Twister state initialisation — so
  per-vertex / per-iteration sub-streams cost ~O(1) instead of the
  ~2500-word ``random.Random`` re-seed they used to.

Both parties of a protocol hold streams with equal keys and execute the
same (common-knowledge) schedule, so every draw agrees without
communication — exactly the public-tape contract of the paper, Section
3.1.  All arithmetic is plain 64-bit integer math, so streams are
bit-for-bit reproducible across processes, platforms and Python versions
(pinned by the golden-digest tests).
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Sequence
from typing import TypeVar, Union

from . import kernels as _kernels
from .perm import Permutation, make_permutation
from .sampling import geometric_indices

__all__ = [
    "Label",
    "RandomSource",
    "Stream",
    "as_random",
    "derived_random",
    "mix64",
    "stable_label_hash",
]

T = TypeVar("T")

#: Accepted label atoms for :meth:`Stream.derive` (tuples may nest them).
Label = Union[str, int, tuple]

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: The SplitMix64 Weyl increment (golden-ratio odd constant).
GOLDEN = 0x9E3779B97F4A7C15
#: Domain-separation constants so seeds, labels, and permutation keys can
#: never collide by arithmetic accident.
_SEED_DOMAIN = 0x53454544D0A11CE5
_LABEL_DOMAIN = 0x1ABE1D0_5C0FFEE5
_INT_TAG = 0x1
_STR_TAG = 0x2

# 2^53 as a float divisor / threshold base for unit-interval draws.
_TWO53 = 9007199254740992.0
_TWO53_INT = 1 << 53

# Memoized string-label hashes (labels are protocol identifiers — a small,
# bounded vocabulary; the size cap only guards against pathological use).
_STR_HASH_CACHE: dict[str, int] = {}

# byte value -> its 8 bits as bools, LSB first (for packed fair coins).
_BYTE_BOOLS = tuple(
    tuple(bool((byte >> bit) & 1) for bit in range(8)) for byte in range(256)
)


def mix64(x: int) -> int:
    """SplitMix64's avalanche finalizer: a 64-bit bijective mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_label_hash(label: Label) -> int:
    """A process-independent 64-bit hash of a derivation label.

    Strings hash through CRC32 of the bytes (and their reverse, for the
    high word) — the same core the legacy tape's ``_stable_hash`` used —
    then through the mixer with a type tag; integers mix directly; tuples
    fold their elements.  The tagged mixing means the *values* differ
    from the legacy hash, so everything seeded by label (including the
    engine's default per-scenario seeds) changed once at the migration.
    """
    if isinstance(label, int):
        return mix64((label * GOLDEN) ^ _INT_TAG)
    if isinstance(label, str):
        data = label.encode("utf-8")
        word = (zlib.crc32(data) << 32) | zlib.crc32(data[::-1])
        return mix64(word ^ _STR_TAG)
    if isinstance(label, tuple):
        acc = _LABEL_DOMAIN
        for part in label:
            acc = mix64(acc ^ stable_label_hash(part))
        return acc
    raise TypeError(f"labels must be str, int, or tuples thereof, got {label!r}")


def _seed_key(seed: int) -> int:
    """Map an arbitrary integer seed onto a well-mixed stream key."""
    return mix64((seed & _MASK64) ^ _SEED_DOMAIN)


class Stream:
    """A counter-based splittable random stream (SplitMix64 PRF).

    The stream's *key* identifies it completely; the *counter* is the
    only mutable state and advances one step per drawn 64-bit word.
    ``derive`` splits off child streams without touching the counter.
    """

    __slots__ = ("key", "counter")

    def __init__(self, key: int, counter: int = 0) -> None:
        self.key = key & _MASK64
        self.counter = counter

    @classmethod
    def from_seed(cls, seed: int | None = 0, *labels: Label) -> "Stream":
        """The root stream for an experiment seed, optionally pre-derived.

        ``None`` draws a fresh entropy seed (stdlib convention — the run
        is then *not* reproducible); pass an int for determinism.
        """
        if seed is None:
            seed = random.randrange(1 << 64)
        stream = cls(_seed_key(seed))
        return stream.derive(*labels) if labels else stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(key=0x{self.key:016x}, counter={self.counter})"

    # -- core draws --------------------------------------------------------

    def next64(self) -> int:
        """The next 64-bit word; advances the counter by one."""
        self.counter = counter = self.counter + 1
        x = (self.key + counter * GOLDEN) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        return x ^ (x >> 31)

    def random(self) -> float:
        """A uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next64() >> 11) / _TWO53

    def _below(self, n: int) -> int:
        """A uniform integer in ``[0, n)`` via the multiply-shift map."""
        return (self.next64() * n) >> 64

    # -- splitting ---------------------------------------------------------

    def derive(self, *labels: Label) -> "Stream":
        """A child stream for a labelled sub-task — pure, O(1).

        Does **not** consume parent state: deriving the same labels twice
        yields the same child, and sibling derivations are independent of
        call order.  Use distinct labels for distinct sub-protocols.

        Hot path for per-vertex/per-iteration sub-streams, so the int
        label hash is inlined and str label hashes are memoized (both
        must stay in lockstep with :func:`stable_label_hash`, pinned by
        the golden tests).
        """
        key = self.key ^ _LABEL_DOMAIN
        for label in labels:
            if type(label) is int:
                h = (label * GOLDEN) ^ _INT_TAG
                h &= _MASK64
                h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
                key ^= h ^ (h >> 31)
            elif type(label) is str:
                try:
                    key ^= _STR_HASH_CACHE[label]
                except KeyError:
                    h = stable_label_hash(label)
                    if len(_STR_HASH_CACHE) < 4096:
                        _STR_HASH_CACHE[label] = h
                    key ^= h
            else:
                key ^= stable_label_hash(label)
            key = ((key ^ (key >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            key = ((key ^ (key >> 27)) * 0x94D049BB133111EB) & _MASK64
            key ^= key >> 31
        return Stream(key)

    def derive_random(self, *labels: Label) -> random.Random:
        """A labelled private ``random.Random`` (for local solvers only).

        Protocol-visible draws should stay on streams; this exists for
        consumers like the list-coloring search that want the stdlib
        sampling helpers on a reproducibly derived seed.
        """
        return random.Random(self.derive(*labels).key)

    # -- scalar draws ------------------------------------------------------

    def coin(self, p: float = 0.5) -> bool:
        """One coin flip with success probability ``p``."""
        return (self.next64() >> 11) < int(p * _TWO53)

    def uniform_int(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._below(high - low + 1)

    def choice(self, items: Sequence[T]) -> T:
        """A uniform element of a non-empty sequence."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return items[self._below(len(items))]

    # -- batch draws -------------------------------------------------------

    def coins(self, k: int, p: float = 0.5) -> list[bool]:
        """``k`` coin flips in one call.

        Fair coins (``p = 0.5``) are packed 64 to a PRF word — the word's
        bits unpacked LSB-first through a byte table, consuming
        ``ceil(k/64)`` counter steps; biased coins cost one word per flip
        like :meth:`coin`.  Large batches dispatch to the numpy kernels
        when available (:data:`repro.rand.kernels.MIN_BATCH` for biased,
        :data:`~repro.rand.kernels.FAIR_MIN_BATCH` for fair coins) — the
        output (values and words consumed) is bit-for-bit identical
        either way.
        """
        if k <= 0:
            return []
        if _kernels._np is not None:
            if p == 0.5:
                if k >= _kernels.FAIR_MIN_BATCH:
                    out, used = _kernels.fair_coins(self.key, self.counter, k)
                    self.counter += used
                    return out
            elif k >= _kernels.MIN_BATCH:
                threshold = int(p * _TWO53)
                if 0 <= threshold < (1 << 64):
                    out, used = _kernels.biased_coins(
                        self.key, self.counter, k, threshold
                    )
                    self.counter += used
                    return out
        key, counter = self.key, self.counter
        out: list[bool] = []
        if p == 0.5:
            byte_bools = _BYTE_BOOLS
            extend = out.extend
            words = (k + 63) >> 6
            for i in range(counter + 1, counter + words + 1):
                x = (key + i * GOLDEN) & _MASK64
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
                for byte in (x ^ (x >> 31)).to_bytes(8, "little"):
                    extend(byte_bools[byte])
            self.counter = counter + words
            del out[k:]
            return out
        threshold = int(p * _TWO53)
        append = out.append
        for i in range(counter + 1, counter + k + 1):
            x = (key + i * GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            append(((x ^ (x >> 31)) >> 11) < threshold)
        self.counter = counter + k
        return out

    def ints(self, k: int, low: int, high: int) -> list[int]:
        """``k`` uniform integers in ``[low, high]`` inclusive, batched."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        if k <= 0:
            return []
        width = high - low + 1
        if (
            _kernels._np is not None
            and k >= _kernels.MIN_BATCH
            and width < (1 << 64)
        ):
            out, used = _kernels.ints(self.key, self.counter, k, low, width)
            self.counter += used
            return out
        key, counter = self.key, self.counter
        out = []
        append = out.append
        for i in range(counter + 1, counter + k + 1):
            x = (key + i * GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            append(low + (((x ^ (x >> 31)) * width) >> 64))
        self.counter = counter + k
        return out

    # -- structured draws --------------------------------------------------

    def permutation(self, m: int) -> Permutation:
        """A lazy uniform-ish permutation of ``range(m)``.

        Consumes one counter word to key the permutation; positions are
        computed on demand (Feistel cycle-walking for large ``m``,
        materialize-on-first-access below the small-``m`` threshold), so
        reading a few positions never costs an O(m) shuffle.
        """
        return make_permutation(self.next64(), m)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """A uniform shuffle of ``items`` (original left untouched)."""
        out = list(items)
        for i in range(len(out) - 1, 0, -1):
            j = self._below(i + 1)
            out[i], out[j] = out[j], out[i]
        return out

    def sample_indices(self, m: int, p: float) -> Sequence[int]:
        """Sorted indices of a Bernoulli(``p``) subset of ``range(m)``.

        Sparse draws use geometric gap-skipping — O(p·m) expected work —
        and ``p ≥ 1`` returns ``range(m)`` without consuming any draws
        (both parties skip identically, so the tape stays in lockstep).
        """
        if p >= 1.0:
            return range(m)
        if p <= 0.0 or m <= 0:
            return ()
        if _kernels._np is not None and p * m >= _kernels.MIN_BATCH:
            out, used = _kernels.geometric(self.key, self.counter, m, p)
            self.counter += used
            return out
        return geometric_indices(self, m, p)

    def sample_mask(self, m: int, p: float) -> list[bool]:
        """Dense boolean mask form of :meth:`sample_indices`."""
        if p >= 1.0:
            return [True] * m
        if p <= 0.0 or m <= 0:
            return [False] * m
        indices = self.sample_indices(m, p)
        if (
            _kernels._np is not None
            and m >= _kernels.MIN_BATCH
            and 4 * len(indices) >= m
        ):
            # Dense enough that the vectorized fill beats the pure loop;
            # sparse masks keep the [False]*m + spot-assign build, which
            # is near-optimal already.
            return _kernels.dense_mask(m, indices)
        mask = [False] * m
        for i in indices:
            mask[i] = True
        return mask


#: Anything the graph generators / partitioners accept as a randomness
#: source: a :class:`Stream` (adapted via :func:`as_random`) or a bare
#: stdlib ``random.Random``.
RandomSource = Union[Stream, random.Random]


def as_random(rng: RandomSource) -> random.Random:
    """Adapt a :class:`Stream` (or pass through a ``random.Random``).

    The one-line bridge that lets every ``rng``-taking public signature —
    the graph generators and partitioners — accept either substrate.  A
    ``Stream`` maps to a labelled private ``random.Random`` (the
    ``"as-random"`` derivation), so adapting never consumes stream state
    and adapting the same stream twice yields identical generators.
    """
    if isinstance(rng, Stream):
        return rng.derive_random("as-random")
    if isinstance(rng, random.Random):
        return rng
    raise TypeError(
        f"expected a Stream or random.Random, got {type(rng).__name__}"
    )


def derived_random(seed: int | None, *labels: Label) -> random.Random:
    """A ``random.Random`` on the stream key space: ``from_seed → derive``.

    The engine's per-coordinate seeding helper: order-independent in the
    label path and decoupled from every other labelled stream of the same
    seed.
    """
    return Stream.from_seed(seed).derive_random(*labels)
