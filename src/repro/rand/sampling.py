"""Sparse Bernoulli sampling via geometric gap-skipping.

Drawing a Bernoulli(``p``) subset of ``range(m)`` coin-by-coin costs
O(m) regardless of how sparse the subset is.  The classical alternative
walks the *gaps*: the number of failures before the next success is
geometric, ``G = ⌊ln(U) / ln(1-p)⌋`` for ``U`` uniform on ``(0, 1]``, so
the expected work is O(p·m + 1).  The resulting subset has exactly the
i.i.d. Bernoulli distribution — only the number of PRF words consumed
differs — which the distribution-equivalence tests pin down against a
dense reference sampler.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .core import Stream

__all__ = ["geometric_indices"]

_TWO53 = 9007199254740992.0


def geometric_indices(stream: "Stream", m: int, p: float) -> list[int]:
    """Sorted included indices of a Bernoulli(``p``) draw over ``range(m)``.

    Requires ``0 < p < 1`` (callers fast-path the endpoints).  Consumes
    one 64-bit word per included index plus one for the final overshoot.
    """
    inv_log_q = 1.0 / math.log1p(-p)
    out: list[int] = []
    append = out.append
    next64 = stream.next64
    i = 0
    while True:
        # U uniform on (0, 1]: shift into [0, 2^53) then add 1 ulp's worth.
        u = ((next64() >> 11) + 1) / _TWO53
        i += int(math.log(u) * inv_log_q)
        if i >= m:
            return out
        append(i)
        i += 1
