"""``repro.rand`` — counter-based splittable randomness.

The randomness substrate under every protocol in the library:

* :class:`Stream` — a SplitMix64 counter-mode PRF keyed by
  ``(seed, label path)``; ``derive(label)`` splits off independent child
  streams in O(1) *without consuming parent state*, so sibling
  sub-protocols never depend on derivation order (and parallel or
  sharded sweeps stay reproducible).
* Lazy permutations (:func:`make_permutation`) — ``perm[i]`` and
  ``perm.index_of(x)`` on demand via a Feistel network with cycle
  walking; no O(m) shuffle when only a few positions are read.
* Geometric-skip sparse sampling (:meth:`Stream.sample_indices`) and
  batch draw primitives (:meth:`Stream.coins`, :meth:`Stream.ints`).
* :class:`LegacyTape` — the old ``random.Random`` tape behind the new
  API, kept solely as the baseline for ``python -m repro bench --rand``.

Every call site in the library speaks this API directly (the deprecated
``PublicRandomness`` compatibility shim has been retired).
"""

from . import kernels
from .core import (
    Label,
    RandomSource,
    Stream,
    as_random,
    derived_random,
    mix64,
    stable_label_hash,
)
from .legacy import LegacyTape
from .perm import (
    SMALL_THRESHOLD,
    FeistelPermutation,
    Permutation,
    SmallPermutation,
    make_permutation,
)
from .sampling import geometric_indices

__all__ = [
    "FeistelPermutation",
    "Label",
    "LegacyTape",
    "Permutation",
    "RandomSource",
    "SMALL_THRESHOLD",
    "SmallPermutation",
    "Stream",
    "as_random",
    "derived_random",
    "geometric_indices",
    "kernels",
    "make_permutation",
    "mix64",
    "stable_label_hash",
]
