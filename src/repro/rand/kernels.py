"""Vectorized numpy kernels for the :class:`~repro.rand.Stream` hot paths.

The pure-Python draw loops in :mod:`repro.rand.core` / :mod:`.perm` /
:mod:`.sampling` are the **golden reference**; every kernel here must
produce byte-identical output (values *and* words consumed) and is pinned
against them by golden digests plus randomized cross-backend fuzz in
``tests/test_rand_kernels.py``.  The kernels only change *how fast* a
batch is drawn, never *what* is drawn, so a sweep's artifacts stay
canonical whether or not numpy is importable.

Gating: if numpy is missing — or ``REPRO_NO_NUMPY=1`` is set — ``_np``
stays ``None`` and every dispatch site falls back to the pure loops.
Dispatch is size-thresholded (:data:`MIN_BATCH`, :data:`FEISTEL_MIN_BATCH`)
because tiny batches are dominated by array-construction overhead.

Bit-for-bit subtleties the implementations guard:

* uint64 wraparound is the *desired* semantics (SplitMix64 is mod-2^64
  arithmetic); ``np.errstate(over="ignore")`` silences the warnings.
* The Lemire ``ints`` map needs the high 64 bits of a 64×64 product;
  numpy has no 128-bit integers, so :func:`_mulhi` decomposes into 32-bit
  halves (every intermediate provably fits uint64).
* Word→bit unpacking goes through ``astype("<u8")`` so the byte order
  matches ``int.to_bytes(8, "little")`` on any host endianness.
* ``np.log`` (SIMD) may differ from ``math.log`` (libm) by a few ulps.
  For geometric gaps the float is truncated to an integer, so only draws
  *suspiciously close* to an integer boundary can disagree; those few are
  recomputed with ``math.log`` — the reference — before truncation.
"""

from __future__ import annotations

import math
import os

__all__ = [
    "FAIR_MIN_BATCH",
    "FEISTEL_MIN_BATCH",
    "MIN_BATCH",
    "available",
    "disabled",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_TWO53 = 9007199254740992.0

#: Batches below this size stay on the pure-Python loops: array setup and
#: the final ``tolist`` overhead beat the vector win for small k.  At the
#: threshold the kernels measure ~3x on one-word-per-draw ops (biased
#: coins, ints) and grow to ~10-30x by a few thousand draws.
MIN_BATCH = 128

#: Fair coins are already packed 64 to a word in pure Python, so the
#: kernel only wins once the word batch itself is large.
FAIR_MIN_BATCH = 2048

#: Feistel batch evaluation threshold: the cycle-walk loop costs a few
#: fancy-indexing passes per call, so small query sets stay scalar.
FEISTEL_MIN_BATCH = 256


def _load_numpy():
    """Import numpy unless the escape hatch ``REPRO_NO_NUMPY=1`` is set."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_np = _load_numpy()


def available() -> bool:
    """Whether the numpy backend is importable and not disabled."""
    return _np is not None


class disabled:
    """Context manager forcing the pure-Python paths (tests / benchmarks)."""

    def __enter__(self):
        global _np
        self._saved = _np
        _np = None
        return self

    def __exit__(self, *exc):
        global _np
        _np = self._saved
        return False


# ---------------------------------------------------------------------------
# SplitMix64 word generation
# ---------------------------------------------------------------------------


def _mix_inplace(np, x):
    """The SplitMix64 avalanche over a uint64 array, in place."""
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


def _words(np, key: int, counter: int, k: int):
    """PRF words at counters ``counter+1 .. counter+k`` as a uint64 array."""
    idx = np.arange(counter + 1, counter + k + 1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = np.uint64(key) + idx * np.uint64(_GOLDEN)
    return _mix_inplace(np, x)


def _mulhi(np, x, mult: int):
    """High 64 bits of ``x * mult`` per element (the Lemire range map).

    32-bit schoolbook decomposition; every intermediate fits uint64
    (checked in the tests across the extreme widths).
    """
    c32 = np.uint64(32)
    m32 = np.uint64(0xFFFFFFFF)
    y0 = np.uint64(mult & 0xFFFFFFFF)
    y1 = np.uint64(mult >> 32)
    x0 = x & m32
    x1 = x >> c32
    with np.errstate(over="ignore"):
        lo_lo = x0 * y0
        mid1 = x1 * y0 + (lo_lo >> c32)
        mid2 = x0 * y1 + (mid1 & m32)
        return x1 * y1 + (mid1 >> c32) + (mid2 >> c32)


# ---------------------------------------------------------------------------
# batch draw kernels (mirror Stream.coins / Stream.ints / sampling)
# ---------------------------------------------------------------------------


def fair_coins(key: int, counter: int, k: int) -> tuple[list[bool], int]:
    """``k`` fair coins, 64 packed per word — mirrors ``Stream.coins(k, 0.5)``.

    Returns ``(flips, words_consumed)``.
    """
    np = _np
    nwords = (k + 63) >> 6
    w = _words(np, key, counter, nwords)
    # "<u8" fixes the byte order to little-endian before the uint8 view, so
    # bit i of word j lands at flat position 64*j + i exactly like the pure
    # path's to_bytes(8, "little") + LSB-first byte table.
    bits = np.unpackbits(w.astype("<u8").view(np.uint8), bitorder="little")
    return bits[:k].astype(bool).tolist(), nwords


def biased_coins(
    key: int, counter: int, k: int, threshold: int
) -> tuple[list[bool], int]:
    """``k`` biased coins at one word each — mirrors ``Stream.coins(k, p)``.

    ``threshold`` is the caller-computed ``int(p * 2**53)``; the caller
    guarantees ``0 <= threshold < 2**64`` (out-of-range p falls back to
    the pure loop, which handles it with bigint compares).
    """
    np = _np
    w = _words(np, key, counter, k)
    return ((w >> np.uint64(11)) < np.uint64(threshold)).tolist(), k


def ints(
    key: int, counter: int, k: int, low: int, width: int
) -> tuple[list[int], int]:
    """``k`` uniform ints in ``[low, low+width)`` — mirrors ``Stream.ints``.

    Caller guarantees ``1 <= width < 2**64``.
    """
    np = _np
    w = _words(np, key, counter, k)
    hi = _mulhi(np, w, width)
    if width <= (1 << 63) and -(1 << 63) <= low and low + width <= (1 << 63):
        # Everything representable in int64: add in numpy, one C tolist.
        out = (hi.astype(np.int64) + np.int64(low)).tolist()
    else:
        # Extreme ranges: exact Python adds on the (exact) uint64 values.
        out = [low + v for v in hi.tolist()]
    return out, k


def geometric(key: int, counter: int, m: int, p: float) -> tuple[list[int], int]:
    """Geometric gap-skipping Bernoulli sample — mirrors ``geometric_indices``.

    Caller guarantees ``0 < p < 1`` and ``m > 0``.  Returns the sorted
    included indices and the words consumed (one per index + the final
    overshoot word).
    """
    np = _np
    inv_log_q = 1.0 / math.log1p(-p)
    out: list[int] = []
    i = 0
    consumed = 0
    while True:
        expect = p * (m - i)
        batch = max(32, int(expect + 8.0 * math.sqrt(expect + 1.0)) + 8)
        w = _words(np, key, counter + consumed, batch)
        # u on (0, 1] exactly as the pure path: (word >> 11) < 2^53 is
        # exactly representable, +1.0 and the power-of-two divide are exact.
        u = ((w >> np.uint64(11)).astype(np.float64) + 1.0) / _TWO53
        x = np.log(u) * inv_log_q
        # Gaps beyond m overshoot regardless; clamping keeps int64 safe for
        # pathologically tiny p without changing the cutoff position.
        x = np.minimum(x, float(m))
        gaps = x.astype(np.int64)
        # ulp fixup: np.log and math.log may round differently; only draws
        # within ~1e-12 relative of an integer boundary can truncate
        # differently, and those are recomputed with the reference libm.
        frac = x - np.floor(x)
        tol = 1e-12 * (np.abs(x) + 1.0)
        suspicious = np.nonzero((frac < tol) | (1.0 - frac < tol))[0]
        for j in suspicious.tolist():
            gaps[j] = min(int(math.log(float(u[j])) * inv_log_q), m)
        positions = np.cumsum(gaps) + np.arange(len(gaps), dtype=np.int64) + i
        hits = np.nonzero(positions >= m)[0]
        if hits.size:
            cut = int(hits[0])
            out.extend(positions[:cut].tolist())
            return out, consumed + cut + 1
        out.extend(positions.tolist())
        i = int(positions[-1]) + 1
        consumed += batch


def dense_mask(m: int, indices) -> list[bool]:
    """Dense boolean mask over ``range(m)`` from sorted included indices."""
    np = _np
    mask = np.zeros(m, dtype=bool)
    if len(indices):
        mask[np.asarray(indices, dtype=np.int64)] = True
    return mask.tolist()


# ---------------------------------------------------------------------------
# batched Feistel evaluation (mirrors FeistelPermutation encrypt/decrypt)
# ---------------------------------------------------------------------------


def _feistel_rounds(np, x, half_bits: int, half_mask: int, round_keys, forward: bool):
    """One full pass of the 4-round network over a uint64 array."""
    h = np.uint64(half_bits)
    mask = np.uint64(half_mask)
    left = x >> h
    right = x & mask
    if forward:
        for rk in round_keys:
            with np.errstate(over="ignore"):
                f = _mix_inplace(np, np.uint64(rk) ^ right) & mask
            left, right = right, left ^ f
    else:
        for rk in reversed(round_keys):
            with np.errstate(over="ignore"):
                f = _mix_inplace(np, np.uint64(rk) ^ left) & mask
            left, right = right ^ f, left
    return (left << h) | right


def feistel_batch(perm, xs, forward: bool) -> list[int]:
    """Evaluate ``perm[x]`` (or ``index_of``) for every ``x`` in ``xs``.

    Cycle-walks the shrinking out-of-range subset exactly like the scalar
    loop: a walked value re-enters the network until it lands in
    ``[0, m)``, and walks are independent per element, so the vectorized
    result is identical by construction.
    """
    np = _np
    m = perm.m
    vals = np.asarray(list(xs), dtype=np.uint64)
    out = np.zeros(len(vals), dtype=np.int64)
    pending = np.arange(len(vals), dtype=np.int64)
    h, mask, keys = perm._half_bits, perm._half_mask, perm._round_keys
    while pending.size:
        vals = _feistel_rounds(np, vals, h, mask, keys, forward)
        done = vals < np.uint64(m)
        out[pending[done]] = vals[done].astype(np.int64)
        keep = ~done
        pending = pending[keep]
        vals = vals[keep]
    return out.tolist()
