"""The pre-``repro.rand`` randomness substrate, kept for benchmarking.

:class:`LegacyTape` reproduces the original ``random.Random``-backed
public tape — eager O(m) permutations with an eager inverse table, dense
O(m) Bernoulli masks, one method call per coin, and stateful ``derive``
(a fresh Mersenne-Twister seeded per sub-protocol, consuming parent
state exactly like the old ``PublicRandomness.spawn``) — behind the
*new* :class:`repro.rand.Stream` API, so the migrated protocols can run
unmodified on either substrate.  ``python -m repro bench --rand`` uses
it as the baseline for the stream speedup table; nothing else should.

Deliberately inherits the old spawn order-dependence: it is the
"before" picture, bug and all.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

from .core import Label, stable_label_hash
from .perm import Permutation

__all__ = ["LegacyTape"]

T = TypeVar("T")


class _EagerPermutation(Permutation):
    """A shuffled table with an eagerly built inverse dict (old cost model)."""

    __slots__ = ("_forward", "_inverse")

    def __init__(self, forward: list[int]) -> None:
        super().__init__(len(forward))
        self._forward = forward
        self._inverse = {x: i for i, x in enumerate(forward)}

    def __getitem__(self, i: int) -> int:
        return self._forward[i]

    def index_of(self, x: int) -> int:
        return self._inverse[x]

    def materialize(self) -> list[int]:
        return list(self._forward)


class LegacyTape:
    """``random.Random`` tape exposing the :class:`~repro.rand.Stream` API."""

    __slots__ = ("_rng",)

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)

    # -- splitting (stateful, order-dependent — the old behavior) ----------

    def derive(self, *labels: Label) -> "LegacyTape":
        child_seed = self._rng.getrandbits(64) ^ stable_label_hash(labels)
        return LegacyTape(child_seed)

    def derive_random(self, *labels: Label) -> random.Random:
        return random.Random(self._rng.getrandbits(64) ^ stable_label_hash(labels))

    # -- draws (eager/dense, the old cost model) ---------------------------

    def next64(self) -> int:
        return self._rng.getrandbits(64)

    def random(self) -> float:
        return self._rng.random()

    def coin(self, p: float = 0.5) -> bool:
        return self._rng.random() < p

    def coins(self, k: int, p: float = 0.5) -> list[bool]:
        rnd = self._rng.random
        return [rnd() < p for _ in range(k)]

    def uniform_int(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def ints(self, k: int, low: int, high: int) -> list[int]:
        randint = self._rng.randint
        return [randint(low, high) for _ in range(k)]

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def permutation(self, m: int) -> Permutation:
        forward = list(range(m))
        self._rng.shuffle(forward)
        return _EagerPermutation(forward)

    def sample_mask(self, m: int, p: float) -> list[bool]:
        if p >= 1.0:
            return [True] * m
        if p <= 0.0:
            return [False] * m
        rnd = self._rng.random
        return [rnd() < p for _ in range(m)]

    def sample_indices(self, m: int, p: float) -> Sequence[int]:
        # No saturation fast path on purpose: the old tape always built
        # the dense mask and scanned it, even at p = 1.
        mask = self.sample_mask(m, p)
        return [i for i in range(m) if mask[i]]
