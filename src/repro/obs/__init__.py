"""Out-of-band observability: tracing + metrics with a no-op default.

The contract, in order of importance:

1. **Canonical artifacts never change.**  Observers write only to their
   own trace/metrics files; no record, journal entry, or ``sweep.json``
   byte depends on whether observability is on.  The integration tests
   pin ``sweep.json`` byte-identical traced vs untraced, for serial
   sweeps and for dispatch runs with injected worker kills.
2. **Disabled is (almost) free.**  The default observer is
   :data:`NULL_OBSERVER` (``enabled = False``); the engine's
   instrumentation points live on per-scenario cold paths, and the two
   comm hot-path sites go through :mod:`repro.comm.telemetry`'s single
   module-flag branch.  The CI bench guard holds the count-transport
   Theorem 1 path to its existing speedup floor against the frozen,
   never-instrumented ``engine/_legacy_thm1`` baseline, plus a
   ``--max-obs-overhead`` ceiling on the enabled path.
3. **One switch.**  :func:`observing` installs an :class:`Observer`
   (tracer and/or metrics registry), enables the comm telemetry
   counters, and on exit folds telemetry + wall-clock into the metrics
   document, writes it, and restores the previous observer.

Layering: ``obs`` imports only the stdlib and
:mod:`repro.comm.telemetry`; the engine and dispatcher call
:func:`get_observer` at their instrumentation points.  Nothing anywhere
imports ``obs`` inside a per-round loop.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, ContextManager, Iterator

from ..comm import telemetry
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WALL_CLOCK,
    WallClock,
)
from .trace import (
    Tracer,
    read_trace,
    summarize_phases,
    summarize_spans,
    to_chrome,
    trace_spans,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "Tracer",
    "WALL_CLOCK",
    "WallClock",
    "get_observer",
    "observing",
    "read_trace",
    "set_observer",
    "summarize_phases",
    "summarize_spans",
    "to_chrome",
    "trace_spans",
    "validate_trace",
]

#: Shared no-op context so the disabled ``span`` path allocates nothing.
_NULL_CTX: ContextManager[None] = nullcontext()


class NullObserver:
    """The default observer: every operation is an allocation-free no-op.

    Instrumentation sites that do real work (building attr dicts,
    reading transcript phases) guard on :attr:`enabled` first, so the
    off path costs one attribute load and a branch per *scenario-level*
    operation — and nothing at all per round.
    """

    enabled = False
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        return _NULL_CTX

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_transcript(self, protocol: str, transcript: Any) -> None:
        pass


class Observer(NullObserver):
    """An active observer feeding a tracer and/or a metrics registry."""

    enabled = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        if self.tracer is None:
            return _NULL_CTX
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    def count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def record_transcript(self, protocol: str, transcript: Any) -> None:
        """Report one finished run's ledger: totals plus per-phase stats.

        Runs *after* the protocol returns, reading the transcript the
        run produced anyway — zero cost inside the protocol loops.
        Counters aggregate across the sweep; the tracer gets one
        ``phase`` instant per transcript phase, attributed to the
        enclosing protocol span.
        """
        summary = transcript.summary()
        if self.metrics is not None:
            prefix = f"protocol.{protocol}"
            self.count(f"{prefix}.runs")
            self.count(f"{prefix}.total_bits", summary["total_bits"])
            self.count(f"{prefix}.rounds", summary["rounds"])
            self.count(f"{prefix}.messages", summary["messages"])
            for phase, stats in sorted(transcript.phases.items()):
                self.count(f"{prefix}.phase.{phase}.bits", stats.total_bits)
                self.count(f"{prefix}.phase.{phase}.rounds", stats.rounds)
        if self.tracer is not None:
            for phase, stats in sorted(transcript.phases.items()):
                self.tracer.event(
                    "phase",
                    protocol=protocol,
                    phase=phase,
                    bits=stats.total_bits,
                    rounds=stats.rounds,
                )


#: The module-wide default: observability off.
NULL_OBSERVER = NullObserver()

_observer: NullObserver = NULL_OBSERVER


def get_observer() -> NullObserver:
    """The currently installed observer (the null one by default)."""
    return _observer


def set_observer(observer: NullObserver) -> NullObserver:
    """Install ``observer`` as current; returns the one it replaced.

    Also toggles the comm telemetry flag to match, so the gated
    hot-path counters are live exactly while a real observer is.
    """
    global _observer
    previous = _observer
    _observer = observer
    if observer.enabled:
        telemetry.enable()
    else:
        telemetry.disable()
    return previous


@contextmanager
def observing(
    trace: str | Path | None = None,
    metrics: str | Path | None = None,
) -> Iterator[Observer]:
    """Install an observer for the block; write its outputs on exit.

    ``trace`` names the JSONL trace file (created immediately, flushed
    per event); ``metrics`` names the metrics JSON document (written on
    exit, with the comm telemetry snapshot and the wall-clock table
    folded in).  Either may be omitted.  Comm telemetry counters are
    reset on entry so the document describes this block alone; the
    previous observer is restored on every exit path.
    """
    tracer = Tracer(trace) if trace is not None else None
    registry = MetricsRegistry() if metrics is not None else None
    observer = Observer(tracer=tracer, metrics=registry)
    telemetry.reset()
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
        if registry is not None:
            registry.extra["comm"] = telemetry.snapshot()
            registry.extra["wall_time_s"] = WALL_CLOCK.snapshot()
            registry.write(Path(metrics))
        if tracer is not None:
            tracer.close()
