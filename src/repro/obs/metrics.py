"""Metrics registry (counters / gauges / histograms) + wall-clock store.

The registry is the out-of-band sink the layers report into when an
observer is active: per-phase bits and rounds from the transcript
ledger, intern/pool counters from :mod:`repro.comm.telemetry`, retry and
merge counters from the dispatcher, wall-time distributions from the
runner.  ``snapshot()`` is deterministic (sorted keys throughout) and
``write()`` emits one pretty-printed JSON document — never anything the
canonical ``sweep.json`` path reads, which is what keeps observability
strictly out-of-band.

:class:`WallClock` is the one always-on piece.  PR 4 established that
``wall_time_s`` must never enter canonical records (it made merges
non-deterministic); this store is where the timing now lives instead.
:func:`repro.engine.run_scenario` records into the module-level
:data:`WALL_CLOCK` unconditionally — a dict update per scenario run,
nowhere near any hot loop — and the console/markdown tables read from
it.  It is per-process; pool sweeps re-home worker timings on the
coordinator via the elapsed value each rep task returns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WALL_CLOCK",
    "WallClock",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/total/min/max/mean).

    Deliberately bucket-free: the engine's distributions (wall times,
    shard sizes) are low-volume, and the summary stays deterministic
    and tiny regardless of how many values stream in.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.total / self.count, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with a deterministic dump."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Free-form extra sections merged into the snapshot (e.g. the
        #: comm telemetry counters, the wall-clock table).
        self.extra: dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def snapshot(self) -> dict[str, Any]:
        """The registry as one sorted, JSON-ready document."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
            **{key: self.extra[key] for key in sorted(self.extra)},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize :meth:`snapshot` to ``path`` (parents created)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"
        )
        return out


class WallClock:
    """Per-scenario wall-time accumulator (the single source of truth).

    Keyed by scenario name; each :meth:`record` adds one run's elapsed
    seconds.  Replicated scenarios accumulate one sample per rep, so
    :meth:`total` is the scenario's summed wall time — exactly the
    number the old in-record ``wall_time_s`` summing produced, now held
    out-of-band where it can never perturb canonical documents.
    """

    def __init__(self) -> None:
        self._total: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._last: dict[str, float] = {}

    def record(self, name: str, elapsed: float) -> None:
        """Add one run's elapsed seconds under ``name``."""
        self._total[name] = self._total.get(name, 0.0) + elapsed
        self._count[name] = self._count.get(name, 0) + 1
        self._last[name] = elapsed

    def total(self, name: str) -> float | None:
        """Summed seconds across recorded runs (None if never recorded)."""
        total = self._total.get(name)
        return None if total is None else round(total, 6)

    def count(self, name: str) -> int:
        return self._count.get(name, 0)

    def last(self, name: str) -> float | None:
        """The most recent single-run elapsed under ``name``."""
        last = self._last.get(name)
        return None if last is None else round(last, 6)

    def discard(self, names: Iterable[str]) -> None:
        """Forget accumulated samples for ``names`` (a sweep starting).

        Called at the top of every sweep for the scenarios it is about
        to run, so a process that sweeps twice (tests, notebooks)
        reports each sweep's own timings rather than a running total.
        """
        for name in names:
            self._total.pop(name, None)
            self._count.pop(name, None)
            self._last.pop(name, None)

    def clear(self) -> None:
        self._total.clear()
        self._count.clear()
        self._last.clear()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """All timings as a sorted JSON-ready table."""
        return {
            name: {
                "count": self._count[name],
                "total_s": round(self._total[name], 6),
                "mean_s": round(self._total[name] / self._count[name], 6),
            }
            for name in sorted(self._total)
        }


#: Process-global wall-clock store the runner records into and the table
#: renderers read from.  Always on (it is one dict update per scenario
#: run); never serialized into canonical documents.
WALL_CLOCK = WallClock()
