"""Span/event tracer: flushed JSONL, nested spans, Chrome export.

One :class:`Tracer` writes one trace file.  The format is line-oriented
JSON — one event per line, flushed as written, so a crashed or killed
run leaves a readable trace up to the instant of death (the same
torn-tail discipline as the sweep journal):

``{"ev": "B", "id": 3, "parent": 2, "name": "rep", "ts": 0.0123, "attrs": {...}}``
    Span begin.  ``id`` is unique within the trace; ``parent`` is the
    enclosing open span (absent at top level); ``ts`` is seconds since
    the tracer was created (monotonic clock).
``{"ev": "E", "id": 3, "name": "rep", "ts": 0.0456}``
    Span end.  Spans close LIFO — the span model is a stack, matching
    the sweep → scenario → rep → protocol nesting the engine emits.
``{"ev": "I", "parent": 3, "name": "phase", "ts": 0.02, "attrs": {...}}``
    Instant event (no duration), e.g. one protocol phase's ledger
    totals, attributed to the enclosing span.

Readers (:func:`read_trace`) tolerate a torn final line and skip
undecodable interior lines, mirroring ``dispatch.progress.JournalTail``;
:func:`validate_trace` checks the structural schema (spans nest LIFO,
ids unique, parents open at emission); :func:`trace_spans` /
:func:`summarize_spans` / :func:`summarize_phases` aggregate for the
``repro trace`` CLI; :func:`to_chrome` converts to the Chrome
``trace_event`` JSON that ``chrome://tracing`` / Perfetto load directly.

Fork safety: a tracer created before a ``multiprocessing`` fork is
inherited by workers along with its open file handle.  Every write path
checks the creating PID and turns into a no-op in a child, so worker
processes can never interleave bytes into the coordinator's trace —
pool sweeps trace scheduling from the coordinator's vantage point, and
full protocol-depth traces come from serial (``--jobs 1``) runs.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "Tracer",
    "read_trace",
    "summarize_phases",
    "summarize_spans",
    "to_chrome",
    "trace_spans",
    "validate_trace",
]


class Tracer:
    """Writes one flushed-JSONL trace file (see the module docstring)."""

    def __init__(
        self,
        path: str | Path,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._t0 = clock()
        self._pid = os.getpid()
        self._file = self.path.open("w")
        self._stack: list[int] = []
        self._next_id = 1

    def _now(self) -> float:
        return round(self._clock() - self._t0, 6)

    def _emit(self, entry: dict[str, Any]) -> None:
        if self._file.closed:
            return  # closed mid-span: spans unwinding after close stay quiet
        self._file.write(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._file.flush()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Open a nested span for the duration of the ``with`` block."""
        if os.getpid() != self._pid:
            yield  # forked child: never touch the parent's file
            return
        span_id = self._next_id
        self._next_id += 1
        begin: dict[str, Any] = {"ev": "B", "id": span_id, "name": name,
                                 "ts": self._now()}
        if self._stack:
            begin["parent"] = self._stack[-1]
        if attrs:
            begin["attrs"] = attrs
        self._emit(begin)
        self._stack.append(span_id)
        try:
            yield
        finally:
            self._stack.pop()
            self._emit(
                {"ev": "E", "id": span_id, "name": name, "ts": self._now()}
            )

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an instant event attributed to the innermost open span."""
        if os.getpid() != self._pid:
            return
        entry: dict[str, Any] = {"ev": "I", "name": name, "ts": self._now()}
        if self._stack:
            entry["parent"] = self._stack[-1]
        if attrs:
            entry["attrs"] = attrs
        self._emit(entry)

    def close(self) -> None:
        """Close the trace file (only in the creating process)."""
        if os.getpid() == self._pid and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# reading / validation
# ---------------------------------------------------------------------------


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a trace file's complete lines (torn-tail tolerant).

    Bytes past the last newline (a line torn by a kill mid-write) are
    ignored, and undecodable complete lines are skipped — the same
    policy ``JournalTail`` applies to shard journals, so a trace from a
    killed worker attempt is still loadable.
    """
    data = Path(path).read_bytes()
    complete, sep, _rest = data.rpartition(b"\n")
    if not sep:
        return []
    entries = []
    for line in complete.split(b"\n"):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return entries


def validate_trace(entries: list[dict[str, Any]]) -> list[str]:
    """Structural schema check; returns problems (empty list == valid).

    Verifies that span ids are unique, begins carry the then-innermost
    open span as ``parent``, ends close in LIFO order, instants name an
    open parent, and — for a trace from a run that finished — every
    span closed.  A torn tail can legitimately leave spans open, so
    callers deciding to tolerate that can filter the ``never closed``
    message.
    """
    problems: list[str] = []
    stack: list[int] = []
    seen_ids: set[int] = set()
    for lineno, entry in enumerate(entries, start=1):
        ev = entry.get("ev")
        if ev == "B":
            span_id = entry.get("id")
            if not isinstance(span_id, int):
                problems.append(f"line {lineno}: begin without integer id")
                continue
            if span_id in seen_ids:
                problems.append(f"line {lineno}: duplicate span id {span_id}")
            seen_ids.add(span_id)
            parent = entry.get("parent")
            expected = stack[-1] if stack else None
            if parent != expected:
                problems.append(
                    f"line {lineno}: span {span_id} has parent {parent}, "
                    f"expected {expected}"
                )
            stack.append(span_id)
        elif ev == "E":
            span_id = entry.get("id")
            if not stack:
                problems.append(
                    f"line {lineno}: end of span {span_id} with no span open"
                )
            elif stack[-1] != span_id:
                problems.append(
                    f"line {lineno}: span {span_id} ends out of order "
                    f"(innermost open is {stack[-1]})"
                )
                if span_id in stack:
                    del stack[stack.index(span_id):]
            else:
                stack.pop()
        elif ev == "I":
            parent = entry.get("parent")
            if parent is not None and parent not in stack:
                problems.append(
                    f"line {lineno}: instant parented to closed span {parent}"
                )
        else:
            problems.append(f"line {lineno}: unknown event kind {ev!r}")
    if stack:
        problems.append(
            f"{len(stack)} spans never closed (ids {stack}) — "
            "a torn tail, or a run killed mid-span"
        )
    return problems


def trace_spans(entries: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Pair begin/end events into closed spans (emission order).

    Each span is ``{id, name, parent, start, end, dur, attrs}``.  Spans
    left open by a torn tail are silently dropped — aggregation only
    trusts completed measurements.
    """
    open_spans: dict[int, dict[str, Any]] = {}
    spans: list[dict[str, Any]] = []
    for entry in entries:
        if entry.get("ev") == "B" and isinstance(entry.get("id"), int):
            open_spans[entry["id"]] = {
                "id": entry["id"],
                "name": entry.get("name", "?"),
                "parent": entry.get("parent"),
                "start": float(entry.get("ts", 0.0)),
                "attrs": entry.get("attrs", {}),
            }
        elif entry.get("ev") == "E":
            span = open_spans.pop(entry.get("id"), None)
            if span is not None:
                span["end"] = float(entry.get("ts", span["start"]))
                span["dur"] = round(span["end"] - span["start"], 6)
                spans.append(span)
    return spans


def summarize_spans(entries: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate closed spans by name: count and total/mean/max duration."""
    by_name: dict[str, list[float]] = {}
    for span in trace_spans(entries):
        by_name.setdefault(span["name"], []).append(span["dur"])
    rows = []
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = by_name[name]
        rows.append(
            {
                "span": name,
                "count": len(durs),
                "total_s": round(sum(durs), 6),
                "mean_s": round(sum(durs) / len(durs), 6),
                "max_s": round(max(durs), 6),
            }
        )
    return rows


def summarize_phases(entries: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate ``phase`` instant events by (protocol, phase).

    The engine emits one ``phase`` instant per transcript phase per
    protocol run, carrying the ledger's bits/rounds for that phase — so
    this table is the per-phase communication budget across the traced
    sweep, straight from the measurement instrument.
    """
    agg: dict[tuple[str, str], dict[str, int]] = {}
    for entry in entries:
        if entry.get("ev") != "I" or entry.get("name") != "phase":
            continue
        attrs = entry.get("attrs", {})
        key = (str(attrs.get("protocol", "?")), str(attrs.get("phase", "?")))
        bucket = agg.setdefault(key, {"bits": 0, "rounds": 0, "runs": 0})
        bucket["bits"] += int(attrs.get("bits", 0))
        bucket["rounds"] += int(attrs.get("rounds", 0))
        bucket["runs"] += 1
    return [
        {"protocol": protocol, "phase": phase, **agg[(protocol, phase)]}
        for protocol, phase in sorted(agg)
    ]


def to_chrome(entries: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert to Chrome ``trace_event`` JSON (load in Perfetto).

    Closed spans become complete (``"X"``) events and instants become
    thread-scoped ``"i"`` events; timestamps are microseconds.  All
    events share one pid/tid — the tracer is single-threaded by
    construction, and the viewer reconstructs nesting from durations.
    """
    trace_events: list[dict[str, Any]] = []
    for span in trace_spans(entries):
        trace_events.append(
            {
                "name": span["name"],
                "cat": "span",
                "ph": "X",
                "ts": round(span["start"] * 1e6, 3),
                "dur": round(span["dur"] * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": span["attrs"],
            }
        )
    for entry in entries:
        if entry.get("ev") != "I":
            continue
        trace_events.append(
            {
                "name": entry.get("name", "?"),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": round(float(entry.get("ts", 0.0)) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": entry.get("attrs", {}),
            }
        )
    trace_events.sort(key=lambda e: e["ts"])
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
