"""Public-vs-private randomness accounting for the two-party model.

The paper's protocols assume public randomness (Section 3.1): both parties
observe the same random tape.  That tape is :class:`repro.rand.Stream` — a
counter-based splittable stream; private per-party randomness comes from
:meth:`repro.rand.Stream.derive_random`.  (The deprecated
``PublicRandomness``/``split_rng`` compatibility shim that used to live
here is gone; every call site speaks :mod:`repro.rand` directly.)

What remains is the model-level accounting: **Newman's theorem** [New91]
lets public randomness be replaced by private randomness at an additive
``O(log n + log(1/δ))`` communication cost; :func:`newman_overhead_bits`
reports that surcharge so experiments can quote private-coin costs too.
"""

from __future__ import annotations

import math

__all__ = ["newman_overhead_bits"]


def newman_overhead_bits(n: int, delta: float = 0.01) -> int:
    """Additive cost of replacing public with private coins [New91].

    ``O(log n + log(1/δ))`` bits, where ``δ`` bounds the extra failure
    probability.  Returned with constant 1 for concreteness.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(math.log2(n)) + math.ceil(math.log2(1.0 / delta))
