"""Shared (public) and private randomness for two-party protocols.

The paper's protocols assume public randomness (Section 3.1): both parties
observe the same random tape.  :class:`PublicRandomness` models the tape as a
seeded :class:`random.Random` both parties read in the same order — reads are
part of the protocol schedule, which is common knowledge, so both parties
always agree on every public draw without communication.

``Newman's theorem`` [New91] lets public randomness be replaced by private
randomness at an additive ``O(log n + log(1/δ))`` communication cost;
:func:`newman_overhead_bits` reports that surcharge so experiments can quote
private-coin costs too.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Sequence
from typing import TypeVar

__all__ = ["PublicRandomness", "newman_overhead_bits", "split_rng"]

T = TypeVar("T")


class PublicRandomness:
    """A shared random tape read identically by Alice and Bob."""

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)
        self.draws = 0

    def coin(self, p: float = 0.5) -> bool:
        """One public coin flip with success probability ``p``."""
        self.draws += 1
        return self._rng.random() < p

    def uniform_int(self, low: int, high: int) -> int:
        """A public uniform integer in ``[low, high]`` inclusive."""
        self.draws += 1
        return self._rng.randint(low, high)

    def permutation(self, m: int) -> list[int]:
        """A public uniform permutation of ``range(m)``."""
        self.draws += 1
        perm = list(range(m))
        self._rng.shuffle(perm)
        return perm

    def sample_mask(self, m: int, p: float) -> list[bool]:
        """Include each of ``m`` positions independently with probability ``p``."""
        self.draws += 1
        if p >= 1.0:
            return [True] * m
        if p <= 0.0:
            return [False] * m
        rnd = self._rng.random
        return [rnd() < p for _ in range(m)]

    def choice(self, items: Sequence[T]) -> T:
        """A public uniform element of a non-empty sequence."""
        self.draws += 1
        return self._rng.choice(items)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """A public uniform shuffle of ``items`` (original left untouched)."""
        self.draws += 1
        out = list(items)
        self._rng.shuffle(out)
        return out

    def spawn(self, label: str) -> "PublicRandomness":
        """Derive an independent public tape for a labelled sub-protocol.

        Both parties derive the same child tape because the label and the
        parent seed state are common knowledge.  Uses a stable (CRC-based)
        label hash so runs are reproducible across processes.
        """
        self.draws += 1
        child_seed = self._rng.getrandbits(64) ^ _stable_hash(label)
        return PublicRandomness(child_seed)


def _stable_hash(label: str) -> int:
    """A process-independent 64-bit hash of a label."""
    data = label.encode("utf-8")
    return (zlib.crc32(data) << 32) | zlib.crc32(data[::-1])


def split_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent private RNG stream for a labelled subtask."""
    seed = rng.getrandbits(64) ^ _stable_hash(label)
    return random.Random(seed)


def newman_overhead_bits(n: int, delta: float = 0.01) -> int:
    """Additive cost of replacing public with private coins [New91].

    ``O(log n + log(1/δ))`` bits, where ``δ`` bounds the extra failure
    probability.  Returned with constant 1 for concreteness.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(math.log2(n)) + math.ceil(math.log2(1.0 / delta))
