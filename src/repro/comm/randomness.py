"""Deprecated compatibility shim — the randomness layer lives in
:mod:`repro.rand` now.

The paper's protocols assume public randomness (Section 3.1): both
parties observe the same random tape.  That tape is now a
counter-based splittable :class:`repro.rand.Stream`; this module keeps
the historical names working:

* :class:`PublicRandomness` — the old tape class, now a thin
  :class:`~repro.rand.Stream` subclass.  ``spawn`` is an alias for
  ``derive`` and therefore **no longer consumes parent tape state**:
  sibling spawns used to depend on call order (the parent's
  ``getrandbits`` advanced per spawn); they are independent now.
  Draw values differ from the old ``random.Random`` tape — the test
  suite pins invariants (parity, proper colorings) plus golden digests
  of the *new* streams, so nothing needed re-pinning at the migration.
  ``seed=None`` still entropy-seeds, as the old tape did.
* :func:`split_rng` — the old stateful private-stream splitter,
  unchanged for callers that still hold a ``random.Random``.  New code
  should use :meth:`repro.rand.Stream.derive_random`, which is
  order-independent.

``Newman's theorem`` [New91] lets public randomness be replaced by
private randomness at an additive ``O(log n + log(1/δ))`` communication
cost; :func:`newman_overhead_bits` reports that surcharge so experiments
can quote private-coin costs too.
"""

from __future__ import annotations

import math
import random

from ..rand import Label, Stream, stable_label_hash

__all__ = ["PublicRandomness", "newman_overhead_bits", "split_rng"]


class _PermList(list):
    """A materialized permutation that also satisfies the lazy-perm API.

    Old callers treat it as the plain list the old API returned; migrated
    protocols handed a :class:`PublicRandomness` still get ``index_of`` /
    ``materialize``.  The inverse table is built once on first use, like
    the old color-sample call sites did.
    """

    _inverse: dict[int, int] | None = None

    def index_of(self, x: int) -> int:
        inverse = self._inverse
        if inverse is None:
            inverse = {y: i for i, y in enumerate(self)}
            self._inverse = inverse
        return inverse[x]

    def materialize(self) -> list[int]:
        return list(self)


class PublicRandomness(Stream):
    """Deprecated: the shared public tape, now backed by :class:`Stream`.

    Kept so existing call sites (``PublicRandomness(seed)`` plus the
    ``coin`` / ``permutation`` / ``sample_mask`` / ``spawn`` vocabulary)
    keep working.  ``permutation`` still returns a plain list for old
    callers; protocols migrated to :class:`Stream` get lazy permutations
    instead.  ``draws`` counts old-API draw operations, as before.
    """

    __slots__ = ("draws",)

    def __init__(self, seed: int | None = 0) -> None:
        # from_seed handles None by entropy-seeding, like random.Random.
        super().__init__(Stream.from_seed(seed).key)
        self.draws = 0

    def coin(self, p: float = 0.5) -> bool:
        self.draws += 1
        return super().coin(p)

    def uniform_int(self, low: int, high: int) -> int:
        self.draws += 1
        return super().uniform_int(low, high)

    def permutation(self, m: int) -> list[int]:  # type: ignore[override]
        """Old API: the permutation as a materialized list.

        Keyed by one stream word but shuffled with the stdlib's C
        Fisher–Yates — a full list is being built regardless, so the old
        cost model is the right one here (cycle-walking every position
        of a lazy permutation would be strictly slower).
        """
        self.draws += 1
        table = list(range(m))
        random.Random(self.next64()).shuffle(table)
        return _PermList(table)

    def sample_mask(self, m: int, p: float) -> list[bool]:
        self.draws += 1
        return super().sample_mask(m, p)

    def choice(self, items):
        self.draws += 1
        return super().choice(items)

    def shuffled(self, items):
        self.draws += 1
        return super().shuffled(items)

    def spawn(self, label: Label) -> "PublicRandomness":
        """Derive an independent public tape for a labelled sub-protocol.

        Now pure: sibling spawns are identical regardless of call order,
        and spawning never advances the parent tape (the old
        implementation consumed ``getrandbits`` per spawn).
        """
        self.draws += 1
        child = PublicRandomness(0)
        child.key = self.derive(label).key
        return child


def split_rng(rng: random.Random, label: str) -> random.Random:
    """Deprecated: derive a private RNG for a labelled subtask.

    Consumes ``rng`` state, so it is order-dependent; prefer
    :meth:`repro.rand.Stream.derive_random`.
    """
    seed = rng.getrandbits(64) ^ stable_label_hash(label)
    return random.Random(seed)


def newman_overhead_bits(n: int, delta: float = 0.01) -> int:
    """Additive cost of replacing public with private coins [New91].

    ``O(log n + log(1/δ))`` bits, where ``δ`` bounds the extra failure
    probability.  Returned with constant 1 for concreteness.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(math.log2(n)) + math.ceil(math.log2(1.0 / delta))
