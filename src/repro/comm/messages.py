"""Message containers exchanged by two-party protocols.

A :class:`Msg` carries an arbitrary payload plus a *declared* size in bits.
Declared sizes must come from the cost helpers in :mod:`repro.comm.bits`, so
that they correspond to a concrete encoding.  ``Msg.empty()`` is the silent
message a party sends in a round where it has nothing to say.

Messages are immutable value objects (``frozen=True, slots=True``), which
makes them safe to *intern*: the hot protocol loops send huge numbers of
silent messages and tiny integer payloads, so :func:`intern_msg` serves
those from preallocated shared instances instead of allocating a fresh
``Msg`` per send.  Interning is safe precisely because a ``Msg`` can never
be mutated after construction — two sends may alias the same object without
either observing the other.

:class:`BatchMsg` groups per-sub-protocol messages when many sub-protocols
(e.g. one per vertex) share communication rounds; its size is the sum of the
sub-messages.  No addressing overhead is charged: the schedule of
sub-protocols is common knowledge to both parties, exactly as in the paper's
parallel composition of Color-Sample instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from . import telemetry as _telemetry

__all__ = ["BatchMsg", "EMPTY_MSG", "Msg", "intern_msg"]


@dataclass(frozen=True, slots=True)
class Msg:
    """A single protocol message with a declared bit cost."""

    nbits: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbits < 0:
            raise ValueError(f"message size must be non-negative, got {self.nbits}")

    @staticmethod
    def empty() -> "Msg":
        """The zero-bit message (silence in a simultaneous round).

        Returns a cached singleton: the dataclass is frozen, so every
        silent round can share one instance instead of allocating a fresh
        zero-bit message.
        """
        return EMPTY_MSG

    @property
    def is_empty(self) -> bool:
        """True if the message carries no bits."""
        return self.nbits == 0


@dataclass(frozen=True, slots=True)
class BatchMsg:
    """A bundle of sub-protocol messages sharing one communication round."""

    parts: dict[Any, Msg] = field(default_factory=dict)

    @property
    def nbits(self) -> int:
        """Total declared bits across all sub-messages."""
        return sum(msg.nbits for msg in self.parts.values())

    def get(self, key: Any) -> Msg:
        """Message addressed to sub-protocol ``key`` (empty if absent)."""
        return self.parts.get(key, EMPTY_MSG)


# -- interning --------------------------------------------------------------
#
# The two message shapes that dominate every protocol in the repo are
# "silence" (payload None, small declared size — binary-search probes, recv
# rounds, padding) and "small unsigned int" (slack counts, confirmations).
# Both tables are built once at import; intern_msg is a couple of integer
# comparisons before a tuple index, versus a full dataclass construction.

_SILENT_LIMIT = 128
_INT_BITS_LIMIT = 16
_INT_VALUE_LIMIT = 64

_SILENT: tuple[Msg, ...] = tuple(Msg(b) for b in range(_SILENT_LIMIT))
_INT_MSGS: tuple[tuple[Msg, ...], ...] = tuple(
    tuple(Msg(b, v) for v in range(_INT_VALUE_LIMIT + 1))
    for b in range(_INT_BITS_LIMIT + 1)
)


def intern_msg(nbits: int, payload: Any = None) -> Msg:
    """A ``Msg(nbits, payload)``, shared from the intern tables when small.

    Semantically identical to constructing the message directly (``Msg`` is
    frozen, so aliasing is unobservable); callers must simply never rely on
    object identity of the result.  Out-of-range shapes fall back to a
    fresh ``Msg`` (which also performs the ``nbits >= 0`` validation).
    """
    if payload is None:
        if 0 <= nbits < _SILENT_LIMIT:
            if _telemetry.enabled:
                _telemetry.intern_hits += 1
            return _SILENT[nbits]
    elif (
        type(payload) is int
        and 0 <= nbits <= _INT_BITS_LIMIT
        and 0 <= payload <= _INT_VALUE_LIMIT
    ):
        if _telemetry.enabled:
            _telemetry.intern_hits += 1
        return _INT_MSGS[nbits][payload]
    if _telemetry.enabled:
        _telemetry.intern_misses += 1
    return Msg(nbits, payload)


#: The shared zero-bit message returned by :meth:`Msg.empty`.
EMPTY_MSG = _SILENT[0]
