"""Message containers exchanged by two-party protocols.

A :class:`Msg` carries an arbitrary payload plus a *declared* size in bits.
Declared sizes must come from the cost helpers in :mod:`repro.comm.bits`, so
that they correspond to a concrete encoding.  ``Msg.empty()`` is the silent
message a party sends in a round where it has nothing to say.

:class:`BatchMsg` groups per-sub-protocol messages when many sub-protocols
(e.g. one per vertex) share communication rounds; its size is the sum of the
sub-messages.  No addressing overhead is charged: the schedule of
sub-protocols is common knowledge to both parties, exactly as in the paper's
parallel composition of Color-Sample instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["BatchMsg", "Msg"]


@dataclass(frozen=True)
class Msg:
    """A single protocol message with a declared bit cost."""

    nbits: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbits < 0:
            raise ValueError(f"message size must be non-negative, got {self.nbits}")

    @staticmethod
    def empty() -> "Msg":
        """The zero-bit message (silence in a simultaneous round).

        Returns a cached singleton: the dataclass is frozen, so every
        silent round can share one instance instead of allocating a fresh
        zero-bit message.
        """
        return EMPTY_MSG

    @property
    def is_empty(self) -> bool:
        """True if the message carries no bits."""
        return self.nbits == 0


@dataclass(frozen=True)
class BatchMsg:
    """A bundle of sub-protocol messages sharing one communication round."""

    parts: dict[Any, Msg] = field(default_factory=dict)

    @property
    def nbits(self) -> int:
        """Total declared bits across all sub-messages."""
        return sum(msg.nbits for msg in self.parts.values())

    def get(self, key: Any) -> Msg:
        """Message addressed to sub-protocol ``key`` (empty if absent)."""
        return self.parts.get(key, EMPTY_MSG)


#: The shared zero-bit message returned by :meth:`Msg.empty`.
EMPTY_MSG = Msg(0, None)
