"""Lockstep execution of a two-party protocol.

A protocol is a pair of Python generators — one for Alice, one for Bob.
Each generator ``yield``s the :class:`~repro.comm.messages.Msg` it sends in
the current round and receives the peer's message from the same round as the
value of the ``yield`` expression.  One simultaneous exchange = one round
(footnote 1 of the paper: in one round, Alice and Bob each send a message to
the other simultaneously).

Both sides must terminate after the same number of rounds.  This is a
structural property of every protocol in the paper (the round schedule is
common knowledge), and the runner enforces it: asymmetric termination raises
:class:`ProtocolDesyncError`, which the test suite uses to catch scheduling
bugs.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from .ledger import Transcript
from .messages import Msg

__all__ = ["ProtocolDesyncError", "run_protocol"]

PartyGen = Generator[Msg, Msg, Any]


class ProtocolDesyncError(RuntimeError):
    """Raised when Alice's and Bob's round schedules disagree."""


_SENTINEL = object()


def _start(gen: PartyGen) -> tuple[Msg | None, Any]:
    """Advance a party to its first yield; return (first message, result)."""
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


def _step(gen: PartyGen, incoming: Msg) -> tuple[Msg | None, Any]:
    """Deliver ``incoming`` and advance one round."""
    try:
        return gen.send(incoming), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


def run_protocol(
    alice: PartyGen,
    bob: PartyGen,
    transcript: Transcript | None = None,
) -> Tuple[Any, Any, Transcript]:
    """Run an (Alice, Bob) generator pair to completion.

    Returns ``(alice_result, bob_result, transcript)`` where the results are
    the generators' return values.  Raises :class:`ProtocolDesyncError` if
    one side stops while the other still wants to exchange messages.
    """
    if transcript is None:
        transcript = Transcript()

    a_msg, a_result = _start(alice)
    b_msg, b_result = _start(bob)

    while True:
        a_done = a_msg is None
        b_done = b_msg is None
        if a_done and b_done:
            return a_result, b_result, transcript
        if a_done != b_done:
            lagging = "Bob" if a_done else "Alice"
            raise ProtocolDesyncError(
                f"{lagging} wants another round after round {transcript.rounds}, "
                "but the peer already terminated"
            )
        assert a_msg is not None and b_msg is not None
        transcript.record_round(a_msg.nbits, b_msg.nbits)
        incoming_for_alice = b_msg
        incoming_for_bob = a_msg
        a_msg, a_result = _step(alice, incoming_for_alice)
        b_msg, b_result = _step(bob, incoming_for_bob)
