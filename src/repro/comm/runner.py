"""Legacy lockstep entry point: ``run_protocol`` over generator pairs.

A protocol in the original (pre-Channel) API is a pair of Python
generators — one for Alice, one for Bob.  Each generator ``yield``s the
:class:`~repro.comm.messages.Msg` it sends in the current round and
receives the peer's message from the same round as the value of the
``yield`` expression.  One simultaneous exchange = one round (footnote 1
of the paper: in one round, Alice and Bob each send a message to the
other simultaneously).

:func:`run_protocol` is kept as a thin compatibility shim over
:class:`~repro.comm.transport.LockstepTransport`: the transport's round
loop *is* the old runner's — both sides must terminate after the same
number of rounds (the round schedule is common knowledge), and asymmetric
termination raises :class:`~repro.comm.transport.ProtocolDesyncError`.
New code should write channel protocols and call ``Transport.run``
directly; see :mod:`repro.comm.transport` and the migration note in
``ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from .ledger import Transcript
from .messages import Msg
from .transport import ProtocolDesyncError, TRANSPORTS

__all__ = ["ProtocolDesyncError", "run_protocol"]

PartyGen = Generator[Msg, Msg, Any]


def run_protocol(
    alice: PartyGen,
    bob: PartyGen,
    transcript: Transcript | None = None,
) -> Tuple[Any, Any, Transcript]:
    """Run an (Alice, Bob) generator pair to completion.

    Returns ``(alice_result, bob_result, transcript)`` where the results
    are the generators' return values.  Raises
    :class:`ProtocolDesyncError` if one side stops while the other still
    wants to exchange messages.
    """
    return TRANSPORTS["lockstep"].run(alice, bob, transcript)
