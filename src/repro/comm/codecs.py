"""Concrete wire codecs for the payload types the protocols exchange.

Protocols declare message sizes via the cost helpers in
:mod:`repro.comm.bits`; this module closes the loop by actually encoding
and decoding each payload shape to a bit stream of exactly the declared
length.  The test suite samples real messages out of protocol runs and
round-trips them here, so a protocol cannot under-declare its
communication.

Payload shapes covered (everything the paper's protocols send):

* bounded counts (``|S ∩ X|`` in k-Slack-Int) — fixed width;
* confirmation bitmaps (Random-Color-Trial) and availability masks
  (Algorithm 2);
* edge lists (D1LC gather, baselines) — gamma-coded length + fixed-width
  endpoints;
* packed color vectors (D1LC broadcast) — fixed width per color;
* cover messages (Lemma 5.4) — gamma-coded round count, per-round color id
  + shrinking bitmaps.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .bits import BitReader, BitWriter, gamma_cost, uint_cost

__all__ = [
    "Codec",
    "CodecMismatchError",
    "decode_bounded_count",
    "decode_color_vector",
    "decode_cover_payload",
    "decode_edge_list",
    "decode_flag_bitmap",
    "encode_bounded_count",
    "encode_color_vector",
    "encode_cover_payload",
    "encode_edge_list",
    "edge_list_codec",
    "encode_flag_bitmap",
    "verify_declared_cost",
]

#: A codec, for strict-transport purposes, is any callable turning a
#: payload into the exact bit sequence the declared cost accounts for.
Codec = Callable[[object], Sequence[int]]


class CodecMismatchError(RuntimeError):
    """A message's declared ``nbits`` disagrees with its real encoding."""


# -- bounded counts ---------------------------------------------------------


def encode_bounded_count(value: int, bound: int) -> list[int]:
    """Encode ``value ∈ [0, bound]`` in exactly ``uint_cost(bound)`` bits."""
    writer = BitWriter()
    writer.write_uint(value, uint_cost(bound))
    return writer.to_bits()


def decode_bounded_count(bits: Sequence[int], bound: int) -> int:
    """Inverse of :func:`encode_bounded_count`."""
    return BitReader(bits).read_uint(uint_cost(bound))


# -- flag bitmaps -----------------------------------------------------------


def encode_flag_bitmap(flags: Sequence[bool]) -> list[int]:
    """One bit per flag — confirmation bits, degree bitmaps, masks."""
    writer = BitWriter()
    writer.write_bitmap(flags)
    return writer.to_bits()


def decode_flag_bitmap(bits: Sequence[int], length: int) -> list[bool]:
    """Inverse of :func:`encode_flag_bitmap`."""
    return BitReader(bits).read_bitmap(length)


# -- edge lists -------------------------------------------------------------


def edge_list_cost(num_edges: int, n: int) -> int:
    """Declared size of an edge-list message on ``n`` vertices."""
    return gamma_cost(num_edges + 1) + num_edges * 2 * uint_cost(max(n - 1, 1))


def encode_edge_list(edges: Sequence[tuple[int, int]], n: int) -> list[int]:
    """Gamma-coded count followed by fixed-width endpoint pairs."""
    writer = BitWriter()
    writer.write_gamma(len(edges) + 1)
    width = uint_cost(max(n - 1, 1))
    for u, v in edges:
        writer.write_uint(u, width)
        writer.write_uint(v, width)
    return writer.to_bits()


def decode_edge_list(bits: Sequence[int], n: int) -> list[tuple[int, int]]:
    """Inverse of :func:`encode_edge_list`."""
    reader = BitReader(bits)
    count = reader.read_gamma() - 1
    width = uint_cost(max(n - 1, 1))
    return [(reader.read_uint(width), reader.read_uint(width)) for _ in range(count)]


def edge_list_codec(n: int) -> "Codec":
    """Strict-transport codec for an edge-list payload on ``n`` vertices.

    Pairs with :func:`edge_list_cost` as the declared size; every
    edge-shipping send site (D1LC gather, the gather-style baselines)
    uses this one codec.
    """
    return lambda edges: encode_edge_list(edges, n)


# -- packed color vectors ---------------------------------------------------


def encode_color_vector(colors: Sequence[int], num_colors: int) -> list[int]:
    """Fixed-width colors in list order (the order is common knowledge)."""
    writer = BitWriter()
    width = uint_cost(num_colors)
    for color in colors:
        writer.write_uint(color, width)
    return writer.to_bits()


def decode_color_vector(bits: Sequence[int], count: int, num_colors: int) -> list[int]:
    """Inverse of :func:`encode_color_vector`."""
    reader = BitReader(bits)
    width = uint_cost(num_colors)
    return [reader.read_uint(width) for _ in range(count)]


# -- Lemma 5.4 cover messages ------------------------------------------------


def encode_cover_payload(
    colors: Sequence[int],
    bitmaps: Sequence[Sequence[bool]],
    max_color: int,
) -> list[int]:
    """Gamma-coded round count, then per round a color id and its bitmap.

    Bitmap lengths are implied (the receiver tracks the uncovered set), so
    they are not transmitted — matching
    :func:`repro.core.cover_colors.build_cover_message`'s declared cost.
    """
    writer = BitWriter()
    writer.write_gamma(len(colors) + 1)
    width = uint_cost(max_color)
    for color, flags in zip(colors, bitmaps):
        writer.write_uint(color, width)
        writer.write_bitmap(flags)
    return writer.to_bits()


def decode_cover_payload(
    bits: Sequence[int],
    first_length: int,
    max_color: int,
) -> tuple[list[int], list[list[bool]]]:
    """Inverse of :func:`encode_cover_payload`.

    ``first_length`` is the initial uncovered-set size; each round's bitmap
    length equals the previous round's count of ``False`` flags.
    """
    reader = BitReader(bits)
    rounds = reader.read_gamma() - 1
    width = uint_cost(max_color)
    colors: list[int] = []
    bitmaps: list[list[bool]] = []
    length = first_length
    for _ in range(rounds):
        colors.append(reader.read_uint(width))
        flags = reader.read_bitmap(length)
        bitmaps.append(flags)
        length = sum(1 for f in flags if not f)
    return colors, bitmaps


# -- strict-transport verification -------------------------------------------


def _infer_encoding(payload: object, nbits: int) -> Sequence[int]:
    """Encode shapes the strict transport can check without an explicit codec.

    Integers encode as a fixed-width uint of exactly the declared width
    (so an under-declared width is caught by the encoder itself), and
    flat boolean sequences encode as bitmaps.  Anything else needs an
    explicit codec at the ``Channel.send`` call site.
    """
    if payload is None:
        if nbits == 0:
            return ()
        raise CodecMismatchError(
            f"empty payload cannot account for {nbits} declared bits"
        )
    if isinstance(payload, bool):
        payload = int(payload)
    if isinstance(payload, int):
        writer = BitWriter()
        try:
            writer.write_uint(payload, nbits)
        except ValueError as exc:
            raise CodecMismatchError(
                f"integer payload {payload} does not fit the declared "
                f"{nbits}-bit width"
            ) from exc
        return writer.to_bits()
    if isinstance(payload, (tuple, list)) and all(
        isinstance(flag, bool) for flag in payload
    ):
        return encode_flag_bitmap(payload)
    raise CodecMismatchError(
        f"no default codec for payload of type {type(payload).__name__}; "
        "pass codec= at the Channel.send call site"
    )


def verify_declared_cost(
    nbits: int,
    payload: object,
    codec: Codec | None = None,
) -> None:
    """Assert a message's declared size equals its real encoded length.

    The strict transport calls this on every message: ``codec`` (when
    given) must return the exact bit sequence the declared cost pays for;
    without one, the payload is encoded by shape inference
    (:func:`_infer_encoding`).  Raises :class:`CodecMismatchError` on any
    disagreement — an under-declared message can never slip through a
    strict run.
    """
    if codec is not None:
        try:
            bits = codec(payload)
        except CodecMismatchError:
            raise
        except (ValueError, EOFError) as exc:
            raise CodecMismatchError(
                f"codec failed to encode payload for a declared "
                f"{nbits}-bit message: {exc}"
            ) from exc
    else:
        bits = _infer_encoding(payload, nbits)
    if len(bits) != nbits:
        raise CodecMismatchError(
            f"declared {nbits} bits but the codec encoded {len(bits)} bits"
        )
