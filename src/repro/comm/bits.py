"""Bit-level encoders and cost helpers for protocol messages.

Every message a protocol sends declares its size in bits.  To keep those
declarations honest, this module provides *real* encoders — a
:class:`BitWriter` / :class:`BitReader` pair implementing fixed-width
integers, Elias-gamma codes, and bitmaps — together with cost functions
(`uint_cost`, `gamma_cost`, ...) that return exactly the number of bits the
corresponding encoder would emit.  The test suite round-trips every encoder
and cross-checks declared costs against actual encoded lengths.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "BitReader",
    "BitWriter",
    "bit_length",
    "bitmap_cost",
    "gamma_cost",
    "uint_cost",
    "uint_width",
]


def bit_length(value: int) -> int:
    """Number of bits in the binary representation of ``value`` (≥ 0).

    ``bit_length(0) == 0`` by convention, matching ``int.bit_length``.
    """
    if value < 0:
        raise ValueError(f"expected a non-negative integer, got {value}")
    return value.bit_length()


def uint_width(max_value: int) -> int:
    """Width in bits needed to represent any integer in ``[0, max_value]``.

    This is the fixed-width code used when both parties know an a-priori
    bound on the transmitted value (e.g. a count of elements of a publicly
    known sample set).  ``uint_width(0) == 0``: a value that can only be 0
    requires no communication at all.
    """
    if max_value < 0:
        raise ValueError(f"expected a non-negative bound, got {max_value}")
    return bit_length(max_value)


def uint_cost(max_value: int) -> int:
    """Cost in bits of sending one integer from ``[0, max_value]``."""
    return uint_width(max_value)


def gamma_cost(value: int) -> int:
    """Cost in bits of the Elias-gamma code for ``value`` (≥ 1).

    Elias gamma encodes a positive integer ``v`` with ``2⌊log2 v⌋ + 1``
    bits; it is the variable-length code used when no a-priori bound on the
    value is shared.
    """
    if value < 1:
        raise ValueError(f"Elias gamma requires value >= 1, got {value}")
    return 2 * (bit_length(value) - 1) + 1


def bitmap_cost(length: int) -> int:
    """Cost in bits of a bitmap over ``length`` positions."""
    if length < 0:
        raise ValueError(f"expected a non-negative length, got {length}")
    return length


class BitWriter:
    """Append-only bit buffer with the codes used by the protocols."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"expected a bit, got {bit}")
        self._bits.append(bit)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian unsigned integer."""
        if value < 0:
            raise ValueError(f"expected a non-negative value, got {value}")
        if value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_gamma(self, value: int) -> None:
        """Append ``value`` (≥ 1) using the Elias-gamma code."""
        if value < 1:
            raise ValueError(f"Elias gamma requires value >= 1, got {value}")
        n = bit_length(value) - 1
        for _ in range(n):
            self._bits.append(0)
        self.write_uint(value, n + 1)

    def write_bitmap(self, flags: Iterable[bool]) -> None:
        """Append one bit per flag."""
        for flag in flags:
            self._bits.append(1 if flag else 0)

    def to_bits(self) -> list[int]:
        """Return a copy of the emitted bit sequence."""
        return list(self._bits)

    def to_bytes(self) -> bytes:
        """Pack the bit sequence into bytes (zero-padded at the end)."""
        out = bytearray()
        acc = 0
        count = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            count += 1
            if count == 8:
                out.append(acc)
                acc = 0
                count = 0
        if count:
            out.append(acc << (8 - count))
        return bytes(out)


class BitReader:
    """Sequential reader over a bit sequence produced by :class:`BitWriter`."""

    def __init__(self, bits: Sequence[int]) -> None:
        self._bits = list(bits)
        self._pos = 0

    @property
    def position(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    def remaining(self) -> int:
        """Number of bits left to read."""
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Consume and return one bit."""
        if self._pos >= len(self._bits):
            raise EOFError("bit stream exhausted")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        """Consume a fixed-width unsigned integer."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_gamma(self) -> int:
        """Consume one Elias-gamma coded integer (≥ 1)."""
        n = 0
        while self.read_bit() == 0:
            n += 1
        value = 1
        for _ in range(n):
            value = (value << 1) | self.read_bit()
        return value

    def read_bitmap(self, length: int) -> list[bool]:
        """Consume ``length`` bits and return them as booleans."""
        return [self.read_bit() == 1 for _ in range(length)]
