"""Two-party communication substrate: bits, messages, rounds, randomness.

This package is the "model of computation" the paper assumes — Yao's
two-party model over an edge-partitioned graph with public randomness and
simultaneous-exchange rounds — implemented as a deterministic lockstep
simulator with exact bit accounting.

Protocols talk to the substrate through the :class:`Channel` API
(``send``/``exchange``, ``phase`` scoping, keyed ``parallel``
sub-channels) backed by one of three pluggable transports: ``lockstep``
(reference semantics), ``count`` (no payload wrappers or round logs — the
fast path for large sweeps), and ``strict`` (every payload encoded through
the codecs, declared sizes verified on every message).

The randomness substrate itself lives in :mod:`repro.rand` (counter-based
splittable streams); ``repro.comm.randomness`` keeps only the model-level
Newman's-theorem accounting on top of it.
"""

from .codecs import (
    CodecMismatchError,
    decode_bounded_count,
    decode_color_vector,
    decode_cover_payload,
    decode_edge_list,
    decode_flag_bitmap,
    encode_bounded_count,
    encode_color_vector,
    encode_cover_payload,
    encode_edge_list,
    encode_flag_bitmap,
    verify_declared_cost,
)
from .bits import (
    BitReader,
    BitWriter,
    bit_length,
    bitmap_cost,
    gamma_cost,
    uint_cost,
    uint_width,
)
from .ledger import PhaseStats, Transcript
from .messages import BatchMsg, Msg
from .parallel import compose_parallel
from .randomness import newman_overhead_bits
from .transport import (
    TRANSPORTS,
    Channel,
    CountOnlyTransport,
    LockstepTransport,
    ProtocolDesyncError,
    StrictTransport,
    Transport,
    as_party,
    resolve_transport,
)
from .runner import run_protocol

__all__ = [
    "BatchMsg",
    "BitReader",
    "BitWriter",
    "Channel",
    "CodecMismatchError",
    "CountOnlyTransport",
    "LockstepTransport",
    "Msg",
    "PhaseStats",
    "ProtocolDesyncError",
    "StrictTransport",
    "TRANSPORTS",
    "Transcript",
    "Transport",
    "as_party",
    "bit_length",
    "bitmap_cost",
    "compose_parallel",
    "decode_bounded_count",
    "decode_color_vector",
    "decode_cover_payload",
    "decode_edge_list",
    "decode_flag_bitmap",
    "encode_bounded_count",
    "encode_color_vector",
    "encode_cover_payload",
    "encode_edge_list",
    "encode_flag_bitmap",
    "gamma_cost",
    "newman_overhead_bits",
    "resolve_transport",
    "run_protocol",
    "uint_cost",
    "uint_width",
    "verify_declared_cost",
]
