"""Two-party communication substrate: bits, messages, rounds, randomness.

This package is the "model of computation" the paper assumes — Yao's
two-party model over an edge-partitioned graph with public randomness and
simultaneous-exchange rounds — implemented as a deterministic lockstep
simulator with exact bit accounting.
"""

from .codecs import (
    decode_bounded_count,
    decode_color_vector,
    decode_cover_payload,
    decode_edge_list,
    decode_flag_bitmap,
    encode_bounded_count,
    encode_color_vector,
    encode_cover_payload,
    encode_edge_list,
    encode_flag_bitmap,
)
from .bits import (
    BitReader,
    BitWriter,
    bit_length,
    bitmap_cost,
    gamma_cost,
    uint_cost,
    uint_width,
)
from .ledger import PhaseStats, Transcript
from .messages import BatchMsg, Msg
from .parallel import compose_parallel
from .randomness import PublicRandomness, newman_overhead_bits, split_rng
from .runner import ProtocolDesyncError, run_protocol

__all__ = [
    "BatchMsg",
    "BitReader",
    "BitWriter",
    "Msg",
    "PhaseStats",
    "ProtocolDesyncError",
    "PublicRandomness",
    "Transcript",
    "bit_length",
    "bitmap_cost",
    "compose_parallel",
    "decode_bounded_count",
    "decode_color_vector",
    "decode_cover_payload",
    "decode_edge_list",
    "decode_flag_bitmap",
    "encode_bounded_count",
    "encode_color_vector",
    "encode_cover_payload",
    "encode_edge_list",
    "encode_flag_bitmap",
    "gamma_cost",
    "newman_overhead_bits",
    "run_protocol",
    "split_rng",
    "uint_cost",
    "uint_width",
]
