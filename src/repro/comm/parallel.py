"""Parallel composition of per-vertex sub-protocols in shared rounds.

The paper runs one Color-Sample instance per active vertex *in parallel*
within each iteration of ``Random-Color-Trial``: the iteration's round cost
is the maximum round count of any sub-protocol, and its bit cost is the sum.
:func:`compose_parallel` realizes exactly that semantics: it merges a keyed
family of party generators into a single party generator whose per-round
message is a :class:`~repro.comm.messages.BatchMsg` bundling all live
sub-protocols' messages.

Both parties must compose the *same* key set in the same round (the set of
active vertices is common knowledge in every protocol of the paper), and the
two sides of each sub-protocol must terminate in the same round — enforced
downstream by the lockstep runner through the batch structure.

This is the legacy composer for the generator API; channel protocols use
:meth:`repro.comm.transport.Channel.parallel` (keyed sub-channels), which
subsumes it on every transport.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Mapping

from .messages import BatchMsg, Msg

__all__ = ["compose_parallel"]

PartyGen = Generator[Msg, Msg, Any]
BatchGen = Generator[Msg, Msg, dict[Hashable, Any]]

_SENTINEL = object()


def _start(gen: PartyGen) -> tuple[Msg | None, Any]:
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


def _step(gen: PartyGen, incoming: Msg) -> tuple[Msg | None, Any]:
    try:
        return gen.send(incoming), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


def compose_parallel(subprotocols: Mapping[Hashable, PartyGen]) -> BatchGen:
    """Merge keyed sub-protocols into one generator sharing rounds.

    Returns a party generator that yields :class:`BatchMsg` objects (which
    quack like :class:`Msg` for bit accounting) and returns a dict mapping
    each key to its sub-protocol's return value.  Sub-protocols that finish
    early simply stop contributing to later batches.
    """
    results: dict[Hashable, Any] = {}
    live: dict[Hashable, PartyGen] = {}
    outgoing: dict[Hashable, Msg] = {}

    for key, gen in subprotocols.items():
        msg, result = _start(gen)
        if msg is None:
            results[key] = result
        else:
            live[key] = gen
            outgoing[key] = msg

    while live:
        # `outgoing` is rebound to a fresh dict below, so the batch can own
        # this one outright — no defensive per-round copy.
        incoming = yield BatchMsg(outgoing)
        if not isinstance(incoming, BatchMsg):
            raise TypeError(
                f"parallel composition expects BatchMsg from peer, got {type(incoming).__name__}"
            )
        outgoing = {}
        for key in list(live):
            msg, result = _step(live[key], incoming.get(key))
            if msg is None:
                results[key] = result
                del live[key]
            else:
                outgoing[key] = msg
    return results
