"""Gated hot-path counters for the comm layer.

The comm hot loops (``intern_msg`` on the lockstep wire, the pooled
``parallel`` driver on the count wire) are the paths the bench guards
protect, so they cannot afford observer indirection — not even a method
call — per event.  This module is the compromise: a handful of bare
module-level integers behind a single ``enabled`` flag.  The
instrumented sites read ``telemetry.enabled`` (one attribute load and a
branch) and, only when observability is on, bump the counters in place.
Disabled, the added cost is that one predictable branch; nothing is
allocated either way.

``repro.obs`` owns the lifecycle: :func:`repro.obs.observing` calls
:func:`reset` + :func:`enable` on entry and folds :func:`snapshot` into
the metrics document on exit.  This module deliberately imports nothing
from :mod:`repro.obs` (or anywhere else), so the comm layer stays
dependency-free and import-light.

The counters are per-process.  Sweep worker processes bump their own
copies, which die with the worker — by design: observability documents
describe the observing (coordinator) process, and canonical artifacts
never read these values at all.
"""

from __future__ import annotations

__all__ = ["disable", "enable", "enabled", "reset", "snapshot"]

#: Master switch read inline by the instrumented comm sites.
enabled = False

#: ``intern_msg`` calls served from the shared intern tables.
intern_hits = 0
#: ``intern_msg`` calls that fell back to a fresh ``Msg`` allocation.
intern_misses = 0
#: ``parallel`` batch buffers checked out of a channel's freelist.
pool_reused = 0
#: ``parallel`` batch buffers freshly allocated (freelist empty/short).
pool_allocated = 0


def enable() -> None:
    """Turn the comm counters on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn the comm counters off (idempotent); values are kept."""
    global enabled
    enabled = False


def reset() -> None:
    """Zero every counter (does not touch ``enabled``)."""
    global intern_hits, intern_misses, pool_reused, pool_allocated
    intern_hits = 0
    intern_misses = 0
    pool_reused = 0
    pool_allocated = 0


def snapshot() -> dict[str, float]:
    """The counters as a plain dict, plus the derived intern hit rate."""
    served = intern_hits + intern_misses
    data: dict[str, float] = {
        "intern_hits": intern_hits,
        "intern_misses": intern_misses,
        "pool_reused": pool_reused,
        "pool_allocated": pool_allocated,
    }
    if served:
        data["intern_hit_rate"] = round(intern_hits / served, 6)
    return data
