"""Transcript accounting: bits per direction, rounds, per-phase breakdown.

The :class:`Transcript` is the measurement instrument of the whole library.
Every run of a protocol produces one; every experiment in ``benchmarks/``
reports numbers read off it.  Phases let a composite protocol (e.g. the
Theorem 1 pipeline) attribute costs to its stages (random color trial,
sparsification, gather, ...).
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["PhaseStats", "Transcript"]


@dataclass
class PhaseStats:
    """Accumulated cost of one named phase of a protocol."""

    bits_alice_to_bob: int = 0
    bits_bob_to_alice: int = 0
    rounds: int = 0

    @property
    def total_bits(self) -> int:
        """Bits exchanged in both directions within the phase."""
        return self.bits_alice_to_bob + self.bits_bob_to_alice


class Transcript:
    """Mutable record of the communication cost of a protocol execution.

    ``record_log=False`` disables the per-round log (the raw material for
    round-profile experiments) while keeping every aggregate — totals,
    rounds, messages, per-phase stats — bit-for-bit identical.  The
    count-only transport uses it to skip the per-round list append on
    large sweeps.
    """

    def __init__(self, record_log: bool = True) -> None:
        self.bits_alice_to_bob = 0
        self.bits_bob_to_alice = 0
        self.rounds = 0
        self.messages = 0
        self.record_log = record_log
        #: Per-round (alice→bob, bob→alice) bit pairs, in round order —
        #: the raw material for round-profile experiments.  Stays empty
        #: when ``record_log`` is false.
        self.round_log: list[tuple[int, int]] = []
        self._phases: dict[str, PhaseStats] = {}
        self._active_phases: list[str] = []

    @property
    def total_bits(self) -> int:
        """Bits exchanged in both directions over the whole execution."""
        return self.bits_alice_to_bob + self.bits_bob_to_alice

    @property
    def phases(self) -> dict[str, PhaseStats]:
        """Per-phase statistics keyed by phase name."""
        return dict(self._phases)

    def phase_stats(self, name: str) -> PhaseStats:
        """Statistics for phase ``name`` (zeros if the phase never ran)."""
        return self._phases.get(name, PhaseStats())

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Attribute all costs recorded inside the block to ``name``.

        Phases may nest; costs are attributed to every active phase, so an
        outer phase sees the sum of its inner phases plus its own traffic.
        """
        stats = self._phases.setdefault(name, PhaseStats())
        self._active_phases.append(name)
        try:
            yield stats
        finally:
            popped = self._active_phases.pop()
            if popped != name:  # pragma: no cover - defensive
                raise RuntimeError(f"phase nesting corrupted: {popped} != {name}")

    def record_round(
        self,
        bits_a_to_b: int,
        bits_b_to_a: int,
        phases: tuple[str, ...] = (),
    ) -> None:
        """Record one simultaneous exchange round.

        ``phases`` names additional phases (beyond the ones opened with
        :meth:`phase`) to attribute this round to — the transports pass
        the parties' channel-level phase stack here.  A name appearing in
        both sources is attributed once.
        """
        if bits_a_to_b < 0 or bits_b_to_a < 0:
            raise ValueError("bit counts must be non-negative")
        self.rounds += 1
        self.bits_alice_to_bob += bits_a_to_b
        self.bits_bob_to_alice += bits_b_to_a
        if self.record_log:
            self.round_log.append((bits_a_to_b, bits_b_to_a))
        if bits_a_to_b:
            self.messages += 1
        if bits_b_to_a:
            self.messages += 1
        if phases or self._active_phases:
            self._attribute(bits_a_to_b, bits_b_to_a, 1, phases)

    def _attribute(
        self,
        bits_a_to_b: int,
        bits_b_to_a: int,
        rounds: int,
        phases: tuple[str, ...],
    ) -> None:
        """Attribute a (possibly multi-round) cost to every active phase.

        The active set is the union of the externally opened phases
        (:meth:`phase`) and the transport-supplied channel stack, each
        name counted once.
        """
        active = self._active_phases
        if phases:
            extra = [name for name in phases if name not in active]
            names = [*active, *extra] if extra else active
        else:
            names = active
        for name in names:
            stats = self._phases.setdefault(name, PhaseStats())
            stats.rounds += rounds
            stats.bits_alice_to_bob += bits_a_to_b
            stats.bits_bob_to_alice += bits_b_to_a

    def record_segment(
        self,
        bits_a_to_b: int,
        bits_b_to_a: int,
        rounds: int,
        messages: int,
        phases: tuple[str, ...] = (),
    ) -> None:
        """Record ``rounds`` exchange rounds in bulk.

        The count-only transport accumulates contiguous rounds sharing one
        phase stack and flushes them here, producing aggregates identical
        to ``rounds`` individual :meth:`record_round` calls (``messages``
        must be the number of non-empty directed messages in the segment).
        The per-round log is never reconstructed.
        """
        if bits_a_to_b < 0 or bits_b_to_a < 0 or rounds < 0 or messages < 0:
            raise ValueError("segment totals must be non-negative")
        self.rounds += rounds
        self.bits_alice_to_bob += bits_a_to_b
        self.bits_bob_to_alice += bits_b_to_a
        self.messages += messages
        if phases or self._active_phases:
            self._attribute(bits_a_to_b, bits_b_to_a, rounds, phases)

    def canonical(self, with_log: bool = False) -> bytes:
        """A canonical byte serialization of the transcript's contents.

        Covers the headline aggregates and the per-phase breakdown (sorted
        by phase name, so accumulation order does not matter); with
        ``with_log=True`` the full per-round log is appended too.  Two
        transcripts serialize identically iff every recorded quantity
        matches — the raw material for golden-digest tests.
        """
        doc: dict = {
            "summary": self.summary(),
            "phases": sorted(
                (name, s.bits_alice_to_bob, s.bits_bob_to_alice, s.rounds)
                for name, s in self._phases.items()
            ),
        }
        if with_log:
            doc["round_log"] = [list(pair) for pair in self.round_log]
        return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()

    def fingerprint(self, with_log: bool = False) -> str:
        """sha256 hex digest of :meth:`canonical`.

        Without the log this is transport-invariant (the parity contract:
        lockstep, count, and strict must all produce it bit-for-bit); with
        the log it additionally pins the round-by-round schedule, which
        only log-keeping transports can reproduce.
        """
        return hashlib.sha256(self.canonical(with_log=with_log)).hexdigest()

    def summary(self) -> dict[str, int]:
        """Headline numbers as a plain dict (for tables and logs)."""
        return {
            "total_bits": self.total_bits,
            "bits_alice_to_bob": self.bits_alice_to_bob,
            "bits_bob_to_alice": self.bits_bob_to_alice,
            "rounds": self.rounds,
            "messages": self.messages,
        }

    def __repr__(self) -> str:
        return (
            f"Transcript(total_bits={self.total_bits}, rounds={self.rounds}, "
            f"messages={self.messages})"
        )
