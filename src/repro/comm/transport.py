"""The Channel/Transport API: session objects over pluggable lockstep cores.

This module is the redesigned front door of the two-party simulator.  A
*channel protocol* is a generator function taking a :class:`Channel` as its
first argument and speaking through it:

* ``reply_payload = yield from ch.send(nbits, payload)`` — one simultaneous
  exchange; the declared cost comes from :mod:`repro.comm.bits` exactly as
  before;
* ``reply = ch.unwrap((yield ch.post(nbits, payload)))`` — the zero-overhead
  spelling of ``send`` for the hottest inner loops: ``post`` builds the wire
  item (and commits the declared cost) without spinning up a delegate
  generator per exchange, the protocol yields it directly, and ``unwrap``
  recovers the peer's payload from the raw wire reply;
* ``reply = yield from ch.exchange(msg)`` — the :class:`Msg`-level variant
  for callers that want the peer's declared size too (both parties must use
  ``exchange`` in that round: the schedule is common knowledge);
* ``with ch.phase("gather"):`` — phase scoping; the transport attributes
  every round recorded inside the block to the named phase (both parties
  must be in identical phase stacks each round — a mismatch is a desync);
* ``results = yield from ch.parallel({key: spec})`` — keyed sub-channels
  sharing rounds (the round cost is the max over sub-protocols, the bit
  cost the sum), subsuming ``compose_parallel``/``BatchMsg``.  A spec is a
  factory ``factory(sub) -> generator``, a *spec tuple*
  ``(proto, arg1, ...)`` invoked as ``proto(sub, arg1, ...)`` (cheaper than
  building one closure per key in per-vertex fan-outs), or — for legacy
  interop on ``Msg``-wire transports — an already-built party generator.

Behind the channel sit three transports sharing one
:class:`~repro.comm.ledger.Transcript` contract:

* :class:`LockstepTransport` — reference semantics: every message is a real
  :class:`Msg`/:class:`BatchMsg`, every parallel round allocates fresh
  scaffolding, the per-round log is kept, and desync detection matches the
  legacy runner exactly.  This transport is deliberately *not* pooled: it
  is the fresh-allocation reference the pooled count path is checked
  against (bit-for-bit) and benchmarked against (``--compare-transports``).
* :class:`CountOnlyTransport` — the allocation-free fast path for large
  sweeps: payloads travel bare on the wire (no ``Msg``, no per-send
  tuples), declared bits accumulate in an integer tally on the channel,
  parallel composition reuses pooled batch buffers across rounds, and the
  ledger is updated per contiguous phase segment — while producing
  bit-for-bit identical transcript aggregates.
* :class:`StrictTransport` — always-on verification: every payload is
  encoded through :mod:`repro.comm.codecs` and its declared ``nbits`` must
  equal the encoded length, turning the sampled codec tests into a
  transport mode.

``run_protocol`` in :mod:`repro.comm.runner` remains a thin compatibility
shim over :class:`LockstepTransport`, and :func:`as_party` adapts a channel
protocol back into a legacy ``Msg``-yielding party generator.

Pooling & object lifetimes (count transport)
--------------------------------------------

The count wire recycles exactly one kind of object: the keyed batch dicts
that ``parallel`` yields each round.  Two buffers are checked out of the
channel's freelist per ``parallel`` invocation and alternated
(double-buffered) across rounds.  The transport's round loop advances the
*sending* party before the *receiving* party consumes its previous item, so
a batch yielded in round ``r`` may still be in flight while round ``r+1``
is being built — double-buffering makes that safe, and on exit the
last-yielded buffer is dropped to the garbage collector rather than
recycled (it may still be in flight), while the other buffer returns to the
freelist.  Payloads themselves are never pooled: whatever a sub-protocol
receives it may retain forever.  ``Msg`` objects on the lockstep/strict
wire are frozen and may be *interned* (shared), never recycled — see
:func:`repro.comm.messages.intern_msg`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Generator, Hashable, Iterator, Mapping, Tuple

from . import telemetry as _telemetry
from .codecs import Codec, verify_declared_cost
from .ledger import Transcript
from .messages import EMPTY_MSG, BatchMsg, Msg, intern_msg

__all__ = [
    "Channel",
    "CountOnlyTransport",
    "LockstepTransport",
    "ProtocolDesyncError",
    "StrictTransport",
    "TRANSPORTS",
    "Transport",
    "as_party",
    "resolve_transport",
]


class ProtocolDesyncError(RuntimeError):
    """Raised when Alice's and Bob's round (or phase) schedules disagree."""


#: A channel protocol: a generator function whose first argument is the
#: channel (further arguments are protocol inputs).
ChannelProtocol = Callable[..., Generator[Any, Any, Any]]
#: What ``Transport.run`` accepts per party: a factory taking the party's
#: channel, a spec tuple ``(proto, args...)``, or (for legacy interop) an
#: already-built ``Msg`` generator — the same forms ``Channel.parallel``
#: accepts for sub-protocols.
PartyLike = Any

_SENTINEL = object()

#: Count-wire "party finished" marker.  The ``Msg`` wire can use ``None``
#: (a channel never yields it), but on the bare-payload wire ``None`` is a
#: legitimate item (silence), so termination needs a distinct sentinel.
_DONE = object()


def _start(gen: Generator) -> tuple[Any, Any]:
    """Advance a party to its first yield; return (wire item, result)."""
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


def _start_bare(gen: Generator) -> tuple[Any, Any]:
    """`_start` for the bare-payload wire, using the ``_DONE`` sentinel."""
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return _DONE, stop.value


def _spawn(spec: Any, sub: "Channel") -> Generator:
    """Instantiate one ``parallel`` sub-protocol from its spec."""
    if type(spec) is tuple:
        return spec[0](sub, *spec[1:])
    if callable(spec):
        return spec(sub)
    return spec


# ---------------------------------------------------------------------------
# channels
# ---------------------------------------------------------------------------


class Channel:
    """One party's session handle onto a transport.

    Concrete subclasses fix the wire representation (``Msg`` objects for
    the lockstep/strict transports, bare payloads for the count-only
    transport); protocols only ever talk to this interface, so one
    protocol definition runs on every transport.
    """

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        self._phases: list[str] = []

    # -- phase scoping ----------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute every round exchanged inside the block to ``name``.

        Phase stacks are part of the common-knowledge schedule: the
        transport checks both parties agree on them each round.
        """
        self._phases.append(name)
        try:
            yield
        finally:
            self._phases.pop()

    # -- point-to-point exchanges ----------------------------------------

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        """Exchange one message; returns the peer's same-round payload.

        ``codec`` is only consulted by the strict transport: it must
        encode ``payload`` into exactly ``nbits`` bits (simple integer
        and bitmap payloads are inferred automatically).
        """
        raise NotImplementedError

    def post(self, nbits: int, payload: Any = None, codec: Codec | None = None) -> Any:
        """Build the wire item for one outgoing message, committing its cost.

        The allocation-free spelling of :meth:`send` for hot loops::

            reply = ch.unwrap((yield ch.post(nbits, payload)))

        The declared cost is committed here, so the caller must yield the
        returned item in the same round (posting without yielding is a
        protocol bug).
        """
        raise NotImplementedError

    def unwrap(self, reply: Any) -> Any:
        """The peer's payload from a raw wire reply (see :meth:`post`)."""
        raise NotImplementedError

    def exchange(self, msg: Msg, codec: Codec | None = None):
        """Exchange one :class:`Msg`; returns the peer's :class:`Msg`.

        Both parties must speak ``Msg``-level in the same round: on the
        count wire the declared size does not travel on payload-level
        sends, so pairing ``exchange`` with a plain ``send`` is a schedule
        mismatch there.
        """
        raise NotImplementedError

    def recv(self):
        """Stay silent this round; returns the peer's payload."""
        raise NotImplementedError

    # -- keyed sub-channels (parallel composition) -----------------------

    def parallel(self, subprotocols: Mapping[Hashable, Any]):
        """Run keyed sub-protocols in parallel, sharing rounds.

        Each value is a factory called with a keyed sub-channel
        (``factory(sub) -> generator``), a spec tuple ``(proto, args...)``
        invoked as ``proto(sub, *args)``, or — for legacy interop on
        ``Msg``-wire transports — an already-built party generator.  The
        iteration's round cost is the max over live sub-protocols and its
        bit cost the sum, exactly as in the paper's parallel composition.
        Returns ``{key: sub-protocol return value}``.
        """
        results: dict[Hashable, Any] = {}
        live: dict[Hashable, Generator] = {}
        outgoing: dict[Hashable, Any] = {}
        for key, spec in subprotocols.items():
            gen = _spawn(spec, self._sub())
            item, result = _start(gen)
            if item is None:
                results[key] = result
            else:
                live[key] = gen
                outgoing[key] = item
        part = self._part
        while live:
            incoming = yield self._batch(outgoing)
            outgoing = {}
            for key in list(live):
                try:
                    outgoing[key] = live[key].send(part(incoming, key))
                except StopIteration as stop:
                    results[key] = stop.value
                    del live[key]
        return results

    def _sub(self) -> "Channel":
        """A keyed sub-channel: same wire flavor, shared phase stack."""
        sub = type(self)()
        sub._phases = self._phases
        return sub

    def _batch(self, parts: dict) -> Any:
        raise NotImplementedError

    def _part(self, incoming: Any, key: Hashable) -> Any:
        raise NotImplementedError


class LockstepChannel(Channel):
    """Reference wire flavor: every message is a real :class:`Msg`.

    Small messages are served from the intern tables (safe because ``Msg``
    is frozen); everything else — batches, sub-channel dicts — is freshly
    allocated every round, making this wire the reference the pooled count
    wire is validated against.
    """

    __slots__ = ()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        reply = yield intern_msg(nbits, payload)
        return reply.payload

    def post(self, nbits: int, payload: Any = None, codec: Codec | None = None) -> Msg:
        return intern_msg(nbits, payload)

    def unwrap(self, reply: Msg) -> Any:
        return reply.payload

    def exchange(self, msg: Msg, codec: Codec | None = None):
        reply = yield msg
        return reply

    def recv(self):
        reply = yield EMPTY_MSG
        return reply.payload

    def _batch(self, parts: dict) -> BatchMsg:
        return BatchMsg(parts)

    def _part(self, incoming: Any, key: Hashable) -> Msg:
        if not isinstance(incoming, BatchMsg):
            raise TypeError(
                "parallel composition expects BatchMsg from peer, "
                f"got {type(incoming).__name__}"
            )
        return incoming.parts.get(key, EMPTY_MSG)


class _CountBatch(dict):
    """Type tag for a count-wire parallel batch (a keyed payload dict).

    A bare ``dict`` subclass so the pooled parallel driver can tell a real
    batch from an arbitrary peer payload with one ``type`` check per round
    — the count-wire analogue of the ``isinstance(..., BatchMsg)`` desync
    guard.  Instances are pooled per channel; see the module docstring for
    the lifetime rules.
    """

    __slots__ = ()


class _MsgWire(tuple):
    """Count-wire item for :meth:`Channel.exchange`: ``(nbits, payload)``.

    Plain sends travel as bare payloads, so ``exchange`` — which must
    deliver the peer's *declared size* too — tags its item with this
    subclass.  Receiving anything else means the peer spoke payload-level
    in an ``exchange`` round: a schedule mismatch.
    """

    __slots__ = ()


class CountChannel(Channel):
    """Count-only wire flavor: bare payloads plus an integer bit tally.

    Nothing is allocated per send: the payload itself is the wire item and
    the declared cost accumulates in :attr:`pending_bits`, which the
    transport drains once per round.  Keyed parallel batches are pooled
    dicts (see the module docstring), and sub-channels are the channel
    itself — a ``CountChannel`` carries no per-exchange state beyond the
    shared tally and phase stack, so no per-key session objects exist at
    all.
    """

    __slots__ = ("pending_bits", "_pool")

    def __init__(self) -> None:
        super().__init__()
        #: Declared bits committed since the transport last drained the
        #: tally (i.e. this round's outgoing cost).
        self.pending_bits = 0
        self._pool: list[_CountBatch] = []

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        if nbits > 0:
            self.pending_bits += nbits
        elif nbits < 0:
            raise ValueError(f"message size must be non-negative, got {nbits}")
        reply = yield payload
        return reply

    def post(self, nbits: int, payload: Any = None, codec: Codec | None = None) -> Any:
        if nbits > 0:
            self.pending_bits += nbits
        elif nbits < 0:
            raise ValueError(f"message size must be non-negative, got {nbits}")
        return payload

    def unwrap(self, reply: Any) -> Any:
        return reply

    def exchange(self, msg: Msg, codec: Codec | None = None):
        if msg.nbits:
            self.pending_bits += msg.nbits
        reply = yield _MsgWire((msg.nbits, msg.payload))
        if type(reply) is _MsgWire:
            return Msg(reply[0], reply[1])
        raise ProtocolDesyncError(
            "Msg-level exchange on the count wire requires the peer to use "
            "exchange in the same round (declared sizes do not travel on "
            "payload-level sends)"
        )

    def recv(self):
        reply = yield None
        return reply

    def parallel(self, subprotocols: Mapping[Hashable, Any]):
        """Pooled parallel composition (see the module docstring).

        Sub-channels are ``self`` (count channels hold no per-exchange
        state), outgoing batches are two freelist dicts alternated across
        rounds, and finished sub-protocols are compacted out of flat
        parallel key/generator lists in place — the per-round cost is one
        dict clear plus one ``gen.send`` per live sub-protocol.
        """
        results: dict[Hashable, Any] = {}
        live_keys: list[Hashable] = []
        live_gens: list[Generator] = []
        pool = self._pool
        if _telemetry.enabled:
            # One gated branch per parallel() invocation (not per round):
            # how many of the two checkout buffers came off the freelist.
            available = min(len(pool), 2)
            _telemetry.pool_reused += available
            _telemetry.pool_allocated += 2 - available
        outgoing = pool.pop() if pool else _CountBatch()
        spare = pool.pop() if pool else _CountBatch()
        for key, spec in subprotocols.items():
            gen = _spawn(spec, self)
            try:
                item = next(gen)
            except StopIteration as stop:
                results[key] = stop.value
            else:
                live_keys.append(key)
                live_gens.append(gen)
                outgoing[key] = item
        if not live_keys:
            # Nothing ever hit the wire: both buffers are still ours.
            pool.append(outgoing)
            pool.append(spare)
            return results
        while live_keys:
            incoming = yield outgoing
            if type(incoming) is not _CountBatch:
                raise TypeError(
                    "parallel composition expects a keyed batch from peer, "
                    f"got {type(incoming).__name__}"
                )
            # Alternate buffers: the batch just yielded may still be in
            # flight (the transport advances us before the peer consumes
            # it), but the one from two rounds ago has been delivered.
            outgoing, spare = spare, outgoing
            outgoing.clear()
            get = incoming.get
            write = 0
            n_live = len(live_keys)
            for read in range(n_live):
                key = live_keys[read]
                gen = live_gens[read]
                try:
                    item = gen.send(get(key))
                except StopIteration as stop:
                    results[key] = stop.value
                else:
                    outgoing[key] = item
                    if write != read:
                        live_keys[write] = key
                        live_gens[write] = gen
                    write += 1
            if write != n_live:
                del live_keys[write:]
                del live_gens[write:]
        # `spare` was yielded last round and may still be in flight to the
        # peer — drop it to the GC; `outgoing` is empty and fully ours.
        pool.append(outgoing)
        return results


class StrictChannel(LockstepChannel):
    """Lockstep wire flavor + codec verification on every outgoing message."""

    __slots__ = ()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        verify_declared_cost(nbits, payload, codec)
        reply = yield intern_msg(nbits, payload)
        return reply.payload

    def post(self, nbits: int, payload: Any = None, codec: Codec | None = None) -> Msg:
        verify_declared_cost(nbits, payload, codec)
        return intern_msg(nbits, payload)

    def exchange(self, msg: Msg, codec: Codec | None = None):
        verify_declared_cost(msg.nbits, msg.payload, codec)
        reply = yield msg
        return reply


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class Transport:
    """A lockstep execution core behind a pair of :class:`Channel` objects.

    All transports share the round loop (and therefore desync detection);
    subclasses fix the channel class, how a wire item's declared size is
    read, and the transcript configuration.
    """

    name = "abstract"
    channel_class: type[Channel] = Channel

    def new_transcript(self) -> Transcript:
        """A transcript configured for this transport's bookkeeping."""
        return Transcript()

    @staticmethod
    def _item_nbits(item: Any) -> int:
        raise NotImplementedError

    def run(
        self,
        alice: PartyLike,
        bob: PartyLike,
        transcript: Transcript | None = None,
    ) -> Tuple[Any, Any, Transcript]:
        """Run a channel-protocol pair (or legacy generators) to completion.

        ``alice``/``bob`` take the same spec forms as
        :meth:`Channel.parallel`: a factory called with the party's channel
        (``factory(ch) -> generator``), a spec tuple ``(proto, args...)``
        invoked as ``proto(ch, *args)``, or — for legacy ``Msg`` protocols
        on ``Msg``-wire transports — an already-built generator.  Returns
        ``(alice_result, bob_result, transcript)``; raises
        :class:`ProtocolDesyncError` if the parties' round or phase
        schedules disagree.
        """
        if transcript is None:
            transcript = self.new_transcript()
        a_ch = self.channel_class()
        b_ch = self.channel_class()
        a_gen = _spawn(alice, a_ch)
        b_gen = _spawn(bob, b_ch)

        nbits = self._item_nbits
        record = transcript.record_round
        a_phases = a_ch._phases
        b_phases = b_ch._phases

        # The stepping is inlined (rather than routed through _start/_step)
        # because this loop runs once per round of every protocol in the
        # repo; the try/except costs nothing on the non-raising path.
        a_item, a_result = _start(a_gen)
        b_item, b_result = _start(b_gen)
        a_done = a_item is None
        b_done = b_item is None
        a_send = a_gen.send
        b_send = b_gen.send
        while True:
            if a_done or b_done:
                if a_done and b_done:
                    return a_result, b_result, transcript
                lagging = "Bob" if a_done else "Alice"
                raise ProtocolDesyncError(
                    f"{lagging} wants another round after round "
                    f"{transcript.rounds}, but the peer already terminated"
                )
            if a_phases or b_phases:
                if a_phases != b_phases:
                    raise ProtocolDesyncError(
                        f"phase schedules disagree in round "
                        f"{transcript.rounds}: Alice {a_phases!r} vs "
                        f"Bob {b_phases!r}"
                    )
                record(nbits(a_item), nbits(b_item), tuple(a_phases))
            else:
                record(nbits(a_item), nbits(b_item))
            incoming_for_bob = a_item
            try:
                a_item = a_send(b_item)
            except StopIteration as stop:
                a_result = stop.value
                a_done = True
            try:
                b_item = b_send(incoming_for_bob)
            except StopIteration as stop:
                b_result = stop.value
                b_done = True


class LockstepTransport(Transport):
    """Current semantics: real ``Msg`` objects, full per-round log."""

    name = "lockstep"
    channel_class = LockstepChannel

    @staticmethod
    def _item_nbits(item: Any) -> int:
        return item.nbits


class CountOnlyTransport(Transport):
    """The allocation-free count path for large sweeps.

    Payloads travel bare on the wire; declared bits accumulate in each
    channel's integer tally, which this loop drains once per round (so a
    send allocates nothing — not even a pair).  Ledger updates are batched
    per contiguous phase segment instead of paying a
    :meth:`~repro.comm.ledger.Transcript.record_round` call every round;
    transcript aggregates (totals, rounds, messages, per-phase stats) are
    bit-for-bit identical to the lockstep transport's.
    """

    name = "count"
    channel_class = CountChannel

    def new_transcript(self) -> Transcript:
        return Transcript(record_log=False)

    def run(
        self,
        alice: PartyLike,
        bob: PartyLike,
        transcript: Transcript | None = None,
    ) -> Tuple[Any, Any, Transcript]:
        if transcript is None:
            transcript = Transcript(record_log=False)
        a_ch = CountChannel()
        b_ch = CountChannel()
        a_gen = _spawn(alice, a_ch)
        b_gen = _spawn(bob, b_ch)

        a_phases = a_ch._phases
        b_phases = b_ch._phases
        record_segment = transcript.record_segment

        a_item, a_result = _start_bare(a_gen)
        b_item, b_result = _start_bare(b_gen)
        a_done = a_item is _DONE
        b_done = b_item is _DONE
        a_send = a_gen.send
        b_send = b_gen.send

        # Contiguous rounds sharing one phase stack accumulate in locals
        # and flush in bulk — the hot loop's only per-round obligations are
        # draining the two bit tallies and the schedule checks.
        seg_phases: list[str] = []
        a2b = b2a = rounds = messages = 0
        while True:
            if a_done or b_done:
                if rounds:
                    record_segment(a2b, b2a, rounds, messages, tuple(seg_phases))
                if a_done and b_done:
                    return a_result, b_result, transcript
                lagging = "Bob" if a_done else "Alice"
                raise ProtocolDesyncError(
                    f"{lagging} wants another round after round "
                    f"{transcript.rounds}, but the peer already terminated"
                )
            if a_phases != b_phases:
                raise ProtocolDesyncError(
                    f"phase schedules disagree in round "
                    f"{transcript.rounds + rounds}: Alice {a_phases!r} vs "
                    f"Bob {b_phases!r}"
                )
            if a_phases != seg_phases:
                if rounds:
                    record_segment(a2b, b2a, rounds, messages, tuple(seg_phases))
                    a2b = b2a = rounds = messages = 0
                seg_phases = list(a_phases)
            # The tallies hold the bits committed while producing this
            # round's items (sends tally before they yield).
            bits = a_ch.pending_bits
            if bits:
                a_ch.pending_bits = 0
                a2b += bits
                messages += 1
            bits = b_ch.pending_bits
            if bits:
                b_ch.pending_bits = 0
                b2a += bits
                messages += 1
            rounds += 1
            incoming_for_bob = a_item
            try:
                a_item = a_send(b_item)
            except StopIteration as stop:
                a_result = stop.value
                a_done = True
            try:
                b_item = b_send(incoming_for_bob)
            except StopIteration as stop:
                b_result = stop.value
                b_done = True


class StrictTransport(LockstepTransport):
    """Lockstep semantics + always-on codec verification.

    Every message's payload is encoded through :mod:`repro.comm.codecs`
    (via an explicit per-send codec or shape inference) and the declared
    ``nbits`` must equal the encoded length, else
    :class:`~repro.comm.codecs.CodecMismatchError` is raised at the
    offending send.
    """

    name = "strict"
    channel_class = StrictChannel


#: Transport registry: the CLI/engine ``--transport`` axis.  Transports are
#: stateless, so the registry holds shared instances.
TRANSPORTS: dict[str, Transport] = {
    "lockstep": LockstepTransport(),
    "count": CountOnlyTransport(),
    "strict": StrictTransport(),
}


def resolve_transport(transport: str | Transport | None) -> Transport:
    """Coerce a transport name (or ``None`` → lockstep) to an instance."""
    if transport is None:
        return TRANSPORTS["lockstep"]
    if isinstance(transport, Transport):
        return transport
    try:
        return TRANSPORTS[transport]
    except KeyError:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of "
            f"{sorted(TRANSPORTS)}"
        ) from None


def as_party(proto: ChannelProtocol, *args: Any, **kwargs: Any):
    """Adapt a channel protocol into a legacy ``Msg``-yielding generator.

    The returned generator speaks the lockstep wire format, so it composes
    with :func:`repro.comm.runner.run_protocol`,
    :func:`repro.comm.parallel.compose_parallel`, and hand-written ``Msg``
    generators — the migration story for code still on the generator API.
    """
    result = yield from proto(LockstepChannel(), *args, **kwargs)
    return result
