"""The Channel/Transport API: session objects over pluggable lockstep cores.

This module is the redesigned front door of the two-party simulator.  A
*channel protocol* is a generator function taking a :class:`Channel` as its
first argument and speaking through it:

* ``reply_payload = yield from ch.send(nbits, payload)`` — one simultaneous
  exchange; the declared cost comes from :mod:`repro.comm.bits` exactly as
  before;
* ``reply = yield from ch.exchange(msg)`` — the :class:`Msg`-level variant
  for callers that want the peer's declared size too;
* ``with ch.phase("gather"):`` — phase scoping; the transport attributes
  every round recorded inside the block to the named phase (both parties
  must be in identical phase stacks each round — the schedule is common
  knowledge, so a mismatch is a desync);
* ``results = yield from ch.parallel({key: factory})`` — keyed sub-channels
  sharing rounds (the round cost is the max over sub-protocols, the bit
  cost the sum), subsuming ``compose_parallel``/``BatchMsg``.

Behind the channel sit three transports sharing one
:class:`~repro.comm.ledger.Transcript` contract:

* :class:`LockstepTransport` — reference semantics: every message is a real
  :class:`Msg`/:class:`BatchMsg`, the per-round log is kept, and desync
  detection matches the legacy runner exactly.
* :class:`CountOnlyTransport` — the fast path for large sweeps: messages
  travel as plain ``(nbits, payload)`` pairs (no ``Msg`` allocation, no
  ``BatchMsg``, no per-round log) while producing bit-for-bit identical
  transcript aggregates.
* :class:`StrictTransport` — always-on verification: every payload is
  encoded through :mod:`repro.comm.codecs` and its declared ``nbits`` must
  equal the encoded length, turning the sampled codec tests into a
  transport mode.

``run_protocol`` in :mod:`repro.comm.runner` remains a thin compatibility
shim over :class:`LockstepTransport`, and :func:`as_party` adapts a channel
protocol back into a legacy ``Msg``-yielding party generator.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Generator, Hashable, Iterator, Mapping, Tuple

from .codecs import Codec, verify_declared_cost
from .ledger import Transcript
from .messages import EMPTY_MSG, BatchMsg, Msg

__all__ = [
    "Channel",
    "CountOnlyTransport",
    "LockstepTransport",
    "ProtocolDesyncError",
    "StrictTransport",
    "TRANSPORTS",
    "Transport",
    "as_party",
    "resolve_transport",
]


class ProtocolDesyncError(RuntimeError):
    """Raised when Alice's and Bob's round (or phase) schedules disagree."""


#: A channel protocol: a generator function whose first argument is the
#: channel (further arguments are protocol inputs).
ChannelProtocol = Callable[..., Generator[Any, Any, Any]]
#: What ``Transport.run`` accepts per party: a factory taking the party's
#: channel, or (for legacy interop) an already-built ``Msg`` generator.
PartyLike = Any

_SENTINEL = object()

#: The count-only wire representation of a silent message.
EMPTY_PAIR = (0, None)


def _start(gen: Generator) -> tuple[Any, Any]:
    """Advance a party to its first yield; return (wire item, result)."""
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


# ---------------------------------------------------------------------------
# channels
# ---------------------------------------------------------------------------


class Channel:
    """One party's session handle onto a transport.

    Concrete subclasses fix the wire representation (``Msg`` objects for
    the lockstep/strict transports, ``(nbits, payload)`` pairs for the
    count-only transport); protocols only ever talk to this interface, so
    one protocol definition runs on every transport.
    """

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        self._phases: list[str] = []

    # -- phase scoping ----------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute every round exchanged inside the block to ``name``.

        Phase stacks are part of the common-knowledge schedule: the
        transport checks both parties agree on them each round.
        """
        self._phases.append(name)
        try:
            yield
        finally:
            self._phases.pop()

    # -- point-to-point exchanges ----------------------------------------

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        """Exchange one message; returns the peer's same-round payload.

        ``codec`` is only consulted by the strict transport: it must
        encode ``payload`` into exactly ``nbits`` bits (simple integer
        and bitmap payloads are inferred automatically).
        """
        raise NotImplementedError

    def exchange(self, msg: Msg, codec: Codec | None = None):
        """Exchange one :class:`Msg`; returns the peer's :class:`Msg`."""
        raise NotImplementedError

    def recv(self):
        """Stay silent this round; returns the peer's payload."""
        raise NotImplementedError

    # -- keyed sub-channels (parallel composition) -----------------------

    def parallel(self, subprotocols: Mapping[Hashable, Any]):
        """Run keyed sub-protocols in parallel, sharing rounds.

        Each value is a factory called with a fresh keyed sub-channel
        (``factory(sub) -> generator``) — or, for legacy interop on
        ``Msg``-wire transports, an already-built party generator.  The
        iteration's round cost is the max over live sub-protocols and its
        bit cost the sum, exactly as in the paper's parallel composition.
        Returns ``{key: sub-protocol return value}``.
        """
        results: dict[Hashable, Any] = {}
        live: dict[Hashable, Generator] = {}
        outgoing: dict[Hashable, Any] = {}
        for key, factory in subprotocols.items():
            gen = factory(self._sub()) if callable(factory) else factory
            item, result = _start(gen)
            if item is None:
                results[key] = result
            else:
                live[key] = gen
                outgoing[key] = item
        part = self._part
        while live:
            incoming = yield self._batch(outgoing)
            outgoing = {}
            for key in list(live):
                try:
                    outgoing[key] = live[key].send(part(incoming, key))
                except StopIteration as stop:
                    results[key] = stop.value
                    del live[key]
        return results

    def _sub(self) -> "Channel":
        """A keyed sub-channel: same wire flavor, shared phase stack."""
        sub = type(self)()
        sub._phases = self._phases
        return sub

    def _batch(self, parts: dict) -> Any:
        raise NotImplementedError

    def _part(self, incoming: Any, key: Hashable) -> Any:
        raise NotImplementedError


class LockstepChannel(Channel):
    """Reference wire flavor: every message is a real :class:`Msg`."""

    __slots__ = ()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        reply = yield (
            EMPTY_MSG if nbits == 0 and payload is None else Msg(nbits, payload)
        )
        return reply.payload

    def exchange(self, msg: Msg, codec: Codec | None = None):
        reply = yield msg
        return reply

    def recv(self):
        reply = yield EMPTY_MSG
        return reply.payload

    def _batch(self, parts: dict) -> BatchMsg:
        return BatchMsg(parts)

    def _part(self, incoming: Any, key: Hashable) -> Msg:
        if not isinstance(incoming, BatchMsg):
            raise TypeError(
                "parallel composition expects BatchMsg from peer, "
                f"got {type(incoming).__name__}"
            )
        return incoming.parts.get(key, EMPTY_MSG)


class _CountBatch(tuple):
    """Type tag for a count-wire parallel batch ``(total_nbits, parts)``.

    A bare subclass so ``Channel.parallel`` can tell a real batch from an
    arbitrary peer payload — the count-wire analogue of the
    ``isinstance(..., BatchMsg)`` desync guard.
    """

    __slots__ = ()


class CountChannel(Channel):
    """Count-only wire flavor: plain ``(nbits, payload)`` pairs.

    No :class:`Msg`/:class:`BatchMsg` objects are materialized anywhere
    on this path — tuples are cheap, and the peer's part tuples are
    delivered as-is to sub-channels.
    """

    __slots__ = ()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        reply = yield (nbits, payload)
        return reply[1]

    def exchange(self, msg: Msg, codec: Codec | None = None):
        reply = yield (msg.nbits, msg.payload)
        return Msg(reply[0], reply[1])

    def recv(self):
        reply = yield EMPTY_PAIR
        return reply[1]

    def _batch(self, parts: dict) -> tuple[int, dict]:
        total = 0
        for item in parts.values():
            bits = item[0]
            if bits < 0:
                raise ValueError("message size must be non-negative")
            total += bits
        return _CountBatch((total, parts))

    def _part(self, incoming: Any, key: Hashable) -> tuple:
        # Mirror LockstepChannel._part's desync guard: a peer outside the
        # parallel composition must fail loudly, not deliver garbage.
        if type(incoming) is not _CountBatch:
            raise TypeError(
                "parallel composition expects a keyed batch from peer, "
                f"got {type(incoming).__name__}"
            )
        return incoming[1].get(key, EMPTY_PAIR)


class StrictChannel(LockstepChannel):
    """Lockstep wire flavor + codec verification on every outgoing message."""

    __slots__ = ()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        verify_declared_cost(nbits, payload, codec)
        reply = yield (
            EMPTY_MSG if nbits == 0 and payload is None else Msg(nbits, payload)
        )
        return reply.payload

    def exchange(self, msg: Msg, codec: Codec | None = None):
        verify_declared_cost(msg.nbits, msg.payload, codec)
        reply = yield msg
        return reply


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class Transport:
    """A lockstep execution core behind a pair of :class:`Channel` objects.

    All transports share the round loop (and therefore desync detection);
    subclasses fix the channel class, how a wire item's declared size is
    read, and the transcript configuration.
    """

    name = "abstract"
    channel_class: type[Channel] = Channel

    def new_transcript(self) -> Transcript:
        """A transcript configured for this transport's bookkeeping."""
        return Transcript()

    @staticmethod
    def _item_nbits(item: Any) -> int:
        raise NotImplementedError

    def run(
        self,
        alice: PartyLike,
        bob: PartyLike,
        transcript: Transcript | None = None,
    ) -> Tuple[Any, Any, Transcript]:
        """Run a channel-protocol pair (or legacy generators) to completion.

        ``alice``/``bob`` are factories called with each party's channel
        (``factory(ch) -> generator``); already-built generators are
        accepted for legacy ``Msg`` protocols on ``Msg``-wire transports.
        Returns ``(alice_result, bob_result, transcript)``; raises
        :class:`ProtocolDesyncError` if the parties' round or phase
        schedules disagree.
        """
        if transcript is None:
            transcript = self.new_transcript()
        a_ch = self.channel_class()
        b_ch = self.channel_class()
        a_gen = alice(a_ch) if callable(alice) else alice
        b_gen = bob(b_ch) if callable(bob) else bob

        nbits = self._item_nbits
        record = transcript.record_round
        a_phases = a_ch._phases
        b_phases = b_ch._phases

        # The stepping is inlined (rather than routed through _start/_step)
        # because this loop runs once per round of every protocol in the
        # repo; the try/except costs nothing on the non-raising path.
        a_item, a_result = _start(a_gen)
        b_item, b_result = _start(b_gen)
        a_done = a_item is None
        b_done = b_item is None
        a_send = a_gen.send
        b_send = b_gen.send
        while True:
            if a_done or b_done:
                if a_done and b_done:
                    return a_result, b_result, transcript
                lagging = "Bob" if a_done else "Alice"
                raise ProtocolDesyncError(
                    f"{lagging} wants another round after round "
                    f"{transcript.rounds}, but the peer already terminated"
                )
            if a_phases or b_phases:
                if a_phases != b_phases:
                    raise ProtocolDesyncError(
                        f"phase schedules disagree in round "
                        f"{transcript.rounds}: Alice {a_phases!r} vs "
                        f"Bob {b_phases!r}"
                    )
                record(nbits(a_item), nbits(b_item), tuple(a_phases))
            else:
                record(nbits(a_item), nbits(b_item))
            incoming_for_bob = a_item
            try:
                a_item = a_send(b_item)
            except StopIteration as stop:
                a_result = stop.value
                a_done = True
            try:
                b_item = b_send(incoming_for_bob)
            except StopIteration as stop:
                b_result = stop.value
                b_done = True


class LockstepTransport(Transport):
    """Current semantics: real ``Msg`` objects, full per-round log."""

    name = "lockstep"
    channel_class = LockstepChannel

    @staticmethod
    def _item_nbits(item: Any) -> int:
        return item.nbits


class CountOnlyTransport(Transport):
    """The count-only fast path for large sweeps.

    Skips ``Msg``/``BatchMsg`` materialization and the per-round log, and
    batches ledger updates per contiguous phase segment instead of paying
    a :meth:`~repro.comm.ledger.Transcript.record_round` call every round;
    transcript aggregates (totals, rounds, messages, per-phase stats) are
    bit-for-bit identical to the lockstep transport's.
    """

    name = "count"
    channel_class = CountChannel

    def new_transcript(self) -> Transcript:
        return Transcript(record_log=False)

    @staticmethod
    def _item_nbits(item: Any) -> int:
        return item[0]

    def run(
        self,
        alice: PartyLike,
        bob: PartyLike,
        transcript: Transcript | None = None,
    ) -> Tuple[Any, Any, Transcript]:
        if transcript is None:
            transcript = Transcript(record_log=False)
        a_ch = CountChannel()
        b_ch = CountChannel()
        a_gen = alice(a_ch) if callable(alice) else alice
        b_gen = bob(b_ch) if callable(bob) else bob

        a_phases = a_ch._phases
        b_phases = b_ch._phases

        a_item, a_result = _start(a_gen)
        b_item, b_result = _start(b_gen)
        a_done = a_item is None
        b_done = b_item is None
        a_send = a_gen.send
        b_send = b_gen.send

        # Contiguous rounds sharing one phase stack accumulate in locals
        # and flush in bulk — the hot loop's only per-round obligations are
        # the counters and the common-knowledge schedule checks.
        seg_phases: list[str] = []
        a2b = b2a = rounds = messages = 0
        while True:
            if a_done or b_done:
                if rounds:
                    transcript.record_segment(
                        a2b, b2a, rounds, messages, tuple(seg_phases)
                    )
                if a_done and b_done:
                    return a_result, b_result, transcript
                lagging = "Bob" if a_done else "Alice"
                raise ProtocolDesyncError(
                    f"{lagging} wants another round after round "
                    f"{transcript.rounds}, but the peer already terminated"
                )
            if a_phases != b_phases:
                raise ProtocolDesyncError(
                    f"phase schedules disagree in round "
                    f"{transcript.rounds + rounds}: Alice {a_phases!r} vs "
                    f"Bob {b_phases!r}"
                )
            if a_phases != seg_phases:
                if rounds:
                    transcript.record_segment(
                        a2b, b2a, rounds, messages, tuple(seg_phases)
                    )
                    a2b = b2a = rounds = messages = 0
                seg_phases = list(a_phases)
            bits = a_item[0]
            if bits > 0:
                messages += 1
                a2b += bits
            elif bits < 0:
                raise ValueError("bit counts must be non-negative")
            bits = b_item[0]
            if bits > 0:
                messages += 1
                b2a += bits
            elif bits < 0:
                raise ValueError("bit counts must be non-negative")
            rounds += 1
            incoming_for_bob = a_item
            try:
                a_item = a_send(b_item)
            except StopIteration as stop:
                a_result = stop.value
                a_done = True
            try:
                b_item = b_send(incoming_for_bob)
            except StopIteration as stop:
                b_result = stop.value
                b_done = True


class StrictTransport(LockstepTransport):
    """Lockstep semantics + always-on codec verification.

    Every message's payload is encoded through :mod:`repro.comm.codecs`
    (via an explicit per-send codec or shape inference) and the declared
    ``nbits`` must equal the encoded length, else
    :class:`~repro.comm.codecs.CodecMismatchError` is raised at the
    offending send.
    """

    name = "strict"
    channel_class = StrictChannel


#: Transport registry: the CLI/engine ``--transport`` axis.  Transports are
#: stateless, so the registry holds shared instances.
TRANSPORTS: dict[str, Transport] = {
    "lockstep": LockstepTransport(),
    "count": CountOnlyTransport(),
    "strict": StrictTransport(),
}


def resolve_transport(transport: str | Transport | None) -> Transport:
    """Coerce a transport name (or ``None`` → lockstep) to an instance."""
    if transport is None:
        return TRANSPORTS["lockstep"]
    if isinstance(transport, Transport):
        return transport
    try:
        return TRANSPORTS[transport]
    except KeyError:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of "
            f"{sorted(TRANSPORTS)}"
        ) from None


def as_party(proto: ChannelProtocol, *args: Any, **kwargs: Any):
    """Adapt a channel protocol into a legacy ``Msg``-yielding generator.

    The returned generator speaks the lockstep wire format, so it composes
    with :func:`repro.comm.runner.run_protocol`,
    :func:`repro.comm.parallel.compose_parallel`, and hand-written ``Msg``
    generators — the migration story for code still on the generator API.
    """
    result = yield from proto(LockstepChannel(), *args, **kwargs)
    return result
