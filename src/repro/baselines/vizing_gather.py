"""Gather-and-Vizing: a trivial ``(Δ+1)``-edge coloring protocol.

The paper's conclusion asks for the optimal communication complexity of
``(Δ+1)``-edge coloring (Vizing's theorem guarantees existence).  No
non-trivial protocol is known; this module pins the *trivial* upper bound
as an anchor: both parties exchange their full edge sets in one
simultaneous round (``Θ(m log n)`` bits) and each runs the same
deterministic Misra–Gries/Vizing algorithm locally.  The open question is
whether ``O(n·polylog)`` — or even ``O(n)`` — is achievable; the E4
experiment's contrast row shows how far this anchor sits above Theorem 2's
``(2Δ−1)``-color cost.
"""

from __future__ import annotations

from typing import Generator

from ..comm.bits import gamma_cost, uint_cost
from ..comm.ledger import Transcript
from ..comm.messages import Msg
from ..comm.runner import run_protocol
from ..coloring.vizing import vizing_edge_coloring
from ..graphs.graph import Edge, Graph, canonical_edge
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["run_vizing_gather", "vizing_gather_party"]


def vizing_gather_party(
    own_graph: Graph,
    num_colors: int,
) -> Generator[Msg, Msg, dict[Edge, int]]:
    """One party's side: ship everything, Vizing-color the union locally.

    Returns only the colors of this party's own edges (the model's output
    requirement for edge coloring).
    """
    n = own_graph.n
    edges = tuple(own_graph.edges())
    edge_width = 2 * uint_cost(max(n - 1, 1))
    cost = gamma_cost(len(edges) + 1) + len(edges) * edge_width
    reply = yield Msg(cost, edges)
    union = Graph(n, list(edges) + list(reply.payload))
    full_coloring = vizing_edge_coloring(union, num_colors=num_colors)
    return {
        canonical_edge(u, v): full_coloring[canonical_edge(u, v)]
        for u, v in edges
    }


def run_vizing_gather(partition: EdgePartition) -> BaselineResult:
    """Measure the trivial ``(Δ+1)``-edge coloring protocol.

    The result's ``colors`` hold the union coloring; ``num_colors`` is the
    Vizing palette ``Δ+1``.
    """
    delta = partition.max_degree
    num_colors = max(delta + 1, 1)
    transcript = Transcript()
    alice, bob, _ = run_protocol(
        vizing_gather_party(partition.alice_graph, num_colors),
        vizing_gather_party(partition.bob_graph, num_colors),
        transcript,
    )
    merged = dict(alice)
    merged.update(bob)
    return BaselineResult("vizing_gather", merged, transcript, num_colors)
