"""Gather-and-Vizing: a trivial ``(Δ+1)``-edge coloring protocol.

The paper's conclusion asks for the optimal communication complexity of
``(Δ+1)``-edge coloring (Vizing's theorem guarantees existence).  No
non-trivial protocol is known; this module pins the *trivial* upper bound
as an anchor: both parties exchange their full edge sets in one
simultaneous round (``Θ(m log n)`` bits) and each runs the same
deterministic Misra–Gries/Vizing algorithm locally.  The open question is
whether ``O(n·polylog)`` — or even ``O(n)`` — is achievable; the E4
experiment's contrast row shows how far this anchor sits above Theorem 2's
``(2Δ−1)``-color cost.
"""

from __future__ import annotations

from ..comm.bits import gamma_cost, uint_cost
from ..comm.codecs import edge_list_codec
from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream
from ..coloring.vizing import vizing_edge_coloring
from ..graphs.graph import Graph, canonical_edge
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["run_vizing_gather", "vizing_gather_party", "vizing_gather_proto"]


def vizing_gather_proto(ch: Channel, own_graph: Graph, num_colors: int):
    """One party's side: ship everything, Vizing-color the union locally.

    Returns only the colors of this party's own edges (the model's output
    requirement for edge coloring).
    """
    n = own_graph.n
    edges = tuple(own_graph.edges())
    edge_width = 2 * uint_cost(max(n - 1, 1))
    cost = gamma_cost(len(edges) + 1) + len(edges) * edge_width
    peer_edges = yield from ch.send(
        cost, edges, codec=edge_list_codec(n)
    )
    union = Graph(n, list(edges) + list(peer_edges))
    full_coloring = vizing_edge_coloring(union, num_colors=num_colors)
    return {
        canonical_edge(u, v): full_coloring[canonical_edge(u, v)]
        for u, v in edges
    }


def vizing_gather_party(own_graph: Graph, num_colors: int):
    """Legacy generator-API adapter for :func:`vizing_gather_proto`."""
    return as_party(vizing_gather_proto, own_graph, num_colors)


def run_vizing_gather(
    partition: EdgePartition,
    transport: str | Transport | None = None,
    seed: int | None = None,
    rand: Stream | None = None,
) -> BaselineResult:
    """Measure the trivial ``(Δ+1)``-edge coloring protocol.

    The result's ``colors`` hold the union coloring; ``num_colors`` is the
    Vizing palette ``Δ+1``.  ``seed``/``rand`` are accepted for
    driver-signature uniformity; the protocol is deterministic.
    """
    delta = partition.max_degree
    num_colors = max(delta + 1, 1)
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    alice, bob, _ = core.run(
        lambda ch: vizing_gather_proto(ch, partition.alice_graph, num_colors),
        lambda ch: vizing_gather_proto(ch, partition.bob_graph, num_colors),
        transcript,
    )
    merged = dict(alice)
    merged.update(bob)
    return BaselineResult("vizing_gather", merged, transcript, num_colors)
