"""Naive full-exchange baseline: ship the graph, color locally.

Both parties simultaneously send their entire edge sets; each then runs the
same deterministic greedy coloring on the reconstructed graph.  One round,
``Θ(m log n)`` bits — the upper anchor every ``O(n)``-bit protocol is
compared against (it loses by a factor ``Θ(Δ log n)`` on dense graphs).
"""

from __future__ import annotations

from typing import Generator

from ..comm.bits import gamma_cost, uint_cost
from ..comm.ledger import Transcript
from ..comm.messages import Msg
from ..comm.runner import run_protocol
from ..coloring.greedy import greedy_vertex_coloring
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["naive_exchange_party", "run_naive_exchange"]


def naive_exchange_party(
    own_graph: Graph,
    num_colors: int,
) -> Generator[Msg, Msg, dict[int, int]]:
    """One party's side of the full-exchange protocol."""
    n = own_graph.n
    edges = tuple(own_graph.edges())
    edge_width = 2 * uint_cost(max(n - 1, 1))
    cost = gamma_cost(len(edges) + 1) + len(edges) * edge_width
    reply = yield Msg(cost, edges)
    full = Graph(n, list(edges) + list(reply.payload))
    return greedy_vertex_coloring(full, num_colors=num_colors)


def run_naive_exchange(partition: EdgePartition) -> BaselineResult:
    """Run the naive baseline on an edge-partitioned graph, measured."""
    delta = partition.max_degree
    num_colors = delta + 1
    transcript = Transcript()
    a_colors, b_colors, _ = run_protocol(
        naive_exchange_party(partition.alice_graph, num_colors),
        naive_exchange_party(partition.bob_graph, num_colors),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("naive parties disagree on the coloring")
    return BaselineResult("naive_exchange", a_colors, transcript, num_colors)
