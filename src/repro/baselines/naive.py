"""Naive full-exchange baseline: ship the graph, color locally.

Both parties simultaneously send their entire edge sets; each then runs the
same deterministic greedy coloring on the reconstructed graph.  One round,
``Θ(m log n)`` bits — the upper anchor every ``O(n)``-bit protocol is
compared against (it loses by a factor ``Θ(Δ log n)`` on dense graphs).
"""

from __future__ import annotations

from ..comm.bits import gamma_cost, uint_cost
from ..comm.codecs import edge_list_codec
from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream
from ..coloring.greedy import greedy_vertex_coloring
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["naive_exchange_party", "naive_exchange_proto", "run_naive_exchange"]


def naive_exchange_proto(ch: Channel, own_graph: Graph, num_colors: int):
    """One party's side of the full-exchange protocol."""
    n = own_graph.n
    edges = tuple(own_graph.edges())
    edge_width = 2 * uint_cost(max(n - 1, 1))
    cost = gamma_cost(len(edges) + 1) + len(edges) * edge_width
    peer_edges = yield from ch.send(
        cost, edges, codec=edge_list_codec(n)
    )
    full = Graph(n, list(edges) + list(peer_edges))
    return greedy_vertex_coloring(full, num_colors=num_colors)


def naive_exchange_party(own_graph: Graph, num_colors: int):
    """Legacy generator-API adapter for :func:`naive_exchange_proto`."""
    return as_party(naive_exchange_proto, own_graph, num_colors)


def run_naive_exchange(
    partition: EdgePartition,
    transport: str | Transport | None = None,
    seed: int | None = None,
    rand: Stream | None = None,
) -> BaselineResult:
    """Run the naive baseline on an edge-partitioned graph, measured.

    ``seed``/``rand`` are accepted for driver-signature uniformity; the
    protocol is deterministic and draws nothing from them.
    """
    delta = partition.max_degree
    num_colors = delta + 1
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    a_colors, b_colors, _ = core.run(
        lambda ch: naive_exchange_proto(ch, partition.alice_graph, num_colors),
        lambda ch: naive_exchange_proto(ch, partition.bob_graph, num_colors),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("naive parties disagree on the coloring")
    return BaselineResult("naive_exchange", a_colors, transcript, num_colors)
