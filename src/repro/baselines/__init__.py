"""Baseline protocols the paper compares against (or improves upon)."""

from .base import BaselineResult
from .flin_mittal import flin_mittal_party, run_flin_mittal
from .greedy_binary_search import greedy_binary_search_party, run_greedy_binary_search
from .naive import naive_exchange_party, run_naive_exchange
from .one_round_sparsify import (
    ack_list_size,
    one_round_sparsify_party,
    run_one_round_sparsify,
)
from .vizing_gather import run_vizing_gather, vizing_gather_party

__all__ = [
    "BaselineResult",
    "ack_list_size",
    "flin_mittal_party",
    "greedy_binary_search_party",
    "naive_exchange_party",
    "one_round_sparsify_party",
    "run_flin_mittal",
    "run_greedy_binary_search",
    "run_naive_exchange",
    "run_one_round_sparsify",
    "run_vizing_gather",
    "vizing_gather_party",
]
