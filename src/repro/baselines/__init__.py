"""Baseline protocols the paper compares against (or improves upon)."""

from .base import BaselineResult
from .flin_mittal import flin_mittal_party, flin_mittal_proto, run_flin_mittal
from .greedy_binary_search import (
    greedy_binary_search_party,
    greedy_binary_search_proto,
    run_greedy_binary_search,
)
from .naive import naive_exchange_party, naive_exchange_proto, run_naive_exchange
from .one_round_sparsify import (
    ack_list_size,
    one_round_sparsify_party,
    one_round_sparsify_proto,
    run_one_round_sparsify,
)
from .vizing_gather import run_vizing_gather, vizing_gather_party, vizing_gather_proto

__all__ = [
    "BaselineResult",
    "ack_list_size",
    "flin_mittal_party",
    "flin_mittal_proto",
    "greedy_binary_search_party",
    "greedy_binary_search_proto",
    "naive_exchange_party",
    "naive_exchange_proto",
    "one_round_sparsify_party",
    "one_round_sparsify_proto",
    "run_flin_mittal",
    "run_greedy_binary_search",
    "run_naive_exchange",
    "run_one_round_sparsify",
    "run_vizing_gather",
    "vizing_gather_party",
    "vizing_gather_proto",
]
