"""Shared result container for baseline vertex-coloring protocols."""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ledger import Transcript

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of a baseline protocol run."""

    name: str
    colors: dict[int, int]
    transcript: Transcript
    num_colors: int

    @property
    def total_bits(self) -> int:
        """Bits exchanged in both directions."""
        return self.transcript.total_bits

    @property
    def rounds(self) -> int:
        """Communication rounds used."""
        return self.transcript.rounds
