"""One-round palette-sparsification protocol (ACK19-style).

The paper notes that the one-pass streaming algorithm of Assadi, Chen, and
Khanna [ACK19] yields a one-round protocol with ``O(n log³ n)`` bits: both
parties publicly sample per-vertex lists ``L(v)`` of ``Θ(log n)`` colors
(no communication — public randomness), then simultaneously exchange their
*conflict edges* — edges whose endpoints' lists intersect; by the palette
sparsification theorem there are ``O(n log² n)`` of them whp.  Each party
then deterministically solves the same list-coloring instance locally
(identical seeds ⇒ identical colorings), which is proper on the whole graph
because non-conflict edges can never be monochromatic.

Failure (whp none): if the local solver fails, one more simultaneous round
ships both full edge sets and both parties greedy-color identically.
"""

from __future__ import annotations

import math
import random

from ..comm.bits import gamma_cost, uint_cost
from ..comm.codecs import edge_list_codec
from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream, derived_random
from ..coloring.greedy import greedy_vertex_coloring
from ..coloring.list_coloring import solve_list_coloring
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = [
    "ack_list_size",
    "one_round_sparsify_party",
    "one_round_sparsify_proto",
    "run_one_round_sparsify",
]

#: Multiplier on ``log₂ n`` for the per-vertex list size of [ACK19].
LIST_FACTOR = 4.0


def ack_list_size(n: int, num_colors: int) -> int:
    """``Θ(log n)`` list size, clamped to the palette size."""
    size = max(6, math.ceil(LIST_FACTOR * math.log2(max(n, 2))))
    return min(size, num_colors)


def one_round_sparsify_proto(
    ch: Channel,
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
    solver_rng: random.Random,
):
    """One party's side of the one-round sparsification protocol."""
    n = own_graph.n
    ell = ack_list_size(n, num_colors)
    # Per-vertex derived streams: a lazy permutation prefix is a uniform
    # ordered ell-subset of the palette, read in O(ell) not O(m).
    list_base = pub.derive("ack-list")
    lists = {}
    for v in range(n):
        perm = list_base.derive(v).permutation(num_colors)
        lists[v] = {perm[i] + 1 for i in range(ell)}

    conflicts = [
        (u, v) for u, v in own_graph.edges() if lists[u] & lists[v]
    ]
    edge_width = 2 * uint_cost(max(n - 1, 1))
    cost = gamma_cost(len(conflicts) + 1) + len(conflicts) * edge_width
    peer_conflicts = yield from ch.send(
        cost, tuple(conflicts), codec=edge_list_codec(n)
    )

    sparsified = Graph(n, list(conflicts) + list(peer_conflicts))
    colors = solve_list_coloring(sparsified, lists, solver_rng)
    if colors is not None:
        return colors

    # Fallback (whp unreachable): exchange everything, color identically.
    edges = tuple(own_graph.edges())
    cost = gamma_cost(len(edges) + 1) + len(edges) * edge_width
    peer_edges = yield from ch.send(
        cost, edges, codec=edge_list_codec(n)
    )
    full = Graph(n, list(edges) + list(peer_edges))
    return greedy_vertex_coloring(full, num_colors=num_colors)


def one_round_sparsify_party(
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
    solver_rng: random.Random,
):
    """Legacy generator-API adapter for :func:`one_round_sparsify_proto`."""
    return as_party(one_round_sparsify_proto, own_graph, num_colors, pub, solver_rng)


def run_one_round_sparsify(
    partition: EdgePartition,
    seed: int = 0,
    transport: str | Transport | None = None,
    rand: Stream | None = None,
) -> BaselineResult:
    """Run the one-round protocol on an edge-partitioned graph, measured.

    ``rand`` roots all randomness at a caller-owned :class:`Stream`;
    ``seed`` is the back-compat alias and draws bit-for-bit the same
    tapes as before the ``rand`` parameter existed.
    """
    delta = partition.max_degree
    num_colors = delta + 1
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    if delta == 0:
        return BaselineResult(
            "one_round_sparsify",
            {v: 1 for v in range(partition.n)},
            transcript,
            num_colors,
        )
    root = rand if rand is not None else Stream.from_seed(seed)
    pub_alice = root.derive("public")
    pub_bob = root.derive("public")

    # Both parties run the *same* deterministic solver, so each needs its
    # own RNG instance with identical state.
    def solver_rng() -> random.Random:
        if rand is not None:
            return rand.derive_random("sparsify-solver")
        return derived_random(seed + 1, "solver")

    a_colors, b_colors, _ = core.run(
        lambda ch: one_round_sparsify_proto(
            ch, partition.alice_graph, num_colors, pub_alice, solver_rng()
        ),
        lambda ch: one_round_sparsify_proto(
            ch, partition.bob_graph, num_colors, pub_bob, solver_rng()
        ),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("one-round parties disagree on the coloring")
    return BaselineResult("one_round_sparsify", a_colors, transcript, num_colors)
