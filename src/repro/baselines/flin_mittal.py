"""The Flin–Mittal sequential protocol [FM25] — the paper's main comparator.

Alice and Bob pick a public random ordering of the vertices and color them
one at a time, running Color-Sample for each vertex to pick an available
color known to both.  Because the vertex order is uniform, the expected cost
per vertex is ``O(1)`` bits (the number of available colors is uniform over
a large range), giving ``O(n)`` expected bits overall — but the protocol is
inherently sequential: ``Θ(n)`` rounds.  Theorem 1's contribution is
precisely removing this round bottleneck.
"""

from __future__ import annotations

from typing import Generator

from ..comm.ledger import Transcript
from ..comm.messages import Msg
from ..comm.randomness import PublicRandomness
from ..comm.runner import run_protocol
from ..core.color_sample import color_sample_party
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["flin_mittal_party", "run_flin_mittal"]


def flin_mittal_party(
    own_graph: Graph,
    num_colors: int,
    pub: PublicRandomness,
) -> Generator[Msg, Msg, dict[int, int]]:
    """One party's side of the sequential FM25 protocol."""
    order = pub.shuffled(range(own_graph.n))
    colors: dict[int, int] = {}
    for v in order:
        own_used = {colors[u] for u in own_graph.neighbors(v) if u in colors}
        color = yield from color_sample_party(
            num_colors, own_used, pub.spawn(f"fm-{v}")
        )
        colors[v] = color
    return colors


def run_flin_mittal(partition: EdgePartition, seed: int = 0) -> BaselineResult:
    """Run FM25 on an edge-partitioned graph and measure it."""
    delta = partition.max_degree
    num_colors = delta + 1
    transcript = Transcript()
    if delta == 0:
        return BaselineResult(
            "flin_mittal", {v: 1 for v in range(partition.n)}, transcript, num_colors
        )
    a_colors, b_colors, _ = run_protocol(
        flin_mittal_party(partition.alice_graph, num_colors, PublicRandomness(seed)),
        flin_mittal_party(partition.bob_graph, num_colors, PublicRandomness(seed)),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("FM25 parties disagree on the coloring")
    return BaselineResult("flin_mittal", a_colors, transcript, num_colors)
