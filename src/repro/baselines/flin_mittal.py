"""The Flin–Mittal sequential protocol [FM25] — the paper's main comparator.

Alice and Bob pick a public random ordering of the vertices and color them
one at a time, running Color-Sample for each vertex to pick an available
color known to both.  Because the vertex order is uniform, the expected cost
per vertex is ``O(1)`` bits (the number of available colors is uniform over
a large range), giving ``O(n)`` expected bits overall — but the protocol is
inherently sequential: ``Θ(n)`` rounds.  Theorem 1's contribution is
precisely removing this round bottleneck.
"""

from __future__ import annotations

from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream
from ..core.color_sample import color_sample_proto
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["flin_mittal_party", "flin_mittal_proto", "run_flin_mittal"]


def flin_mittal_proto(
    ch: Channel,
    own_graph: Graph,
    num_colors: int,
    pub: Stream,
):
    """One party's side of the sequential FM25 protocol."""
    order = pub.shuffled(range(own_graph.n))
    fm_base = pub.derive("fm")
    colors: dict[int, int] = {}
    for v in order:
        own_used = {colors[u] for u in own_graph.neighbors(v) if u in colors}
        color = yield from color_sample_proto(
            ch, num_colors, own_used, fm_base.derive(v)
        )
        colors[v] = color
    return colors


def flin_mittal_party(own_graph: Graph, num_colors: int, pub: Stream):
    """Legacy generator-API adapter for :func:`flin_mittal_proto`."""
    return as_party(flin_mittal_proto, own_graph, num_colors, pub)


def run_flin_mittal(
    partition: EdgePartition,
    seed: int = 0,
    transport: str | Transport | None = None,
    rand: Stream | None = None,
) -> BaselineResult:
    """Run FM25 on an edge-partitioned graph and measure it.

    ``rand`` roots the public tape at a caller-owned :class:`Stream`;
    ``seed`` is the back-compat alias for ``Stream.from_seed(seed)`` —
    the two draw bit-for-bit the same tape.
    """
    delta = partition.max_degree
    num_colors = delta + 1
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    if delta == 0:
        return BaselineResult(
            "flin_mittal", {v: 1 for v in range(partition.n)}, transcript, num_colors
        )
    root = rand if rand is not None else Stream.from_seed(seed)
    a_colors, b_colors, _ = core.run(
        lambda ch: flin_mittal_proto(
            ch, partition.alice_graph, num_colors, root.derive("public")
        ),
        lambda ch: flin_mittal_proto(
            ch, partition.bob_graph, num_colors, root.derive("public")
        ),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("FM25 parties disagree on the coloring")
    return BaselineResult("flin_mittal", a_colors, transcript, num_colors)
