"""Deterministic greedy coloring with binary color search (folklore, [ACG+23]).

The simplest deterministic protocol the introduction mentions: simulate the
greedy algorithm vertex by vertex; for each vertex the parties locate an
available color with the deterministic binary-search protocol of Lemma A.1.
``O(n log² Δ)`` bits, ``Θ(n log Δ)`` rounds — communication is a polylog
factor off optimal and rounds are the worst of all the protocols here,
which is exactly the gap Theorems 1/2 close.
"""

from __future__ import annotations

from typing import Generator

from ..comm.ledger import Transcript
from ..comm.messages import Msg
from ..comm.runner import run_protocol
from ..core.slack import slack_find_party
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = ["greedy_binary_search_party", "run_greedy_binary_search"]


def greedy_binary_search_party(
    own_graph: Graph,
    num_colors: int,
) -> Generator[Msg, Msg, dict[int, int]]:
    """One party's side of the deterministic greedy protocol."""
    ground = list(range(num_colors))
    colors: dict[int, int] = {}
    for v in range(own_graph.n):
        own_used = {
            colors[u] - 1 for u in own_graph.neighbors(v) if u in colors
        }
        position = yield from slack_find_party(ground, own_used)
        colors[v] = position + 1
    return colors


def run_greedy_binary_search(partition: EdgePartition) -> BaselineResult:
    """Run the deterministic greedy + binary-search protocol, measured."""
    delta = partition.max_degree
    num_colors = delta + 1
    transcript = Transcript()
    if delta == 0:
        return BaselineResult(
            "greedy_binary_search",
            {v: 1 for v in range(partition.n)},
            transcript,
            num_colors,
        )
    a_colors, b_colors, _ = run_protocol(
        greedy_binary_search_party(partition.alice_graph, num_colors),
        greedy_binary_search_party(partition.bob_graph, num_colors),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("greedy parties disagree on the coloring")
    return BaselineResult("greedy_binary_search", a_colors, transcript, num_colors)
