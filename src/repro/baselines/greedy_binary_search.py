"""Deterministic greedy coloring with binary color search (folklore, [ACG+23]).

The simplest deterministic protocol the introduction mentions: simulate the
greedy algorithm vertex by vertex; for each vertex the parties locate an
available color with the deterministic binary-search protocol of Lemma A.1.
``O(n log² Δ)`` bits, ``Θ(n log Δ)`` rounds — communication is a polylog
factor off optimal and rounds are the worst of all the protocols here,
which is exactly the gap Theorems 1/2 close.
"""

from __future__ import annotations

from ..comm.transport import Channel, Transport, as_party, resolve_transport
from ..rand import Stream
from ..core.slack import slack_find_proto
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from .base import BaselineResult

__all__ = [
    "greedy_binary_search_party",
    "greedy_binary_search_proto",
    "run_greedy_binary_search",
]


def greedy_binary_search_proto(ch: Channel, own_graph: Graph, num_colors: int):
    """One party's side of the deterministic greedy protocol."""
    ground = list(range(num_colors))
    colors: dict[int, int] = {}
    for v in range(own_graph.n):
        own_used = {
            colors[u] - 1 for u in own_graph.neighbors(v) if u in colors
        }
        position = yield from slack_find_proto(ch, ground, own_used)
        colors[v] = position + 1
    return colors


def greedy_binary_search_party(own_graph: Graph, num_colors: int):
    """Legacy generator-API adapter for :func:`greedy_binary_search_proto`."""
    return as_party(greedy_binary_search_proto, own_graph, num_colors)


def run_greedy_binary_search(
    partition: EdgePartition,
    transport: str | Transport | None = None,
    seed: int | None = None,
    rand: Stream | None = None,
) -> BaselineResult:
    """Run the deterministic greedy + binary-search protocol, measured.

    ``seed``/``rand`` are accepted for driver-signature uniformity; the
    protocol is deterministic and draws nothing from them.
    """
    delta = partition.max_degree
    num_colors = delta + 1
    core = resolve_transport(transport)
    transcript = core.new_transcript()
    if delta == 0:
        return BaselineResult(
            "greedy_binary_search",
            {v: 1 for v in range(partition.n)},
            transcript,
            num_colors,
        )
    a_colors, b_colors, _ = core.run(
        lambda ch: greedy_binary_search_proto(ch, partition.alice_graph, num_colors),
        lambda ch: greedy_binary_search_proto(ch, partition.bob_graph, num_colors),
        transcript,
    )
    if a_colors != b_colors:
        raise AssertionError("greedy parties disagree on the coloring")
    return BaselineResult("greedy_binary_search", a_colors, transcript, num_colors)
