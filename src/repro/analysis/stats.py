"""Statistics helpers for the experiment harness.

Every benchmark reduces repeated protocol runs to the same summaries:
means with confidence intervals, least-squares fits against a model curve
(linearity of bits in ``n``, ``log²`` growth of Color-Sample, geometric
decay of active vertices), and goodness-of-fit (R²).  numpy is the only
dependency; scipy is used opportunistically for t-quantiles when present.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FitResult",
    "geometric_decay_rate",
    "linear_fit",
    "mean_ci",
    "r_squared",
    "summarize",
]


@dataclass(frozen=True)
class FitResult:
    """Least-squares line ``y ≈ slope·x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.slope * x + self.intercept


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """Sample mean and half-width of a normal-approximation CI."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return mean, 0.0
    z = _z_quantile(confidence)
    half = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean, half


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Replication summary: mean, sample stddev, 95%-CI half-width, extrema.

    The reduction the sweep engine applies per metric under ``--reps``;
    deterministic for a given value sequence (fixed-shape numpy
    reductions), so replicated sweeps stay bit-for-bit mergeable.  The
    interval is pinned at 95% to match the ``ci95`` key — use
    :func:`mean_ci` directly for other confidence levels.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean, half = mean_ci(data, 0.95)
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    return {
        "ci95": half,
        "count": int(data.size),
        "max": float(data.max()),
        "mean": mean,
        "min": float(data.min()),
        "std": std,
    }


def _z_quantile(confidence: float) -> float:
    """Two-sided normal quantile; scipy if available, else the 95% constant."""
    try:
        from scipy import stats  # noqa: PLC0415 - optional dependency

        return float(stats.norm.ppf(0.5 + confidence / 2.0))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return 1.96


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Least-squares linear fit with R²."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matching points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    return FitResult(float(slope), float(intercept), r_squared(y, predicted))


def r_squared(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``actual``."""
    a = np.asarray(list(actual), dtype=float)
    p = np.asarray(list(predicted), dtype=float)
    ss_res = float(((a - p) ** 2).sum())
    ss_tot = float(((a - a.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def geometric_decay_rate(counts: Sequence[float]) -> float:
    """Fitted per-step decay ratio of a positive, decreasing series.

    Fits ``log counts`` linearly and returns ``exp(slope)`` — e.g. the
    per-iteration survival ratio of active vertices in Random-Color-Trial
    (Lemma 4.3 predicts ``≤ 23/24``).
    """
    positive = [(i, c) for i, c in enumerate(counts) if c > 0]
    if len(positive) < 2:
        raise ValueError("need at least two positive counts")
    xs = [i for i, _ in positive]
    ys = [math.log(c) for _, c in positive]
    return math.exp(linear_fit(xs, ys).slope)
