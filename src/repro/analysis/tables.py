"""Plain-text table rendering for the benchmark harness.

The benchmarks print paper-style tables (one per experiment) to stdout so a
``pytest benchmarks/ --benchmark-only -s`` run regenerates every series the
reproduction reports in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_markdown_table", "format_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a GitHub-flavored markdown table.

    Same cell formatting as :func:`format_table`, so the console and the
    emitted report files always show identical numbers.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with a surrounding blank line."""
    print()
    print(format_table(headers, rows, title=title))


def _fmt(cell: object) -> str:
    """Human-friendly cell formatting (floats get 4 significant digits)."""
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
