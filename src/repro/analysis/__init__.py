"""Statistics and table-rendering helpers for the experiment harness."""

from .stats import FitResult, geometric_decay_rate, linear_fit, mean_ci, r_squared
from .tables import format_markdown_table, format_table, print_table

__all__ = [
    "FitResult",
    "format_markdown_table",
    "format_table",
    "geometric_decay_rate",
    "linear_fit",
    "mean_ci",
    "print_table",
    "r_squared",
]
