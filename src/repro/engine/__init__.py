"""Parallel experiment engine: scenario registry, sweep runner, results.

``repro.engine`` is the layer between the protocol library and the
experiment harness: it names every experiment coordinate (graph family ×
parameters × partition scheme × protocol × graph backend) as a
:class:`Scenario`, runs batches of them — serially or across a
``multiprocessing`` pool — with per-scenario seeding and per-process
workload caching, and emits JSON + markdown result files.  The
``python -m repro`` CLI and the ``benchmarks/`` experiments are thin
clients of this module; future scaling work (sharding, async runners, new
workload families) plugs in here.
"""

from .bench import (
    backend_comparison,
    medium_workload,
    profile_hotspots,
    rand_comparison,
    transport_comparison,
)
from .results import results_table, write_results
from .runner import build_partition, build_workload, run_scenario, sweep
from .scenarios import (
    FAMILIES,
    PROTOCOLS,
    Scenario,
    default_scenarios,
    iter_scenarios,
    smoke_scenarios,
)

__all__ = [
    "FAMILIES",
    "PROTOCOLS",
    "Scenario",
    "backend_comparison",
    "build_partition",
    "build_workload",
    "default_scenarios",
    "iter_scenarios",
    "medium_workload",
    "profile_hotspots",
    "rand_comparison",
    "results_table",
    "run_scenario",
    "smoke_scenarios",
    "sweep",
    "transport_comparison",
    "write_results",
]
