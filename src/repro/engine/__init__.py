"""Parallel experiment engine: scenario registry, sweep runner, results.

``repro.engine`` is the layer between the protocol library and the
experiment harness: it names every experiment coordinate (graph family ×
parameters × partition scheme × protocol × graph backend × transport) as
a :class:`Scenario`, runs batches of them — serially, across a
``multiprocessing`` pool, or sharded over many machines — with
per-scenario seeding, per-process workload caching, replication
(``reps``), and a crash-resumable journal, and emits deterministic JSON +
markdown result files.  :mod:`repro.engine.sharding` carries the
distributed pieces: stable-hash shard assignment, the completion journal,
and the merge/verify step that reassembles shard documents into the
bit-identical unsharded sweep.  The ``python -m repro`` CLI and the
``benchmarks/`` experiments are thin clients of this module.
"""

from .bench import (
    backend_comparison,
    graphs_comparison,
    kernel_comparison,
    medium_workload,
    profile_hotspots,
    rand_comparison,
    transport_comparison,
)
from .results import build_document, results_table, write_results
from .runner import (
    SweepEvent,
    aggregate_reps,
    build_partition,
    build_workload,
    run_scenario,
    run_scenario_rep,
    run_scenario_reps,
    sweep,
)
from .scenarios import (
    FAMILIES,
    PROTOCOLS,
    Scenario,
    default_scenarios,
    iter_scenarios,
    large_scenarios,
    smoke_scenarios,
)
from .sharding import (
    Journal,
    MergeError,
    load_shard_document,
    merge_documents,
    pack_shards,
    parse_shard_spec,
    shard_index,
    shard_scenarios,
)

__all__ = [
    "FAMILIES",
    "Journal",
    "MergeError",
    "PROTOCOLS",
    "Scenario",
    "SweepEvent",
    "aggregate_reps",
    "backend_comparison",
    "build_document",
    "build_partition",
    "build_workload",
    "default_scenarios",
    "graphs_comparison",
    "iter_scenarios",
    "kernel_comparison",
    "large_scenarios",
    "load_shard_document",
    "medium_workload",
    "merge_documents",
    "pack_shards",
    "parse_shard_spec",
    "profile_hotspots",
    "rand_comparison",
    "results_table",
    "run_scenario",
    "run_scenario_rep",
    "run_scenario_reps",
    "shard_index",
    "shard_scenarios",
    "smoke_scenarios",
    "sweep",
    "transport_comparison",
    "write_results",
]
