"""Result emission: JSON records plus a markdown summary table.

A sweep produces a list of flat dicts (one per scenario).  This module
writes them to ``<out>/sweep.json`` (machine-readable, one self-contained
document with metadata) and ``<out>/sweep.md`` (the human-readable table,
rendered through :mod:`repro.analysis.tables` so numbers format exactly
like the benchmark console output).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from .. import __version__
from ..analysis.tables import format_markdown_table, format_table

__all__ = ["results_table", "write_results"]

_COLUMNS = (
    ("scenario", "scenario"),
    ("transport", "transport"),
    ("n", "n"),
    ("max_degree", "Δ"),
    ("num_colors", "colors"),
    ("total_bits", "bits"),
    ("rounds", "rounds"),
    ("valid", "valid"),
    ("wall_time_s", "secs"),
)


def results_table(
    results: Sequence[dict[str, Any]], markdown: bool = False
) -> str:
    """Render sweep records as an aligned console or markdown table."""
    headers = [label for _, label in _COLUMNS]
    rows = [[record.get(key, "") for key, _ in _COLUMNS] for record in results]
    title = f"sweep results ({len(results)} scenarios)"
    if markdown:
        return format_markdown_table(headers, rows, title=title)
    return format_table(headers, rows, title=title)


def write_results(
    results: Sequence[dict[str, Any]],
    out_dir: str | Path,
    label: str = "sweep",
) -> tuple[Path, Path]:
    """Write ``<label>.json`` and ``<label>.md`` under ``out_dir``.

    Returns the two paths.  The JSON document wraps the records with the
    package version and headline counts so archived results stay
    self-describing.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{label}.json"
    md_path = out / f"{label}.md"
    document = {
        "version": __version__,
        "count": len(results),
        "all_valid": all(bool(r.get("valid")) for r in results),
        "transports": sorted({r.get("transport", "lockstep") for r in results}),
        "results": list(results),
    }
    json_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    md_path.write_text(results_table(results, markdown=True) + "\n")
    return json_path, md_path
