"""Result emission: JSON records plus a markdown summary table.

A sweep produces a list of flat dicts (one per scenario).  This module
writes them to ``<out>/sweep.json`` (machine-readable, one self-contained
document with metadata) and ``<out>/sweep.md`` (the human-readable table,
rendered through :mod:`repro.analysis.tables` so numbers format exactly
like the benchmark console output).

``sweep.json`` is *canonical*: records carry no volatile per-run data
(wall time lives out-of-band in :data:`repro.obs.metrics.WALL_CLOCK`),
so the document is a pure function of the scenario grid and the package
version.  That is what lets a serial sweep and the merged union of an
N-way sharded sweep compare bit for bit — the distributed-execution
invariant ``repro merge`` relies on.  Wall times still appear in the
console/markdown tables, where humans read them: the ``secs`` column is
filled from the wall-clock store for scenarios this process actually ran
and left blank otherwise (a merge or dispatch coordinator ran nothing
itself).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from .. import __version__
from ..analysis.tables import format_markdown_table, format_table
from ..obs.metrics import WALL_CLOCK, WallClock

__all__ = ["build_document", "results_table", "write_results"]

#: Volatile keys stripped defensively from records entering canonical
#: documents.  The runner no longer produces any (wall time is
#: out-of-band), but the guard stays so a future in-record addition can
#: never silently break merge determinism.
_VOLATILE_KEYS = ("wall_time_s",)

_COLUMNS = (
    ("scenario", "scenario"),
    ("transport", "transport"),
    ("n", "n"),
    ("max_degree", "Δ"),
    ("num_colors", "colors"),
    ("total_bits", "bits"),
    ("rounds", "rounds"),
    ("valid", "valid"),
)


def results_table(
    results: Sequence[dict[str, Any]],
    markdown: bool = False,
    timings: WallClock | None = None,
) -> str:
    """Render sweep records as an aligned console or markdown table.

    The ``secs`` column reads from ``timings`` (default: the process
    wall-clock store) — this run's measured wall time per scenario,
    blank for records this process replayed or merged rather than ran.
    """
    clock = WALL_CLOCK if timings is None else timings
    headers = [label for _, label in _COLUMNS] + ["secs"]
    rows = []
    for record in results:
        total = clock.total(str(record.get("scenario", "")))
        rows.append(
            [record.get(key, "") for key, _ in _COLUMNS]
            + [total if total is not None else ""]
        )
    title = f"sweep results ({len(results)} scenarios)"
    if markdown:
        return format_markdown_table(headers, rows, title=title)
    return format_table(headers, rows, title=title)


def _canonical(record: dict[str, Any]) -> dict[str, Any]:
    """The record minus volatile keys — what goes into ``sweep.json``."""
    return {k: v for k, v in record.items() if k not in _VOLATILE_KEYS}


def build_document(
    results: Sequence[dict[str, Any]], shard: str | None = None
) -> dict[str, Any]:
    """The canonical sweep document for a record list.

    Exactly what :func:`write_results` serializes: canonical records
    (volatile keys stripped) wrapped with the package version and
    headline counts.  The dispatcher's tree merge uses this to wrap
    intermediate partial merges in the same shape as shard documents, so
    every fold goes back through :func:`merge_documents` unchanged.
    """
    document: dict[str, Any] = {
        "version": __version__,
        "count": len(results),
        "all_valid": all(bool(r.get("valid")) for r in results),
        "transports": sorted({r.get("transport", "lockstep") for r in results}),
        "results": [_canonical(r) for r in results],
    }
    if shard is not None:
        document["shard"] = shard
    return document


def write_results(
    results: Sequence[dict[str, Any]],
    out_dir: str | Path,
    label: str = "sweep",
    shard: str | None = None,
) -> tuple[Path, Path]:
    """Write ``<label>.json`` and ``<label>.md`` under ``out_dir``.

    Returns the two paths.  The JSON document wraps the canonical records
    with the package version and headline counts so archived results stay
    self-describing; ``shard`` (a ``"k/N"`` spec) tags partial documents
    produced by ``sweep --shard`` so a merge's inputs are identifiable.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{label}.json"
    md_path = out / f"{label}.md"
    document = build_document(results, shard=shard)
    json_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    md_path.write_text(results_table(results, markdown=True) + "\n")
    return json_path, md_path
