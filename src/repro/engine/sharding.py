"""Distributed sweep execution: shard assignment, journal, merge.

Three pieces turn the single-machine sweep into a fleet-friendly one, all
resting on PR 3's ``derive``-based per-coordinate seeding (a scenario's
randomness depends only on its own coordinate, never on sweep
composition):

* **Shard assignment** — :func:`shard_index` maps a scenario name to a
  shard through :func:`repro.rand.stable_label_hash`, so a scenario's
  shard depends only on its own name and the shard count.  Adding or
  removing scenarios never moves the others (unlike positional
  round-robin, where one insertion reshuffles every later scenario), and
  the hash spreads the grid across shards evenly in expectation.
  ``shard_scenarios(grid, k, n)`` is by construction a partition of the
  grid: every scenario lands in exactly one of the ``n`` shards.

* **Journal** — :class:`Journal` is an append-only JSONL file
  (``results/journal.jsonl``) with one record per *completed* scenario.
  The sweep runner appends after every scenario, so a crashed or
  preempted sweep resumes (``sweep --resume``) by replaying the journal
  and running only the missing coordinates.  Entries carry the package
  version and rep count; stale entries (version or rep mismatch, or a
  torn final line from a crash mid-write) are ignored on load.

* **Merge** — :func:`merge_documents` combines per-shard ``sweep.json``
  documents into the records of the equivalent unsharded sweep.  It
  verifies overlapping coordinates byte-identical (conflicting
  duplicates are an error; identical ones merge idempotently, so
  re-dispatched stragglers are harmless), the records drawn from the
  expected grid (unknown coordinates and seed
  mismatches are errors), written by this package version, and — with
  ``check_complete`` — that the union covers the whole grid.  Records
  come back in grid order, so re-rendering through
  :func:`repro.engine.write_results` reproduces the serial ``sweep.json``
  bit for bit.  That identity is the headline invariant of the
  distributed path and is pinned by ``tests/test_engine_sharding.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence, TYPE_CHECKING

from .. import __version__
from ..rand import stable_label_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .scenarios import Scenario

__all__ = [
    "Journal",
    "MergeError",
    "load_shard_document",
    "merge_documents",
    "pack_shards",
    "parse_shard_spec",
    "shard_index",
    "shard_scenarios",
]


# ---------------------------------------------------------------------------
# shard assignment
# ---------------------------------------------------------------------------


def parse_shard_spec(spec: str) -> tuple[int, int]:
    """Parse a ``"k/N"`` shard spec into a 1-based ``(index, count)`` pair.

    ``k`` selects one of ``N`` shards, ``1 <= k <= N`` — the CLI syntax of
    ``sweep --shard 2/3``.
    """
    index_s, sep, count_s = spec.partition("/")
    if not sep:
        raise ValueError(f"shard spec must look like k/N, got {spec!r}")
    try:
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(f"shard spec must be two integers k/N, got {spec!r}") from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {spec!r}")
    if not 1 <= index <= count:
        raise ValueError(f"shard index must be in 1..{count}, got {spec!r}")
    return index, count


def shard_index(name: str, count: int) -> int:
    """The 0-based shard owning a scenario name, out of ``count`` shards.

    Depends only on ``(name, count)``: growing the grid never reassigns
    existing scenarios, and every machine computes the same split without
    coordination.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return stable_label_hash(("shard", name)) % count


def shard_scenarios(
    scenarios: Iterable["Scenario"], index: int, count: int
) -> list["Scenario"]:
    """The scenarios assigned to 1-based shard ``index`` of ``count``.

    Preserves grid order within the shard; the ``count`` shards partition
    the grid (disjoint, union-complete).
    """
    if not 1 <= index <= count:
        raise ValueError(f"shard index must be in 1..{count}, got {index}")
    return [s for s in scenarios if shard_index(s.name, count) == index - 1]


def pack_shards(
    scenarios: Sequence["Scenario"], count: int
) -> list[list["Scenario"]]:
    """Cost-weighted shard packing: greedy longest-processing-time.

    Scenarios are ranked by :meth:`Scenario.cost_hint` (ties broken by
    name so the packing is deterministic) and each is assigned to the
    currently lightest shard, so wildly uneven grids — one n=1024
    coordinate next to a dozen toy ones — come out balanced instead of
    landing wherever the hash sends them.  Unlike :func:`shard_index`,
    the assignment depends on the whole grid, so it is for dispatchers
    that carry explicit shard membership (``sweep --scenario-file``),
    not for coordination-free CI matrixes.  Returns ``count`` lists that
    partition the grid, each in grid order; shards may be empty when the
    grid is smaller than ``count``.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    order = {s.name: i for i, s in enumerate(scenarios)}
    ranked = sorted(scenarios, key=lambda s: (-s.cost_hint(), s.name))
    loads = [0.0] * count
    shards: list[list["Scenario"]] = [[] for _ in range(count)]
    for scenario in ranked:
        lightest = min(range(count), key=lambda k: (loads[k], k))
        loads[lightest] += scenario.cost_hint()
        shards[lightest].append(scenario)
    return [sorted(shard, key=lambda s: order[s.name]) for shard in shards]


# ---------------------------------------------------------------------------
# journal
# ---------------------------------------------------------------------------


class Journal:
    """Append-only JSONL journal of completed scenario (and rep) records.

    One line per completed scenario::

        {"record": {...}, "reps": 1, "scenario": "<name>", "version": "1.1.0"}

    Replicated sweeps (``reps > 1``) additionally journal one line per
    completed *(scenario, rep)* pair — the same shape plus a 0-based
    ``"rep"`` key — before the scenario's aggregate line, so a crash
    mid-replication resumes by replaying the finished reps instead of
    rerunning the whole coordinate.  Rep lines for a scenario that also
    has an aggregate line are redundant and dropped on rewrite.

    Entries from a live sweep may carry an entry-level ``"elapsed"``
    (wall seconds for that unit of work) which the dispatcher's journal
    tail renders as live per-rep rates.  It never appears inside
    ``"record"`` — records stay canonical — and resume rewrites drop it.

    ``resume=False`` truncates any existing journal (a fresh sweep);
    ``resume=True`` replays it first, exposing prior completions through
    :attr:`completed` (and partial replications through :attr:`partial`)
    so the runner skips them.  Lines from another package version or rep
    count are stale and ignored, as is a torn line left by a crash
    mid-append.  A resume *rewrites* the journal with only the surviving
    entries before appending — a torn tail never becomes an interior
    corruption that later appends would concatenate onto.  Appends are
    flushed per record so the journal never trails the sweep by more
    than the scenario (or rep) in flight.
    """

    def __init__(self, path: str | Path, resume: bool = False, reps: int = 1) -> None:
        self.path = Path(path)
        self.reps = reps
        self.completed: dict[str, dict[str, Any]] = {}
        self.partial: dict[str, dict[int, dict[str, Any]]] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._replay()
        self._file = self.path.open("w")
        for name, record in self.completed.items():
            self._write_entry(name, record)
        for name in sorted(self.partial):
            for rep in sorted(self.partial[name]):
                self._write_entry(name, self.partial[name][rep], rep=rep)
        self._file.flush()

    def _replay(self) -> None:
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn by a crash mid-write; later lines may be fine
            if entry.get("version") != __version__ or entry.get("reps") != self.reps:
                continue
            name = entry["scenario"]
            if "rep" in entry:
                self.partial.setdefault(name, {})[int(entry["rep"])] = entry["record"]
            else:
                self.completed[name] = entry["record"]
        for name in self.completed:
            self.partial.pop(name, None)

    def _write_entry(
        self,
        name: str,
        record: dict[str, Any],
        rep: int | None = None,
        elapsed: float | None = None,
    ) -> None:
        entry = {
            "record": record,
            "reps": self.reps,
            "scenario": name,
            "version": __version__,
        }
        if rep is not None:
            entry["rep"] = rep
        if elapsed is not None:
            # Entry-level only — never inside "record", which must stay a
            # canonical pure function of the coordinate.  Replay ignores
            # it; the dispatch journal tail reads it for live rate
            # display.  Resume rewrites drop it (a replayed entry's
            # timing describes a previous process, not this one).
            entry["elapsed"] = round(elapsed, 6)
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")

    def append(
        self, name: str, record: dict[str, Any], elapsed: float | None = None
    ) -> None:
        """Record one completed scenario (flushed immediately)."""
        self._write_entry(name, record, elapsed=elapsed)
        self._file.flush()
        self.completed[name] = record
        self.partial.pop(name, None)

    def append_rep(
        self,
        name: str,
        rep: int,
        record: dict[str, Any],
        elapsed: float | None = None,
    ) -> None:
        """Record one completed replication of a scenario (flushed)."""
        self._write_entry(name, record, rep=rep, elapsed=elapsed)
        self._file.flush()
        self.partial.setdefault(name, {})[rep] = record

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------


class MergeError(ValueError):
    """A shard union that cannot reproduce the unsharded sweep."""


def _canonical_bytes(record: dict[str, Any]) -> str:
    """A record's canonical serialization (for byte-identity comparison)."""
    return json.dumps(record, sort_keys=True)


def load_shard_document(path: str | Path, label: str = "sweep") -> dict[str, Any]:
    """Load one shard's sweep document from a JSON file or a results dir."""
    p = Path(path)
    if p.is_dir():
        p = p / f"{label}.json"
    return json.loads(p.read_text())


def merge_documents(
    documents: Sequence[dict[str, Any]],
    expected: Sequence["Scenario"],
    check_complete: bool = False,
) -> list[dict[str, Any]]:
    """Combine shard sweep documents into the unsharded record list.

    ``expected`` is the full scenario grid the shards were cut from (the
    same selection the shard sweeps ran with, minus ``--shard``).  Raises
    :class:`MergeError` on a version mismatch, a *conflicting* duplicate
    or an unknown coordinate, a seed that disagrees with the grid's
    deterministic per-coordinate seed, shards swept under different
    ``--reps``, or — with ``check_complete`` — a missing coordinate.
    Duplicate coordinates whose records are byte-identical are merged
    idempotently (the repeat is dropped): documents are canonical
    functions of the grid, so a re-dispatched straggler that overlaps
    the shard it replaced cannot poison the merge — only a record that
    *disagrees* can, and that one still raises.  Returns the records in
    grid order, ready for :func:`repro.engine.write_results`.
    """
    expected_by_name = {s.name: s for s in expected}
    seen: dict[str, dict[str, Any]] = {}
    reps_seen: set[int] = set()
    for position, document in enumerate(documents):
        version = document.get("version")
        if version != __version__:
            raise MergeError(
                f"shard {position + 1}: version {version!r} does not match "
                f"this package ({__version__!r}); re-run the shard sweep"
            )
        for record in document.get("results", ()):
            name = record.get("scenario")
            if name in seen:
                if _canonical_bytes(record) == _canonical_bytes(seen[name]):
                    continue  # idempotent overlap (e.g. straggler re-dispatch)
                raise MergeError(
                    f"conflicting duplicate coordinate across shards: {name} "
                    "(overlapping records must be byte-identical)"
                )
            scenario = expected_by_name.get(name)
            if scenario is None:
                raise MergeError(
                    f"shard {position + 1}: coordinate {name!r} is not in "
                    "the expected scenario grid (selection flags must match "
                    "the shard sweeps)"
                )
            if record.get("seed") != scenario.effective_seed:
                raise MergeError(
                    f"seed mismatch for {name}: shard has {record.get('seed')}, "
                    f"grid derives {scenario.effective_seed}"
                )
            seen[name] = record
            reps_seen.add(int(record.get("reps", 1)))
    if len(reps_seen) > 1:
        raise MergeError(
            f"shards disagree on replication: reps={sorted(reps_seen)} "
            "(all shard sweeps must use the same --reps)"
        )
    if check_complete:
        missing = [s.name for s in expected if s.name not in seen]
        if missing:
            raise MergeError(
                f"merged shards are missing {len(missing)} of "
                f"{len(expected)} coordinates: {missing[:5]}"
                + (" ..." if len(missing) > 5 else "")
            )
    return [seen[s.name] for s in expected if s.name in seen]
