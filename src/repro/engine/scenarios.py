"""Scenario registry: graph family × size × Δ × partition × protocol.

A :class:`Scenario` is a fully reproducible experiment coordinate.  Every
axis is referenced by name so scenarios serialize to JSON, hash stably
(for per-scenario seeding), and round-trip through worker processes.  The
registry exposes curated grids rather than the full cross product: the
default sweep covers the regimes the paper's experiments E1–E20 care
about, and the smoke grid is a minutes-free subset touching every
protocol, both graph backends, and the adversarial partition extremes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

from ..obs import get_observer
from ..rand import Stream, stable_label_hash
from ..comm.transport import TRANSPORTS
from ..core.edge_coloring import (
    run_edge_coloring,
    run_zero_comm_edge_coloring,
)
from ..core.vertex_coloring import run_vertex_coloring
from ..graphs import (
    GRAPH_BACKENDS,
    PARTITIONERS,
    Graph,
    barbell_of_stars,
    c4_gadget_union,
    caterpillar_graph,
    complete_graph,
    configuration_model_edge_stream,
    configuration_model_graph,
    conflict_union_graph,
    from_edge_stream,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    is_proper_edge_coloring,
    is_proper_vertex_coloring,
    power_law_degree_sequence,
    random_bipartite_regular,
    random_regular_graph,
)

__all__ = [
    "FAMILIES",
    "PROTOCOLS",
    "Scenario",
    "default_scenarios",
    "iter_scenarios",
    "large_scenarios",
    "smoke_scenarios",
]


@dataclass(frozen=True)
class Scenario:
    """One reproducible experiment coordinate.

    ``params`` parameterizes the graph family (key/value pairs, normalized
    to sorted order so the dataclass stays hashable and order-insensitive);
    ``seed`` drives both workload generation and the protocol's
    public/private tapes, and defaults to a stable hash of the
    (family, params) workload key — scenarios sharing a workload
    deliberately share randomness so that protocol, partition, and backend
    comparisons run on the identical instance (see :meth:`workload_key`).
    ``transport`` picks the comm-simulation backend (lockstep / count /
    strict); every transport yields identical transcripts, so, like the
    graph backend, it is a pure execution axis.
    """

    family: str
    params: tuple[tuple[str, Any], ...]
    partition: str
    protocol: str
    backend: str = "set"
    seed: int | None = None
    transport: str = "lockstep"

    def __post_init__(self) -> None:
        # Normalize params ordering so the same logical scenario always has
        # the same coordinate, seed, and workload-cache entry no matter how
        # the caller ordered the tuple.
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.partition not in PARTITIONERS:
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.backend not in GRAPH_BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}")

    @property
    def workload_key(self) -> str:
        """The workload identifier (the default seeding key).

        Deliberately excludes protocol, partition scheme, and backend:
        every scenario sharing a (family, params) coordinate runs the
        *same* graph instance, so protocol comparisons and the
        partition-adversary ablation isolate their own axis, backend pairs
        are a live parity check, and the workload cache actually hits
        across a sweep.
        """
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({params})"

    @property
    def coordinate(self) -> str:
        """The backend-independent identifier."""
        return f"{self.protocol}/{self.workload_key}/{self.partition}"

    @property
    def name(self) -> str:
        """A stable human-readable identifier including the backend.

        The transport appears only when it differs from the lockstep
        default, so pre-existing scenario names are unchanged.
        """
        base = f"{self.coordinate}/{self.backend}"
        if self.transport != "lockstep":
            return f"{base}/{self.transport}"
        return base

    @property
    def effective_seed(self) -> int:
        """The explicit seed, or a stable 32-bit hash of the workload key."""
        if self.seed is not None:
            return self.seed
        return stable_label_hash(self.workload_key) & 0x7FFFFFFF

    def rep_seed(self, rep: int) -> int:
        """The seed of replication ``rep`` (0-based) of this scenario.

        Rep 0 is the scenario's own seed, so ``--reps 1`` reproduces an
        unreplicated sweep bit for bit; later reps derive label-hashed
        seeds from it.  Like :attr:`effective_seed`, the value depends
        only on the coordinate — never on sweep composition or execution
        order — which is what keeps replicated sweeps shardable.
        """
        if rep == 0:
            return self.effective_seed
        return stable_label_hash(("rep", self.effective_seed, rep)) & 0x7FFFFFFF

    def param_dict(self) -> dict[str, Any]:
        """The family parameters as a plain dict."""
        return dict(self.params)

    def cost_hint(self) -> float:
        """A dimensionless ~n·d work estimate for shard balancing.

        Protocol runtime scales roughly with the number of edge
        endpoints, so the hint is the family's vertex count times its
        typical degree.  The estimate only has to *rank* scenarios — the
        cost-weighted packer (:func:`repro.engine.pack_shards`) uses it
        greedily — so crude per-family formulas are fine; an unknown
        family falls back to a unit cost, which degrades packing to
        round-robin rather than failing.
        """
        p = self.param_dict()
        try:
            return float(_COST_HINTS[self.family](p))
        except (KeyError, TypeError):
            return 1.0

    def with_backend(self, backend: str) -> "Scenario":
        """The same scenario coordinate on another graph backend."""
        return replace(self, backend=backend)

    def with_transport(self, transport: str) -> "Scenario":
        """The same scenario coordinate on another comm transport."""
        return replace(self, transport=transport)


def _params(**kwargs: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize family parameters into sorted hashable pairs."""
    return tuple(sorted(kwargs.items()))


# ---------------------------------------------------------------------------
# graph families
# ---------------------------------------------------------------------------


def _family_regular(rng: random.Random, n: int, d: int) -> Graph:
    return random_regular_graph(n, d, rng)


def _family_gnp(rng: random.Random, n: int, p: float) -> Graph:
    return gnp_random_graph(n, p, rng)


def _family_bipartite(rng: random.Random, half: int, d: int) -> Graph:
    return random_bipartite_regular(half, d, rng)


def _family_hypercube(rng: random.Random, dimension: int) -> Graph:
    return hypercube_graph(dimension)


def _family_grid(rng: random.Random, rows: int, cols: int) -> Graph:
    return grid_graph(rows, cols)


def _family_complete(rng: random.Random, n: int) -> Graph:
    return complete_graph(n)


def _family_caterpillar(rng: random.Random, spine: int, legs: int) -> Graph:
    return caterpillar_graph(spine, legs)


def _family_power_law(
    rng: random.Random, n: int, exponent: float, max_degree: int
) -> Graph:
    degrees = power_law_degree_sequence(n, exponent, max_degree, rng)
    return configuration_model_graph(degrees, rng)


def _family_c4_gadgets(rng: random.Random, count: int) -> Graph:
    bits = [rng.randint(0, 1) for _ in range(count)]
    return c4_gadget_union(bits)


def _family_barbell(rng: random.Random, k: int, leaves: int) -> Graph:
    return barbell_of_stars(k, leaves)


def _family_conflict(
    rng: random.Random, half: int, d_base: int, d_overlay: int
) -> Graph:
    return conflict_union_graph(half, d_base, d_overlay, rng)


def _family_social(
    stream: Stream, n: int, exponent: float, max_degree: int
) -> Graph:
    """Power-law / social-network instances built straight onto CSR.

    The only family whose builder receives a :class:`Stream` (see the
    ``stream_native`` flag): degree draws and stub pairing come from
    labelled child streams, and the edge stream feeds
    :func:`from_edge_stream` without ever materializing an edge set —
    which is what makes n = 10⁶ buildable in O(n + m) memory.
    """
    degrees = power_law_degree_sequence(
        n, exponent, max_degree, stream.derive("degrees")
    )
    return from_edge_stream(
        n, configuration_model_edge_stream(degrees, stream.derive("pairing"))
    )


#: Builders flagged ``stream_native`` receive the workload Stream itself
#: instead of a derived ``random.Random`` (see ``runner._cached_workload``).
_family_social.stream_native = True  # type: ignore[attr-defined]


#: Graph families by name.  Each builder takes ``(rng, **params)``; the rng
#: is seeded per scenario so workloads are reproducible in isolation.
FAMILIES: dict[str, Callable[..., Graph]] = {
    "regular": _family_regular,
    "gnp": _family_gnp,
    "bipartite_regular": _family_bipartite,
    "hypercube": _family_hypercube,
    "grid": _family_grid,
    "complete": _family_complete,
    "caterpillar": _family_caterpillar,
    "power_law": _family_power_law,
    "c4_gadgets": _family_c4_gadgets,
    "barbell": _family_barbell,
    "conflict": _family_conflict,
    "social": _family_social,
}


#: ~n·d work estimates per family (vertices × typical degree), feeding
#: :meth:`Scenario.cost_hint`.  Each takes the family's param dict.
_COST_HINTS: dict[str, Callable[[dict[str, Any]], float]] = {
    "regular": lambda p: p["n"] * p["d"],
    "gnp": lambda p: p["n"] * max(1.0, p["n"] * p["p"]),
    "bipartite_regular": lambda p: 2 * p["half"] * p["d"],
    "hypercube": lambda p: (1 << p["dimension"]) * p["dimension"],
    "grid": lambda p: p["rows"] * p["cols"] * 4,
    "complete": lambda p: p["n"] * (p["n"] - 1),
    "caterpillar": lambda p: p["spine"] * (p["legs"] + 1) * (p["legs"] + 2),
    "power_law": lambda p: p["n"] * p["max_degree"],
    "c4_gadgets": lambda p: p["count"] * 8,
    "barbell": lambda p: p["k"] * (p["leaves"] + p["k"]),
    "conflict": lambda p: 2 * p["half"] * (p["d_base"] + p["d_overlay"]),
    "social": lambda p: p["n"] * p["max_degree"],
}


# ---------------------------------------------------------------------------
# protocols
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolAdapter:
    """Uniform driver interface over the paper's protocol entry points.

    ``run(partition, seed, transport)`` returns the metric record the
    engine stores; every adapter validates its coloring against the
    definition-level checkers so a sweep doubles as a correctness harness.
    """

    key: str
    description: str
    run: Callable[..., dict[str, Any]] = field(repr=False)


def _observe_result(protocol: str, result) -> None:
    """Report a finished run's transcript to the installed observer.

    Post-hoc and scenario-granular: reads the ledger the run produced
    anyway, so the protocol loops carry no instrumentation at all and
    the disabled path costs one attribute load per scenario run.
    """
    obs = get_observer()
    if obs.enabled:
        obs.record_transcript(protocol, result.transcript)


def _run_vertex(partition, seed: int, transport: str = "lockstep") -> dict[str, Any]:
    # Stream-native call: rand=Stream.from_seed(seed) is bit-for-bit the
    # driver's own seed= back-compat path, so sweep records are unchanged.
    result = run_vertex_coloring(
        partition, rand=Stream.from_seed(seed), transport=transport
    )
    _observe_result("vertex", result)
    graph = partition.graph
    return {
        "total_bits": result.total_bits,
        "rounds": result.rounds,
        "num_colors": result.num_colors,
        "leftover": result.leftover_size,
        "valid": is_proper_vertex_coloring(graph, result.colors, result.num_colors),
    }


def _run_edge(partition, seed: int, transport: str = "lockstep") -> dict[str, Any]:
    result = run_edge_coloring(partition, transport=transport, rand=Stream.from_seed(seed))
    _observe_result("edge", result)
    graph = partition.graph
    return {
        "total_bits": result.total_bits,
        "rounds": result.rounds,
        "num_colors": result.num_colors,
        "valid": is_proper_edge_coloring(graph, result.colors, result.num_colors),
    }


def _run_edge_zero_comm(
    partition, seed: int, transport: str = "lockstep"
) -> dict[str, Any]:
    result = run_zero_comm_edge_coloring(
        partition, transport=transport, rand=Stream.from_seed(seed)
    )
    _observe_result("edge_zero_comm", result)
    graph = partition.graph
    return {
        "total_bits": result.total_bits,
        "rounds": result.rounds,
        "num_colors": result.num_colors,
        "valid": is_proper_edge_coloring(graph, result.colors, result.num_colors),
    }


#: Protocol adapters by name.
PROTOCOLS: dict[str, ProtocolAdapter] = {
    "vertex": ProtocolAdapter(
        "vertex",
        "Theorem 1 (Δ+1)-vertex coloring: O(n) bits, O(log log n · log Δ) rounds",
        _run_vertex,
    ),
    "edge": ProtocolAdapter(
        "edge",
        "Theorem 2 (2Δ−1)-edge coloring: O(n) bits, O(1) rounds",
        _run_edge,
    ),
    "edge_zero_comm": ProtocolAdapter(
        "edge_zero_comm",
        "Theorem 3 (2Δ)-edge coloring: zero communication",
        _run_edge_zero_comm,
    ),
}


# ---------------------------------------------------------------------------
# curated grids
# ---------------------------------------------------------------------------


def smoke_scenarios() -> list[Scenario]:
    """A tiny grid covering every protocol, every graph backend, and the
    partition extremes — the CI end-to-end check."""
    scenarios = []
    for protocol in ("vertex", "edge", "edge_zero_comm"):
        for partition in ("random", "all_alice", "degree_split"):
            for backend in ("set", "bitset", "csr"):
                scenarios.append(
                    Scenario(
                        family="regular",
                        params=_params(n=64, d=8),
                        partition=partition,
                        protocol=protocol,
                        backend=backend,
                    )
                )
    scenarios.append(
        Scenario(
            family="gnp",
            params=_params(n=48, p=0.2),
            partition="random",
            protocol="vertex",
            backend="bitset",
        )
    )
    scenarios.append(
        Scenario(
            family="hypercube",
            params=_params(dimension=5),
            partition="crossing",
            protocol="edge",
            backend="bitset",
        )
    )
    scenarios.append(
        Scenario(
            family="conflict",
            params=_params(half=64, d_base=8, d_overlay=4),
            partition="random",
            protocol="edge",
            backend="csr",
        )
    )
    return scenarios


def default_scenarios() -> list[Scenario]:
    """The full curated sweep grid (the E18-style family × adversary matrix,
    plus size ladders for the scaling claims)."""
    scenarios: list[Scenario] = []
    # Size ladder at pinned Δ — the O(n)-bits claims of Theorems 1 & 2.
    for n in (128, 256, 512, 1024):
        for protocol in ("vertex", "edge", "edge_zero_comm"):
            scenarios.append(
                Scenario(
                    family="regular",
                    params=_params(n=n, d=8),
                    partition="random",
                    protocol=protocol,
                )
            )
    # Degree ladder at pinned n.
    for d in (4, 8, 16, 32):
        for protocol in ("vertex", "edge"):
            scenarios.append(
                Scenario(
                    family="regular",
                    params=_params(n=256, d=d),
                    partition="random",
                    protocol=protocol,
                )
            )
    # Structured families × all protocols.
    structured = [
        ("hypercube", _params(dimension=7)),
        ("grid", _params(rows=16, cols=16)),
        ("complete", _params(n=32)),
        ("caterpillar", _params(spine=64, legs=4)),
        ("power_law", _params(n=300, exponent=2.2, max_degree=24)),
        ("c4_gadgets", _params(count=64)),
        ("bipartite_regular", _params(half=100, d=9)),
        ("gnp", _params(n=200, p=0.05)),
        ("conflict", _params(half=64, d_base=8, d_overlay=4)),
    ]
    for family, params in structured:
        for protocol in ("vertex", "edge", "edge_zero_comm"):
            scenarios.append(
                Scenario(
                    family=family,
                    params=params,
                    partition="random",
                    protocol=protocol,
                )
            )
    # Dense large-Δ palettes: 2Δ−1 beyond the rand-perm SMALL_THRESHOLD
    # (96), so the Feistel cycle-walking permutation path runs end to end
    # instead of only in unit tests.
    dense = [
        ("regular", _params(n=256, d=64)),
        ("complete", _params(n=128)),
    ]
    for family, params in dense:
        for protocol in ("edge", "edge_zero_comm"):
            scenarios.append(
                Scenario(
                    family=family,
                    params=params,
                    partition="random",
                    protocol=protocol,
                )
            )
    # Partition-adversary ablation on one medium workload.
    for partition in PARTITIONERS:
        for protocol in ("vertex", "edge"):
            scenarios.append(
                Scenario(
                    family="regular",
                    params=_params(n=256, d=8),
                    partition=partition,
                    protocol=protocol,
                )
            )
    # The ladders and the ablation overlap at (n=256, d=8, random): dedupe
    # preserving order so the sweep never reruns a coordinate.
    return list(dict.fromkeys(scenarios))


def large_scenarios() -> list[Scenario]:
    """The million-vertex tier: CSR-only scale runs (``sweep --large``).

    Power-law social instances at n ∈ {10⁵, 10⁶}, pinned to the csr
    backend — the set and bitset backends cannot represent these sizes
    in reasonable memory (bitset adjacency alone is O(n²) bits: ~1.25 GB
    at 10⁵ and ~125 GB at 10⁶).  Kept out of :func:`default_scenarios`
    so ordinary sweeps stay minutes-free.
    """
    scenarios = [
        Scenario(
            family="social",
            params=_params(n=100_000, exponent=2.3, max_degree=64),
            partition="random",
            protocol=protocol,
            backend="csr",
        )
        for protocol in ("edge", "edge_zero_comm")
    ]
    scenarios.append(
        Scenario(
            family="social",
            params=_params(n=1_000_000, exponent=2.3, max_degree=64),
            partition="random",
            protocol="edge_zero_comm",
            backend="csr",
        )
    )
    return scenarios


def iter_scenarios(
    scenarios: Iterable[Scenario],
    pattern: str | None = None,
    backend: str | None = None,
    transport: str | None = None,
) -> Iterator[Scenario]:
    """Filter scenarios by name substring and/or force a backend/transport.

    ``backend="both"`` expands every scenario to one variant per registered
    backend; any other value pins that backend; ``None`` keeps each
    scenario's own.  ``transport`` pins the comm transport the same way
    (``"all"`` expands to every registered transport).  Duplicates (e.g.
    pinning a backend on a grid that already enumerates both) are dropped,
    so a sweep never reruns a coordinate.
    """
    seen: set[Scenario] = set()
    for scenario in scenarios:
        if backend == "both":
            variants = [scenario.with_backend(b) for b in GRAPH_BACKENDS]
        elif backend is not None:
            variants = [scenario.with_backend(backend)]
        else:
            variants = [scenario]
        if transport == "all":
            variants = [v.with_transport(t) for v in variants for t in TRANSPORTS]
        elif transport is not None:
            variants = [v.with_transport(transport) for v in variants]
        for candidate in variants:
            if candidate in seen:
                continue
            if pattern is None or pattern in candidate.name:
                seen.add(candidate)
                yield candidate
