"""Sweep runner: execute scenarios serially or across worker processes.

Workloads are memoized per process: scenarios that share a (family,
params, seed) coordinate reuse the generated graph, and partitioned
instances are cached per (workload, partition scheme, backend), so a sweep
over many protocols on the same workload builds it once instead of once
per scenario.  Each scenario runs on its own stable seed (a hash of its
name unless pinned), so results are independent of sweep order, filtering,
and the serial/parallel execution mode.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from functools import lru_cache
from typing import Any, Callable, Iterable

from ..graphs import EdgePartition, Graph, PARTITIONERS
from ..rand import derived_random
from .scenarios import FAMILIES, PROTOCOLS, Scenario

__all__ = ["build_partition", "build_workload", "run_scenario", "sweep"]


@lru_cache(maxsize=256)
def _cached_workload(family: str, params: tuple, seed: int) -> Graph:
    builder = FAMILIES[family]
    rng = derived_random(seed, "workload")
    return builder(rng, **dict(params))


def build_workload(scenario: Scenario) -> Graph:
    """The scenario's graph (memoized per process on family/params/seed)."""
    return _cached_workload(scenario.family, scenario.params, scenario.effective_seed)


@lru_cache(maxsize=256)
def _cached_partition(
    family: str, params: tuple, seed: int, partition: str, backend: str
) -> EdgePartition:
    graph = _cached_workload(family, params, seed)
    # The partitioner draws from its own labelled stream so adding
    # partition schemes never perturbs workload generation.
    rng = derived_random(seed, "partition")
    part = PARTITIONERS[partition](graph, rng)
    return part.astype(backend)


def build_partition(scenario: Scenario) -> EdgePartition:
    """The scenario's partitioned instance, on the scenario's backend.

    Partitions are generated on the default backend and converted, so the
    same scenario coordinate describes the same edge split on every
    backend — the invariant the parity tests pin down.
    """
    return _cached_partition(
        scenario.family,
        scenario.params,
        scenario.effective_seed,
        scenario.partition,
        scenario.backend,
    )


def run_scenario(scenario: Scenario) -> dict[str, Any]:
    """Execute one scenario and return its flat JSON-ready result record."""
    partition = build_partition(scenario)
    adapter = PROTOCOLS[scenario.protocol]
    start = time.perf_counter()
    metrics = adapter.run(partition, scenario.effective_seed, scenario.transport)
    elapsed = time.perf_counter() - start
    record: dict[str, Any] = {
        "scenario": scenario.name,
        "protocol": scenario.protocol,
        "family": scenario.family,
        "partition": scenario.partition,
        "backend": scenario.backend,
        "transport": scenario.transport,
        "seed": scenario.effective_seed,
        "n": partition.n,
        "m": partition.graph.m,
        "max_degree": partition.max_degree,
        "wall_time_s": round(elapsed, 6),
    }
    record.update(metrics)
    record["params"] = scenario.param_dict()
    return record


def sweep(
    scenarios: Iterable[Scenario],
    jobs: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """Run scenarios, fanning out over a process pool when ``jobs > 1``.

    ``jobs`` defaults to the machine's CPU count.  The serial path is kept
    for single-core machines and debugging (no pickling, real tracebacks).
    Results come back in scenario order regardless of execution mode.
    """
    scenario_list = list(scenarios)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(scenario_list) <= 1:
        results = []
        for scenario in scenario_list:
            results.append(run_scenario(scenario))
            if progress is not None:
                progress(f"done {scenario.name}")
        return results
    with multiprocessing.Pool(processes=min(jobs, len(scenario_list))) as pool:
        results = pool.map(run_scenario, scenario_list)
    if progress is not None:
        progress(f"completed {len(results)} scenarios on {jobs} workers")
    return results
